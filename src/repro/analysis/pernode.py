"""Failures per node within a system (Figure 3, Section 5.1).

Figure 3(a) plots the lifetime failure count of every node of system
20: the three visualization nodes (21-23) stick out, with 6% of the
nodes accounting for ~20% of the failures.  Figure 3(b) fits the CDF
of per-node counts for the *compute-only* nodes: a Poisson (the classic
equal-rates assumption) is a poor fit; normal and lognormal are far
better — evidence of real heterogeneity across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.errors import DegenerateSampleError
from repro.records.record import Workload
from repro.records.system import SystemConfig
from repro.records.trace import FailureTrace
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.fitting import FitResult, fit_all_discrete

__all__ = [
    "failures_per_node",
    "node_share",
    "NodeCountStudy",
    "node_count_study",
    "node_count_study_from_counts",
]


def failures_per_node(trace: FailureTrace, system_id: int) -> Dict[int, int]:
    """Figure 3(a): lifetime failure count per node of a system.

    Includes zero-count nodes from the inventory.
    """
    return trace.failures_per_node(system_id)


def node_share(trace: FailureTrace, system_id: int, node_ids: Sequence[int]) -> float:
    """Fraction of the system's failures on the given nodes.

    ``node_share(trace, 20, [21, 22, 23])`` reproduces the paper's
    "6% of nodes, 20% of failures" claim for the graphics nodes.
    """
    counts = failures_per_node(trace, system_id)
    total = sum(counts.values())
    if total == 0:
        raise DegenerateSampleError(f"system {system_id} has no failures")
    return sum(counts.get(node_id, 0) for node_id in node_ids) / total


@dataclass(frozen=True)
class NodeCountStudy:
    """Figure 3(b): per-node count distribution and candidate fits.

    Attributes
    ----------
    counts:
        The per-node failure counts studied (compute-only by default).
    summary:
        Mean/median/C² of the counts.
    fits:
        Poisson / normal / lognormal fits ranked by NLL (best first).
    """

    counts: Tuple[int, ...]
    summary: EmpiricalDistribution
    fits: Tuple[FitResult, ...]

    @property
    def best(self) -> FitResult:
        """The winning fit."""
        return self.fits[0]

    @property
    def poisson_is_poor(self) -> bool:
        """True when Poisson ranks last among the fitted candidates.

        This is the paper's key observation: per-node failure counts
        are overdispersed relative to the equal-rate Poisson model.
        """
        return self.fits[-1].name == "poisson" and len(self.fits) > 1

    @property
    def overdispersion(self) -> float:
        """Variance-to-mean ratio (1 under a Poisson model)."""
        return self.summary.variance / self.summary.mean


def node_count_study(
    trace: FailureTrace,
    system_id: int,
    workload: Workload = Workload.COMPUTE,
    exclude_nodes: Sequence[int] = (),
    min_production_fraction: float = 0.5,
) -> NodeCountStudy:
    """Fit the per-node failure-count CDF for one system.

    Parameters
    ----------
    trace / system_id:
        The system to study.
    workload:
        Keep only nodes whose failures carry this workload label
        (compute-only, as in Figure 3(b)).  Nodes with zero failures
        are kept — their workload is taken from the inventory-driven
        absence of records, i.e. they count as compute.
    exclude_nodes:
        Node IDs to drop regardless (e.g. node 0 of system 20, which
        was in production far shorter — the paper's footnote 4).
    min_production_fraction:
        Drop nodes whose production window is shorter than this
        fraction of the system's (automates the footnote-4 exclusion).
    """
    system_trace = trace.filter_systems([system_id])
    config = trace.systems[system_id]
    # Workload per node: from its records if any, else compute.
    node_workloads: Dict[int, Workload] = {}
    for record in system_trace:
        node_workloads.setdefault(record.node_id, record.workload)
    counts = failures_per_node(trace, system_id)
    return node_count_study_from_counts(
        config,
        trace.data_start,
        trace.data_end,
        system_id,
        counts,
        node_workloads,
        workload=workload,
        exclude_nodes=exclude_nodes,
        min_production_fraction=min_production_fraction,
    )


def node_count_study_from_counts(
    config: SystemConfig,
    data_start: float,
    data_end: float,
    system_id: int,
    counts: Dict[int, int],
    node_workloads: Dict[int, Workload],
    workload: Workload = Workload.COMPUTE,
    exclude_nodes: Sequence[int] = (),
    min_production_fraction: float = 0.5,
) -> NodeCountStudy:
    """:func:`node_count_study` from pre-aggregated per-node state.

    The trace-derived inputs — lifetime failure counts per node
    (zero-filled over the inventory) and each node's first-seen
    workload — can be streamed from a columnar store, so the out-of-
    core path shares this exact filtering/fitting core and produces
    bit-identical studies.
    """
    nodes = config.expand_nodes(data_start, data_end)
    system_window = config.production_window(data_start, data_end)
    system_length = system_window[1] - system_window[0]
    kept: List[int] = []
    excluded = frozenset(exclude_nodes)
    for node in nodes:
        if node.node_id in excluded:
            continue
        if node.production_seconds < min_production_fraction * system_length:
            continue
        if node_workloads.get(node.node_id, Workload.COMPUTE) is not workload:
            continue
        kept.append(counts[node.node_id])
    if len(kept) < 4:
        raise ValueError(
            f"only {len(kept)} {workload.value} nodes retained for system {system_id}"
        )
    values = np.array(kept, dtype=float)
    return NodeCountStudy(
        counts=tuple(int(v) for v in kept),
        summary=EmpiricalDistribution.from_data(values),
        fits=tuple(fit_all_discrete(values)),
    )
