"""Tests for the scheduling package."""

import datetime as dt

import numpy as np
import pytest

from repro.records.record import FailureRecord, RootCause
from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.records.trace import FailureTrace
from repro.sched.cluster import ClusterTimeline, NodeOutage
from repro.sched.jobs import Job, JobGenerator
from repro.sched.policies import (
    LeastFailuresPolicy,
    RandomPolicy,
    ReliabilityAwarePolicy,
)
from repro.sched.simulator import SchedulerSimulation


def record(start, node, duration=600.0, system=20):
    return FailureRecord(
        start_time=start, end_time=start + duration, system_id=system,
        node_id=node, root_cause=RootCause.HARDWARE,
    )


class TestJobs:
    def test_jobs_in_window_and_valid(self):
        jobs = JobGenerator(seed=1).generate(0.0, 30 * SECONDS_PER_DAY)
        assert len(jobs) > 50
        for job in jobs:
            assert 0.0 <= job.arrival < 30 * SECONDS_PER_DAY
            assert 1 <= job.nodes <= 8
            assert job.duration > 0

    def test_deterministic(self):
        a = JobGenerator(seed=1).generate(0.0, 1e6)
        b = JobGenerator(seed=1).generate(0.0, 1e6)
        assert [(j.arrival, j.nodes, j.duration) for j in a] == [
            (j.arrival, j.nodes, j.duration) for j in b
        ]

    def test_job_validation(self):
        with pytest.raises(ValueError):
            Job(job_id=0, arrival=0.0, nodes=0, duration=10.0)
        with pytest.raises(ValueError):
            Job(job_id=0, arrival=0.0, nodes=1, duration=0.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            JobGenerator().generate(10.0, 10.0)


class TestClusterTimeline:
    def make_timeline(self):
        trace = FailureTrace(
            [record(1e8, 0), record(1e8 + 5000.0, 0), record(1e8 + 2000.0, 3)]
        )
        return ClusterTimeline(trace, 20)

    def test_outages_sorted(self):
        timeline = self.make_timeline()
        outages = timeline.outages(0)
        assert len(outages) == 2
        assert outages[0].start < outages[1].start

    def test_failure_count_window(self):
        timeline = self.make_timeline()
        assert timeline.failure_count(0, 1e8, 1e8 + 1.0) == 1
        assert timeline.failure_count(0, 1e8, 1e8 + 10_000.0) == 2
        assert timeline.failure_count(1, 0.0, 2e8) == 0

    def test_next_failure(self):
        timeline = self.make_timeline()
        outage = timeline.next_failure(0, 1e8 + 1.0)
        assert outage.start == 1e8 + 5000.0
        assert timeline.next_failure(0, 2e8) is None

    def test_next_failure_any(self):
        timeline = self.make_timeline()
        outage = timeline.next_failure_any([0, 3], 1e8 + 1.0)
        assert outage.node_id == 3

    def test_is_down(self):
        timeline = self.make_timeline()
        assert timeline.is_down(0, 1e8 + 100.0)
        assert not timeline.is_down(0, 1e8 + 700.0)
        assert not timeline.is_down(0, 1e8 - 1.0)

    def test_failure_rates_training(self):
        timeline = self.make_timeline()
        rates = timeline.failure_rates(1e8 - 1.0, 1e8 + 10_000.0)
        assert rates[0] > rates[3] > rates[1] == 0.0

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            ClusterTimeline(FailureTrace([]), 99)

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            NodeOutage(node_id=0, start=10.0, end=5.0)


class TestPolicies:
    def test_random_within_free_set(self):
        policy = RandomPolicy(seed=0)
        chosen = policy.choose([3, 5, 7, 9], 2, now=0.0)
        assert len(chosen) == 2
        assert set(chosen) <= {3, 5, 7, 9}

    def test_random_insufficient_nodes(self):
        with pytest.raises(ValueError):
            RandomPolicy().choose([1], 2, now=0.0)

    def test_reliability_aware_prefers_low_rates(self):
        policy = ReliabilityAwarePolicy({0: 0.5, 1: 0.1, 2: 0.9, 3: 0.2})
        assert policy.choose([0, 1, 2, 3], 2, now=0.0) == [1, 3]

    def test_reliability_aware_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityAwarePolicy({})

    def test_least_failures_learns(self):
        policy = LeastFailuresPolicy()
        policy.observe_failure(0, 1.0)
        policy.observe_failure(0, 2.0)
        policy.observe_failure(1, 3.0)
        assert policy.choose([0, 1, 2], 1, now=4.0) == [2]


class TestSchedulerSimulation:
    T0 = from_datetime(dt.datetime(2002, 1, 1))

    def test_no_failures_all_complete(self):
        trace = FailureTrace([])
        timeline = ClusterTimeline(trace, 20)
        jobs = [
            Job(job_id=i, arrival=self.T0 + i * 3600.0, nodes=2, duration=7200.0)
            for i in range(10)
        ]
        sim = SchedulerSimulation(
            timeline, RandomPolicy(seed=0), (self.T0, self.T0 + 30 * SECONDS_PER_DAY)
        )
        result = sim.run(jobs)
        assert result.jobs_completed == 10
        assert result.kills == 0
        assert result.mean_slowdown == pytest.approx(1.0)
        assert result.waste_fraction == 0.0

    def test_failure_kills_and_requeues(self):
        # One node fails at T0+1800 while running the only job.
        trace = FailureTrace([record(self.T0 + 1800.0, 0, duration=600.0)])
        timeline = ClusterTimeline(trace, 20)
        job = Job(job_id=0, arrival=self.T0, nodes=49, duration=3600.0)
        sim = SchedulerSimulation(
            timeline,
            ReliabilityAwarePolicy({n: 0.0 for n in range(49)}),
            (self.T0, self.T0 + 10 * SECONDS_PER_DAY),
        )
        result = sim.run([job])
        assert result.kills == 1
        assert result.jobs_completed == 1
        assert result.lost_node_seconds == pytest.approx(1800.0 * 49)

    def test_avoiding_bad_node_reduces_kills(self):
        # Node 0 fails every hour; nodes 1+ never fail.  A policy that
        # avoids node 0 sees zero kills; one that insists on it doesn't.
        failures = [record(self.T0 + 3600.0 * k, 0, duration=60.0) for k in range(1, 200)]
        timeline = ClusterTimeline(FailureTrace(failures), 20)
        jobs = [
            Job(job_id=i, arrival=self.T0 + i * 1800.0, nodes=1, duration=5400.0)
            for i in range(20)
        ]
        window = (self.T0, self.T0 + 30 * SECONDS_PER_DAY)
        avoid = ReliabilityAwarePolicy({0: 1.0, **{n: 0.0 for n in range(1, 49)}})
        result_avoid = SchedulerSimulation(timeline, avoid, window).run(jobs)
        prefer = ReliabilityAwarePolicy({0: 0.0, **{n: 1.0 for n in range(1, 49)}})
        result_prefer = SchedulerSimulation(timeline, prefer, window).run(jobs)
        assert result_avoid.kills == 0
        assert result_prefer.kills > 0
        assert result_avoid.waste_fraction < result_prefer.waste_fraction

    def test_reliability_beats_random_on_synthetic_trace(self, system20_trace):
        timeline = ClusterTimeline(system20_trace, 20)
        train_start = from_datetime(dt.datetime(2000, 1, 1))
        t0 = from_datetime(dt.datetime(2002, 1, 1))
        t1 = from_datetime(dt.datetime(2003, 1, 1))
        jobs = JobGenerator(seed=7).generate(t0, t1 - 30 * SECONDS_PER_DAY)
        trained = ReliabilityAwarePolicy(timeline.failure_rates(train_start, t0))
        aware = SchedulerSimulation(timeline, trained, (t0, t1)).run(jobs)
        random = SchedulerSimulation(timeline, RandomPolicy(seed=3), (t0, t1)).run(jobs)
        assert aware.kills < random.kills
        assert aware.waste_fraction < random.waste_fraction

    def test_job_outside_window_rejected(self):
        timeline = ClusterTimeline(FailureTrace([]), 20)
        sim = SchedulerSimulation(timeline, RandomPolicy(), (self.T0, self.T0 + 10.0))
        with pytest.raises(ValueError):
            sim.run([Job(job_id=0, arrival=self.T0 - 5.0, nodes=1, duration=1.0)])
