"""Tests for interarrival studies (Figure 6)."""

import datetime as dt

import numpy as np
import pytest

from repro.analysis.interarrival import (
    interarrival_study,
    node_interarrivals,
    split_eras,
    system_interarrivals,
)
from repro.records.record import FailureRecord, RootCause
from repro.records.timeutils import from_datetime
from repro.records.trace import FailureTrace
from repro.stats.hazard import HazardDirection

ERA = from_datetime(dt.datetime(2000, 1, 1))


def record(start, node=0, system=20):
    return FailureRecord(
        start_time=start, end_time=start + 60.0, system_id=system, node_id=node,
        root_cause=RootCause.HARDWARE,
    )


class TestConstructed:
    def test_study_counts_zero_gaps(self):
        starts = [1e8, 1e8, 1e8 + 50.0, 1e8 + 150.0] + [1e8 + 200.0 * i for i in range(2, 10)]
        study = interarrival_study(FailureTrace([record(s, node=i % 3) for i, s in enumerate(starts)]))
        assert study.n == len(starts) - 1
        assert study.zero_fraction == pytest.approx(1 / study.n)

    def test_minimum_sample_enforced(self):
        with pytest.raises(ValueError):
            interarrival_study(FailureTrace([record(1e8), record(2e8)]))

    def test_exponential_rank_property(self):
        generator = np.random.Generator(np.random.PCG64(0))
        starts = 1e8 + np.cumsum(generator.exponential(1e4, 500))
        study = interarrival_study(FailureTrace([record(s) for s in starts]))
        assert 0 <= study.exponential_rank <= 3

    def test_split_eras(self):
        trace = FailureTrace([record(1e8), record(ERA + 10.0)])
        early, late = split_eras(trace, ERA)
        assert len(early) == 1 and len(late) == 1

    def test_node_and_system_views_differ(self, system20_trace):
        node = node_interarrivals(system20_trace, 20, 22)
        system = system_interarrivals(system20_trace, 20)
        assert system.n > node.n
        assert system.summary.mean < node.summary.mean


class TestPaperFindings:
    """Figure 6's four panels, asserted on the synthetic trace."""

    @pytest.fixture(scope="class")
    def eras(self, system20_trace):
        return split_eras(system20_trace, ERA)

    def test_panel_b_node_late_weibull(self, eras):
        _early, late = eras
        study = node_interarrivals(late, 20, 22)
        # Paper: Weibull/gamma best, shape ~0.7, decreasing hazard,
        # exponential poor.
        assert study.best.name in ("weibull", "gamma")
        assert 0.55 <= study.weibull_shape <= 0.85
        assert study.hazard is HazardDirection.DECREASING
        assert study.exponential_rank >= 2

    def test_panel_b_c2_near_paper(self, eras):
        _early, late = eras
        study = node_interarrivals(late, 20, 22)
        # Paper: C^2 = 1.9 (exponential would be 1).
        assert 1.3 < study.summary.squared_cv < 3.5

    def test_panel_a_node_early_lognormal_high_c2(self, eras):
        early, _late = eras
        study = node_interarrivals(early, 20, 22)
        # Paper: C^2 = 3.9, lognormal best.
        assert study.summary.squared_cv > 2.0
        assert study.best.name in ("lognormal", "weibull")

    def test_panel_c_system_early_zero_gaps(self, eras):
        early, _late = eras
        study = system_interarrivals(early, 20)
        # Paper: > 30% simultaneous failures.
        assert study.zero_fraction > 0.30

    def test_panel_d_system_late_weibull_078(self, eras):
        _early, late = eras
        study = system_interarrivals(late, 20)
        assert study.best.name in ("weibull", "gamma")
        assert 0.65 <= study.weibull_shape <= 0.9
        assert study.zero_fraction < 0.05
        assert study.hazard is HazardDirection.DECREASING

    def test_gaps_stored_for_plotting(self, eras):
        early, _late = eras
        study = system_interarrivals(early, 20)
        assert len(study.gaps) == study.n
