"""Trace JSONL schema validation.

A trace file is newline-delimited JSON with exactly one ``header``
line first, followed by ``span`` events (close order: within a stream,
children precede their parent) and then ``metric`` events:

``header``
    ``{"type": "header", "kind": "repro-trace", "schema": 1,
    "stream": str, "run_id": str}``

``span``
    ``{"type": "span", "id": str, "parent": str | null, "name": str,
    "depth": int, "wall_s": float, "cpu_s": float,
    "status": "ok" | "error", "attrs": object, "counters": object}``
    plus ``error: str`` when status is ``error``.  Every non-null
    ``parent`` must reference another span in the file with
    ``depth == parent.depth + 1``; null-parent spans must sit at
    depth 0.

``metric``
    ``{"type": "metric", "kind": "counter" | "gauge" | "histogram",
    "name": str, "value": any}``

:func:`validate_events` returns a list of human-readable problems
(empty means valid); the CI observability smoke job runs it over a
freshly generated trace via ``repro profile --trace ... --validate``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro.obs.tracer import SCHEMA_VERSION, TRACE_KIND

__all__ = ["validate_events", "read_trace_file", "validate_trace_file"]

_SPAN_STATUSES = ("ok", "error")
_METRIC_KINDS = ("counter", "gauge", "histogram")


def _check_span(event: Dict[str, Any], line: int, problems: List[str]) -> None:
    for key, kinds in (
        ("id", str), ("name", str), ("depth", int),
        ("wall_s", (int, float)), ("cpu_s", (int, float)),
        ("attrs", dict), ("counters", dict),
    ):
        if key not in event:
            problems.append(f"line {line}: span missing field {key!r}")
        elif not isinstance(event[key], kinds) or isinstance(event[key], bool):
            problems.append(
                f"line {line}: span field {key!r} has type "
                f"{type(event[key]).__name__}"
            )
    parent = event.get("parent")
    if parent is not None and not isinstance(parent, str):
        problems.append(f"line {line}: span parent must be a string or null")
    status = event.get("status")
    if status not in _SPAN_STATUSES:
        problems.append(f"line {line}: span status {status!r} not in {_SPAN_STATUSES}")
    if status == "error" and not event.get("error"):
        problems.append(f"line {line}: error span missing 'error' message")
    for key in ("wall_s", "cpu_s"):
        value = event.get(key)
        if isinstance(value, (int, float)) and value < 0:
            problems.append(f"line {line}: span {key} is negative ({value})")


def validate_events(events: List[Dict[str, Any]]) -> List[str]:
    """Validate a parsed trace event stream; returns problems found."""
    problems: List[str] = []
    if not events:
        return ["trace is empty (no header line)"]

    header = events[0]
    if header.get("type") != "header":
        problems.append("first event is not a header line")
    else:
        if header.get("kind") != TRACE_KIND:
            problems.append(
                f"header kind {header.get('kind')!r} != {TRACE_KIND!r}"
            )
        if header.get("schema") != SCHEMA_VERSION:
            problems.append(
                f"header schema {header.get('schema')!r} != {SCHEMA_VERSION}"
            )

    # First pass: per-event shape, id uniqueness, section ordering.
    spans: Dict[str, Dict[str, Any]] = {}
    seen_metric = False
    for offset, event in enumerate(events[1:], start=2):
        etype = event.get("type")
        if etype == "header":
            problems.append(f"line {offset}: duplicate header line")
        elif etype == "span":
            if seen_metric:
                problems.append(
                    f"line {offset}: span event after metric events"
                )
            _check_span(event, offset, problems)
            span_id = event.get("id")
            if isinstance(span_id, str):
                if span_id in spans:
                    problems.append(f"line {offset}: duplicate span id {span_id!r}")
                else:
                    spans[span_id] = event
        elif etype == "metric":
            seen_metric = True
            if event.get("kind") not in _METRIC_KINDS:
                problems.append(
                    f"line {offset}: metric kind {event.get('kind')!r} "
                    f"not in {_METRIC_KINDS}"
                )
            if not isinstance(event.get("name"), str):
                problems.append(f"line {offset}: metric missing string name")
            if "value" not in event:
                problems.append(f"line {offset}: metric missing value")
        else:
            problems.append(f"line {offset}: unknown event type {etype!r}")

    # Second pass: parent links resolve and depths are consistent.
    for offset, event in enumerate(events[1:], start=2):
        if event.get("type") != "span":
            continue
        parent = event.get("parent")
        depth = event.get("depth")
        if parent is None:
            if depth != 0:
                problems.append(
                    f"line {offset}: root span has depth {depth}, expected 0"
                )
        elif isinstance(parent, str):
            parent_event = spans.get(parent)
            if parent_event is None:
                problems.append(
                    f"line {offset}: parent {parent!r} not found in trace"
                )
            elif isinstance(depth, int) and isinstance(
                parent_event.get("depth"), int
            ) and depth != parent_event["depth"] + 1:
                problems.append(
                    f"line {offset}: depth {depth} != parent depth "
                    f"{parent_event['depth']} + 1"
                )
    return problems


def read_trace_file(path: Path) -> List[Dict[str, Any]]:
    """Parse a trace JSONL file into its event list."""
    events: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: line {number} is not JSON: {exc}") from exc
    return events


def validate_trace_file(path: Path) -> List[str]:
    """Read and validate a trace file; returns problems found."""
    try:
        events = read_trace_file(path)
    except (OSError, ValueError) as exc:
        return [str(exc)]
    return validate_events(events)
