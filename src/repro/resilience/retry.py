"""Retry policies: exponential backoff with deterministic jitter.

The paper's systems retried failed components on a backoff schedule;
our supervisor does the same for failed generation shards.  Jitter is
*deterministic* — a pure function of ``(seed, shard key, attempt)`` —
so a retried run produces the same backoff schedule every time, which
keeps run reports reproducible and lets tests assert exact schedules.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for retrying a failed shard.

    Parameters
    ----------
    max_attempts:
        Attempts per degradation stage before the circuit breaker moves
        the shard down the ladder (see
        :class:`~repro.resilience.breaker.CircuitBreaker`).
    base_delay:
        Delay before the second attempt, in seconds.
    multiplier:
        Exponential growth factor per further attempt.
    max_delay:
        Cap on any single delay, in seconds.
    jitter:
        Fractional jitter: each delay is scaled by a deterministic
        factor in ``[1 - jitter, 1 + jitter)`` derived from
        ``(seed, key, attempt)``.
    deadline:
        Optional cap on the *total* wall-clock time the supervisor may
        spend retrying; once exceeded, remaining failed shards are
        skipped (recorded, not raised).
    seed:
        Root of the deterministic jitter.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def backoff(self, key: str, attempt: int) -> float:
        """Delay in seconds after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0**64  # [0, 1)
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def schedule(self, key: str, attempts: Optional[int] = None) -> List[float]:
        """The full backoff schedule for ``key`` (one delay per retry)."""
        n = self.max_attempts if attempts is None else attempts
        return [self.backoff(key, attempt) for attempt in range(1, n)]

    def sleep(self, key: str, attempt: int) -> float:
        """Block for :meth:`backoff`'s delay; returns the delay slept.

        The synchronous hook the process supervisor uses; the delay is
        the same deterministic value :meth:`backoff` computes.
        """
        delay = self.backoff(key, attempt)
        if delay > 0:
            time.sleep(delay)
        return delay

    async def sleep_async(self, key: str, attempt: int) -> float:
        """Await :meth:`backoff`'s delay without blocking the event loop.

        The async-aware hook for long-running asyncio services
        (``repro serve``): identical deterministic jitter, but the wait
        yields to the loop via :func:`asyncio.sleep` so other requests
        keep flowing while one retries.
        """
        delay = self.backoff(key, attempt)
        if delay > 0:
            import asyncio

            await asyncio.sleep(delay)
        return delay
