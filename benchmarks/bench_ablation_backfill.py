"""Ablation: EASY backfilling vs strict FCFS on the failure timeline.

Not a paper artifact — a scheduler-substrate ablation showing the
sched package is a usable mini-scheduler.  On a mixed workload with
occasional wide jobs, EASY backfilling cuts waiting time without
delaying the queue head, and composes with reliability-aware placement.
"""

import datetime as dt

from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.report.tables import format_table
from repro.sched import (
    BackfillSchedulerSimulation,
    ClusterTimeline,
    JobGenerator,
    RandomPolicy,
    ReliabilityAwarePolicy,
    SchedulerSimulation,
)

TRAIN_START = from_datetime(dt.datetime(2000, 1, 1))
T0 = from_datetime(dt.datetime(2002, 1, 1))
T1 = from_datetime(dt.datetime(2002, 7, 1))


def test_backfill_ablation(benchmark, system20):
    timeline = ClusterTimeline(system20, 20)
    # Denser arrivals + wide jobs: queueing actually happens.
    jobs = JobGenerator(
        seed=13, mean_interarrival=2.0 * 3600.0, max_nodes=24
    ).generate(T0, T1 - 20 * SECONDS_PER_DAY)
    trained = timeline.failure_rates(TRAIN_START, T0)

    def run_backfill():
        return BackfillSchedulerSimulation(
            timeline, ReliabilityAwarePolicy(trained), (T0, T1)
        ).run(jobs)

    easy_aware = benchmark(run_backfill)
    fcfs_aware = SchedulerSimulation(
        timeline, ReliabilityAwarePolicy(trained), (T0, T1)
    ).run(jobs)
    fcfs_random = SchedulerSimulation(
        timeline, RandomPolicy(seed=3), (T0, T1)
    ).run(jobs)

    rows = [
        (name, r.jobs_completed, f"{r.mean_wait / 3600:.2f}",
         f"{r.mean_slowdown:.2f}", r.kills, f"{100 * r.utilization:.1f}%")
        for name, r in (
            ("FCFS + random", fcfs_random),
            ("FCFS + reliability", fcfs_aware),
            ("EASY + reliability", easy_aware),
        )
    ]
    print("\n" + format_table(
        ("scheduler", "completed", "mean wait (h)", "slowdown", "kills", "utilization"),
        rows, title="Backfilling ablation, system 20, H1 2002",
    ))

    # Backfilling reduces waiting without losing completions.
    assert easy_aware.jobs_completed >= fcfs_aware.jobs_completed
    assert easy_aware.mean_wait <= fcfs_aware.mean_wait
    # And reliability-aware placement still cuts kills under EASY.
    assert easy_aware.kills <= fcfs_random.kills
