"""Node outlier detection.

Figure 3(a)'s story started as a discovery: three nodes of system 20
stuck out of the per-node failure distribution, and asking LANL about
them revealed they ran a different (visualization) workload.  This
module automates that discovery step for any system: fit the count
distribution to the bulk, flag nodes whose counts are implausible
under it.

Method: fit a lognormal to the per-node counts robustly (median /
MAD-in-log-space, so the outliers themselves cannot inflate the fit),
then flag nodes whose count exceeds the fitted ``threshold`` quantile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.records.trace import FailureTrace
from repro.stats.distributions import LogNormal

__all__ = ["NodeOutlier", "find_node_outliers"]

#: MAD -> sigma consistency constant for the normal distribution.
_MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class NodeOutlier:
    """One flagged node.

    Attributes
    ----------
    node_id / count:
        The node and its failure count.
    expected_median:
        The robust-fit median count across nodes.
    tail_probability:
        P(count >= observed) under the robust bulk fit — how
        implausible the node is if it were ordinary.
    """

    node_id: int
    count: int
    expected_median: float
    tail_probability: float

    @property
    def excess_ratio(self) -> float:
        """Observed count / bulk median."""
        return self.count / self.expected_median


def find_node_outliers(
    trace: FailureTrace,
    system_id: int,
    threshold: float = 0.999,
    min_nodes: int = 8,
) -> Tuple[List[NodeOutlier], LogNormal]:
    """Flag nodes failing far more than the system's bulk.

    Parameters
    ----------
    trace / system_id:
        The system to inspect.
    threshold:
        Bulk-fit quantile above which a node is flagged (0.999 flags
        ~0.1% false positives per node under the bulk model).
    min_nodes:
        Minimum nodes with at least one failure.

    Returns
    -------
    (outliers, bulk_fit):
        Flagged nodes sorted by descending count, and the robust
        lognormal fitted to the bulk.
    """
    if not 0.5 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0.5, 1), got {threshold}")
    counts = trace.failures_per_node(system_id)
    positive = {node: count for node, count in counts.items() if count > 0}
    if len(positive) < min_nodes:
        raise ValueError(
            f"system {system_id}: only {len(positive)} nodes with failures"
        )
    logs = np.log(np.array(list(positive.values()), dtype=float))
    mu = float(np.median(logs))
    mad = float(np.median(np.abs(logs - mu)))
    sigma = max(_MAD_TO_SIGMA * mad, 1e-6)
    bulk = LogNormal(mu=mu, sigma=sigma)
    cut = float(bulk.ppf(threshold))
    outliers = [
        NodeOutlier(
            node_id=node,
            count=count,
            expected_median=math.exp(mu),
            tail_probability=float(bulk.survival(count)),
        )
        for node, count in positive.items()
        if count > cut
    ]
    outliers.sort(key=lambda outlier: -outlier.count)
    return outliers, bulk
