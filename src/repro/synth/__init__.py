"""Synthetic LANL failure-trace generator.

This package is the substitution for the real LANL/CFDR trace (see
DESIGN.md section 2).  It generates a full 9-year failure trace for the
22 systems of Table 1, built from the statistical laws the paper
measures so every downstream analysis reproduces the paper's shapes:

* per-hardware-type failure rates per processor (Figure 2),
* Weibull renewal interarrivals with shape < 1 (Figure 6),
* lifecycle rate shapes — infant-mortality decay for types E/F,
  ramp-to-peak for types D/G (Figure 4),
* diurnal and weekly rate modulation (Figure 5),
* heterogeneous per-node rates with graphics/front-end boosts
  (Figure 3),
* per-type root-cause mixtures with low-level detail (Figure 1,
  Section 4),
* lognormal repair times per root cause with heavy tails (Table 2,
  Figure 7),
* correlated simultaneous failures early in the NUMA era
  (Figure 6(c)).

Entry point: :class:`~repro.synth.generator.TraceGenerator`.
"""

from repro.synth.config import GeneratorConfig
from repro.synth.generator import SupervisionConfig, TraceGenerator
from repro.synth.lifecycle import LifecycleShape, lifecycle_multiplier, lifecycle_shape_for
from repro.synth.diurnal import WeeklyProfile, diurnal_multiplier, weekly_multiplier
from repro.synth.nodes import assign_workload, node_rate_multiplier
from repro.synth.rootcause import CauseModel
from repro.synth.repair import RepairModel
from repro.synth.arrivals import ModulatedWeibullArrivals
from repro.synth.correlated import inject_bursts
from repro.synth.jitter import MonthlyJitter
from repro.synth.scenario import ClusterScenario, ScenarioSystem

__all__ = [
    "GeneratorConfig",
    "SupervisionConfig",
    "TraceGenerator",
    "LifecycleShape",
    "lifecycle_multiplier",
    "lifecycle_shape_for",
    "WeeklyProfile",
    "diurnal_multiplier",
    "weekly_multiplier",
    "assign_workload",
    "node_rate_multiplier",
    "CauseModel",
    "RepairModel",
    "ModulatedWeibullArrivals",
    "inject_bursts",
    "MonthlyJitter",
    "ClusterScenario",
    "ScenarioSystem",
]
