"""Ablation: does per-node failure heterogeneity matter for scheduling?

Figure 3 shows per-node failure rates are genuinely heterogeneous.
Section 5.1 suggests exploiting that by assigning jobs to more reliable
nodes.  This bench schedules an identical workload on system 20's
failure timeline under three placement policies and compares work lost
to failure kills.
"""

import datetime as dt

from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.report.tables import format_table
from repro.sched.cluster import ClusterTimeline
from repro.sched.jobs import JobGenerator
from repro.sched.policies import (
    LeastFailuresPolicy,
    RandomPolicy,
    ReliabilityAwarePolicy,
)
from repro.sched.simulator import SchedulerSimulation

TRAIN_START = from_datetime(dt.datetime(2000, 1, 1))
T0 = from_datetime(dt.datetime(2002, 1, 1))
T1 = from_datetime(dt.datetime(2003, 1, 1))


def test_reliability_aware_scheduling(benchmark, system20):
    timeline = ClusterTimeline(system20, 20)
    jobs = JobGenerator(seed=7).generate(T0, T1 - 30 * SECONDS_PER_DAY)
    trained_rates = timeline.failure_rates(TRAIN_START, T0)

    def run_aware():
        policy = ReliabilityAwarePolicy(trained_rates)
        return SchedulerSimulation(timeline, policy, (T0, T1)).run(jobs)

    aware = benchmark(run_aware)
    random = SchedulerSimulation(timeline, RandomPolicy(seed=3), (T0, T1)).run(jobs)
    online = SchedulerSimulation(timeline, LeastFailuresPolicy(), (T0, T1)).run(jobs)

    rows = [
        (name, r.jobs_completed, r.kills, f"{100 * r.waste_fraction:.2f}%",
         f"{r.mean_slowdown:.3f}")
        for name, r in (("random", random), ("reliability-aware", aware),
                        ("least-failures-online", online))
    ]
    print("\n" + format_table(
        ("policy", "completed", "kills", "waste", "slowdown"),
        rows, title="Scheduling ablation on system 20 (year 2002)",
    ))

    # Everyone finishes the workload; the difference is waste.
    assert aware.jobs_completed == random.jobs_completed == len(jobs)
    # Training on history buys a large reduction in kills and waste.
    assert aware.kills < 0.75 * random.kills
    assert aware.waste_fraction < random.waste_fraction
    # The online learner also beats random on kills (it converges on
    # the same bad nodes without a training window).
    assert online.kills <= random.kills
