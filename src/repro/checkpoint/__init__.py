"""Checkpoint/restart analysis and simulation.

The paper's introduction motivates failure characterization with the
design of checkpoint strategies [8, 21, 23]; LANL itself implements
fault tolerance by periodic checkpointing (Section 2.2).  This package
closes that loop:

* :mod:`~repro.checkpoint.models` — the classic Young/Daly optimal
  checkpoint intervals (derived under Poisson failures) and an exact
  renewal-reward efficiency model for *arbitrary* failure
  distributions, exposing how much the exponential assumption costs
  when failures are really Weibull with decreasing hazard.
* :mod:`~repro.checkpoint.strategies` — pluggable interval-selection
  strategies.
* :mod:`~repro.checkpoint.simulator` — a trace-driven checkpoint/
  restart simulator running jobs against a failure trace.
"""

from repro.checkpoint.models import (
    daly_interval,
    expected_efficiency,
    interval_vs_job_size,
    optimal_interval,
    time_to_first_failure,
    young_interval,
)
from repro.checkpoint.strategies import (
    CheckpointStrategy,
    DalyStrategy,
    DistributionAwareStrategy,
    FixedIntervalStrategy,
    YoungStrategy,
)
from repro.checkpoint.simulator import CheckpointSimulation, SimulationResult
from repro.checkpoint.twolevel import TwoLevelCheckpointSimulation, TwoLevelResult

__all__ = [
    "young_interval",
    "daly_interval",
    "expected_efficiency",
    "optimal_interval",
    "time_to_first_failure",
    "interval_vs_job_size",
    "CheckpointStrategy",
    "FixedIntervalStrategy",
    "YoungStrategy",
    "DalyStrategy",
    "DistributionAwareStrategy",
    "CheckpointSimulation",
    "SimulationResult",
    "TwoLevelCheckpointSimulation",
    "TwoLevelResult",
]
