"""Tests for lifecycle curves (Figure 4) and periodicity (Figure 5)."""

import numpy as np
import pytest

from repro.analysis.lifecycle import classify_lifecycle, monthly_failures
from repro.analysis.periodicity import (
    failures_by_hour,
    failures_by_weekday,
    periodicity_study,
)
from repro.records.record import FailureRecord, RootCause
from repro.records.timeutils import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.records.trace import FailureTrace
from repro.synth.lifecycle import LifecycleShape


def record(start, system=20, cause=RootCause.HARDWARE):
    return FailureRecord(
        start_time=start, end_time=start + 60.0, system_id=system, node_id=0,
        root_cause=cause,
    )


class TestMonthlyFailures:
    def test_bins_sum_to_total(self, system20_trace):
        curve = monthly_failures(system20_trace, 20)
        assert sum(curve.totals) == len(system20_trace)

    def test_by_cause_sums_to_totals(self, system20_trace):
        curve = monthly_failures(system20_trace, 20)
        for month in range(curve.months):
            cause_sum = sum(curve.by_cause[c][month] for c in curve.by_cause)
            assert cause_sum == curve.totals[month]

    def test_smoothed_window_validation(self, system20_trace):
        curve = monthly_failures(system20_trace, 20)
        with pytest.raises(ValueError):
            curve.smoothed(window=0)


class TestClassification:
    def test_system5_infant_decay(self, full_trace):
        # Figure 4(a): system 5 decays from an early high.
        curve = monthly_failures(full_trace, 5)
        assert classify_lifecycle(curve) is LifecycleShape.INFANT_DECAY

    def test_system19_ramp(self, full_trace):
        # Figure 4(b): system 19 ramps to a peak near 20 months.
        curve = monthly_failures(full_trace, 19)
        assert classify_lifecycle(curve) is LifecycleShape.RAMP_PEAK

    def test_system20_ramp(self, full_trace):
        curve = monthly_failures(full_trace, 20)
        assert classify_lifecycle(curve) is LifecycleShape.RAMP_PEAK

    def test_short_curve_rejected(self):
        # System 22 is in production ~13 months: too short to classify.
        trace = FailureTrace([record(3.15e8 + i * 1e5, system=22) for i in range(50)])
        with pytest.raises(ValueError):
            classify_lifecycle(monthly_failures(trace, 22))


class TestPeriodicityConstructed:
    def test_hour_binning(self):
        # Two failures at 03:xx, one at 15:xx.
        base = 100 * SECONDS_PER_DAY
        trace = FailureTrace(
            [
                record(base + 3 * SECONDS_PER_HOUR + 60),
                record(base + 3 * SECONDS_PER_HOUR + 120),
                record(base + 15 * SECONDS_PER_HOUR),
            ]
        )
        hours = failures_by_hour(trace)
        assert hours[3] == 2
        assert hours[15] == 1
        assert hours.sum() == 3

    def test_weekday_binning(self):
        # Day 0 of toolkit time is a Monday.
        trace = FailureTrace(
            [record(100 * SECONDS_PER_DAY + 60)]  # day 100 % 7 = 2 => Wednesday
        )
        weekdays = failures_by_weekday(trace)
        assert weekdays[2] == 1

    def test_uniform_trace_has_flat_ratios(self):
        # Records every 7.1 hours for ~2 years: no periodicity.
        trace = FailureTrace(
            [record(1e8 + i * 7.1 * SECONDS_PER_HOUR) for i in range(2500)]
        )
        study = periodicity_study(trace)
        assert study.peak_trough_ratio < 1.4
        assert 0.8 < study.weekday_weekend_ratio < 1.25


class TestPeriodicityOnSynthetic:
    def test_peak_trough_near_two(self, full_trace):
        study = periodicity_study(full_trace)
        assert 1.6 < study.peak_trough_ratio < 2.6

    def test_weekday_weekend_near_two(self, full_trace):
        study = periodicity_study(full_trace)
        assert 1.5 < study.weekday_weekend_ratio < 2.3

    def test_peak_in_working_hours_trough_at_night(self, full_trace):
        study = periodicity_study(full_trace)
        assert 10 <= study.peak_hour <= 18
        assert study.trough_hour <= 6 or study.trough_hour >= 22

    def test_no_monday_spike(self, full_trace):
        # Rules out the delayed-detection explanation (Section 5.2).
        study = periodicity_study(full_trace)
        assert study.monday_spike < 1.15
