"""The on-disk schema for failure traces.

The CSV layout mirrors the fields of a remedy-database record as
described in Section 2.3 of the paper: when the failure started, when it
was resolved, the system and node affected, the workload, and the root
cause at two levels of detail.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = ["CSV_COLUMNS", "SchemaError", "describe_schema"]


class SchemaError(ValueError):
    """Raised when a file does not conform to the trace schema.

    Attributes
    ----------
    error_class:
        Machine-readable failure category (e.g. ``"malformed-value"``,
        ``"unknown-enum"``, ``"out-of-window"``); the ingest pipeline
        aggregates quarantined rows by this key.
    line:
        1-based line number of the offending row, when known.
    """

    def __init__(
        self,
        message: str,
        *,
        error_class: str = "malformed-value",
        line: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.error_class = error_class
        self.line = line


#: Column order of the CSV trace format.
CSV_COLUMNS: Tuple[str, ...] = (
    "record_id",        # integer; stable identifier within the file
    "system_id",        # integer, 1-22 for the LANL inventory
    "node_id",          # integer, zero-based within the system
    "start_time",       # float seconds since 1996-01-01 00:00
    "end_time",         # float seconds since 1996-01-01 00:00
    "workload",         # compute | graphics | fe
    "root_cause",       # hardware | software | network | environment | human | unknown
    "low_level_cause",  # detailed cause string, or empty
)

_DESCRIPTIONS = {
    "record_id": "Stable integer identifier of the record within the file.",
    "system_id": "Paper system ID (1-22 for the LANL inventory).",
    "node_id": "Zero-based node index within the system.",
    "start_time": "Failure start, float seconds since 1996-01-01 00:00.",
    "end_time": "Repair completion, float seconds since 1996-01-01 00:00.",
    "workload": "Workload on the node: compute, graphics or fe.",
    "root_cause": (
        "High-level root cause: hardware, software, network, environment, "
        "human or unknown."
    ),
    "low_level_cause": (
        "Detailed cause (e.g. 'memory', 'parallel filesystem'); empty when "
        "only the high-level cause is known."
    ),
}


def describe_schema() -> str:
    """A human-readable description of the CSV columns."""
    lines = ["Failure-trace CSV schema (one row per failure):", ""]
    for column in CSV_COLUMNS:
        lines.append(f"  {column:<16} {_DESCRIPTIONS[column]}")
    return "\n".join(lines)
