"""Shard journal: crash-safe resumable runs under a run directory.

A *run directory* records everything needed to resume an interrupted
generation::

    <run_dir>/
      meta.json         # identity of the run (seed, config digest, ...)
      journal.jsonl     # one line per completed shard (append-only)
      shards/<key>-<digest>.pkl  # the shard's pickled payload (atomic write)
      run_report.json   # written by the CLI after the run

Shard payloads are written atomically *before* the journal line is
appended (and the journal append is flushed + fsynced), so a crash at
any point leaves either a fully recorded shard or no record at all — a
truncated trailing journal line is tolerated and ignored on load.

``meta.json`` pins the run's identity: resuming with a different seed,
engine, config or inventory raises :class:`JournalError` instead of
silently splicing incompatible shards together.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import re
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    fs_fault_hook,
)

__all__ = ["ShardJournal", "JournalError"]

PathLike = Union[str, Path]

_SAFE_KEY = re.compile(r"[^A-Za-z0-9._-]+")


class JournalError(RuntimeError):
    """The run directory is unusable (mismatched identity, corrupt shard)."""


def _payload_name(key: str) -> str:
    """Unique, filesystem-safe payload filename for a shard key.

    Sanitizing alone can collide (``a/b`` and ``a_b`` both sanitize to
    ``a_b``), so a short digest of the *raw* key disambiguates.
    """
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:8]
    return f"{_SAFE_KEY.sub('_', key)}-{digest}.pkl"


class ShardJournal:
    """Append-only journal of completed shards in a run directory.

    Parameters
    ----------
    run_dir:
        The run directory; created if missing.
    meta:
        Identity of the run.  On a fresh journal it is written to
        ``meta.json``; on ``resume=True`` it must match the stored one.
    resume:
        Resume an existing run (load its completed shards) instead of
        starting fresh (which clears any previous journal).
    """

    def __init__(
        self,
        run_dir: PathLike,
        meta: Optional[Dict[str, Any]] = None,
        resume: bool = False,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.meta_path = self.run_dir / "meta.json"
        self.journal_path = self.run_dir / "journal.jsonl"
        self.shards_dir = self.run_dir / "shards"
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.shards_dir.mkdir(exist_ok=True)
        if resume:
            if not self.meta_path.exists():
                raise JournalError(
                    f"cannot resume: {self.meta_path} does not exist "
                    "(was this run started with --run-dir?)"
                )
            stored = json.loads(self.meta_path.read_text(encoding="utf-8"))
            if meta is not None and stored != meta:
                changed = sorted(
                    k for k in set(stored) | set(meta)
                    if stored.get(k) != meta.get(k)
                )
                raise JournalError(
                    f"cannot resume {self.run_dir}: run identity changed "
                    f"(fields: {', '.join(changed)}); start a fresh run "
                    "directory instead"
                )
            self.meta = stored
            self._load_entries()
        else:
            # Invalidate the previous run *before* establishing the new
            # identity: a crash between the two steps then leaves either
            # the old consistent state or a journal-less directory —
            # never a fresh meta.json alongside an older run's journal,
            # which a later --resume would happily splice together.
            if self.journal_path.exists():
                self.journal_path.unlink()
            for stale in self.shards_dir.glob("*.pkl"):
                with contextlib.suppress(OSError):
                    stale.unlink()
            self.meta = dict(meta or {})
            atomic_write_json(self.meta_path, self.meta)

    # -- loading -------------------------------------------------------

    def _load_entries(self) -> None:
        if not self.journal_path.exists():
            return
        with self.journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves a truncated final line;
                    # that shard simply regenerates.
                    continue
                if isinstance(entry, dict) and "shard" in entry:
                    self._entries[entry["shard"]] = entry

    # -- queries -------------------------------------------------------

    @property
    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Journal entries by shard key."""
        return dict(self._entries)

    def has(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def load(self, key: str) -> Any:
        """Unpickle a completed shard's payload, verifying its digest."""
        entry = self._entries[key]
        path = self.shards_dir / entry["file"]
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise JournalError(
                f"shard {key}: payload {path} unreadable: {exc}"
            ) from exc
        digest = hashlib.sha256(blob).hexdigest()
        if digest != entry.get("sha256"):
            raise JournalError(
                f"shard {key}: payload {path} corrupt "
                f"(sha256 {digest[:12]}... != journal {str(entry.get('sha256'))[:12]}...)"
            )
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise JournalError(
                f"shard {key}: payload {path} failed to unpickle: {exc}"
            ) from exc

    # -- recording -----------------------------------------------------

    def record(
        self, key: str, payload: Any, extra: Optional[Dict[str, Any]] = None
    ) -> None:
        """Durably record a completed shard (payload first, then journal)."""
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        file_name = _payload_name(key)
        atomic_write_bytes(self.shards_dir / file_name, blob)
        entry: Dict[str, Any] = {
            "shard": key,
            "file": file_name,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
        }
        if extra:
            entry.update(extra)
        with self.journal_path.open("a+", encoding="utf-8") as handle:
            # Self-heal a torn tail: a crash mid-append (torn write, an
            # ENOSPC that landed half a line) leaves the file without a
            # trailing newline; appending straight after it would glue
            # this entry onto the garbage and lose *both* lines.
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(handle.tell() - 1)
                if handle.read(1) != "\n":
                    handle.write("\n")
            fs_fault_hook(
                "journal.append",
                self.journal_path,
                write=handle.write,
                data=json.dumps(entry, sort_keys=True) + "\n",
            )
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[key] = entry

    # -- verification --------------------------------------------------

    def verify(self) -> list:
        """Deep-check meta/journal/payload consistency; list of problems.

        Every journal entry's payload file must exist and match its
        recorded sha256, and ``meta.json`` must still parse and match
        the identity this journal was opened with.  An *orphan* payload
        (payload file with no journal line — the signature of a crash
        between the payload write and the journal append) is reported
        as recoverable, prefixed ``orphan:``, because a resume simply
        regenerates and overwrites it; callers that want a strict check
        can treat any non-empty return as a failure.
        """
        problems = []
        try:
            stored = json.loads(self.meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"meta.json unreadable: {type(exc).__name__}: {exc}")
            stored = None
        if stored is not None and self.meta and stored != self.meta:
            problems.append("meta.json does not match this journal's identity")
        recorded_files = set()
        for key, entry in sorted(self._entries.items()):
            path = self.shards_dir / entry["file"]
            recorded_files.add(entry["file"])
            try:
                blob = path.read_bytes()
            except OSError as exc:
                problems.append(
                    f"shard {key}: payload missing ({type(exc).__name__})"
                )
                continue
            digest = hashlib.sha256(blob).hexdigest()
            if digest != entry.get("sha256"):
                problems.append(
                    f"shard {key}: payload sha256 mismatch "
                    f"({digest[:12]}... != {str(entry.get('sha256'))[:12]}...)"
                )
            elif entry.get("bytes") not in (None, len(blob)):
                problems.append(
                    f"shard {key}: payload is {len(blob)} bytes, journal "
                    f"recorded {entry.get('bytes')}"
                )
        for stray in sorted(self.shards_dir.glob("*.pkl")):
            if stray.name not in recorded_files:
                problems.append(f"orphan: payload {stray.name} has no journal entry")
        return problems
