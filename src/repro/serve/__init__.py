"""repro.serve — the always-on analytics service over a columnar store.

``repro serve <store-dir>`` exposes the out-of-core analytics of
:mod:`repro.store` as versioned HTTP query endpoints, engineered to
the availability posture the paper documents for production HPC
services: requests carry deadlines, overload is shed at admission, and
store damage degrades answers (with explicit coverage metadata)
instead of taking the service down.

Layers, bottom up:

- :mod:`repro.serve.admission` — bounded concurrency + capped queue,
  HTTP 429 shedding.
- :mod:`repro.serve.cache` — generation-keyed result cache (manifest +
  quarantine-ledger digest) with a last-good stale fallback.
- :mod:`repro.serve.gateway` — the degradation ladder: circuit-broken
  primary read → skip-read with coverage → stale cache.
- :mod:`repro.serve.router` — endpoint table and query normalization.
- :mod:`repro.serve.server` — asyncio HTTP server, deadlines, graceful
  SIGTERM drain; :class:`~repro.serve.server.ServerThread` for
  in-process harnesses.
- :mod:`repro.serve.client` / :mod:`repro.serve.bench` — the tiny
  HTTP clients and the ``repro serve-bench`` load generator.

The endpoint contract lives in ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController, AdmissionShed
from repro.serve.bench import check_serve_report, run_serve_bench
from repro.serve.cache import CachedResult, ResultCache
from repro.serve.gateway import (
    Query,
    QueryResult,
    StoreGateway,
    StoreUnavailable,
)
from repro.serve.router import ROUTES, BadRequest, Route, resolve
from repro.serve.server import AnalyticsServer, ServeConfig, ServerThread

__all__ = [
    "AdmissionController",
    "AdmissionShed",
    "AnalyticsServer",
    "BadRequest",
    "CachedResult",
    "Query",
    "QueryResult",
    "ResultCache",
    "Route",
    "ROUTES",
    "ServeConfig",
    "ServerThread",
    "StoreGateway",
    "StoreUnavailable",
    "check_serve_report",
    "resolve",
    "run_serve_bench",
]
