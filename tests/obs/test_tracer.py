"""Tracer core: span nesting, deterministic ids, graft, spool."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.schema import validate_events


class TestSpanRecording:
    def test_nesting_and_ids_are_deterministic(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("child-a"):
                pass
            with tracer.span("child-b"):
                pass
        # Open order assigns ids; close order emits events.
        names = [event["name"] for event in tracer.events]
        assert names == ["child-a", "child-b", "outer"]
        by_name = {event["name"]: event for event in tracer.events}
        assert by_name["outer"]["id"] == "main:0"
        assert by_name["child-a"]["id"] == "main:1"
        assert by_name["child-b"]["id"] == "main:2"
        assert by_name["child-a"]["parent"] == "main:0"
        assert by_name["child-b"]["parent"] == "main:0"
        assert by_name["outer"]["parent"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["child-a"]["depth"] == 1

    def test_attrs_and_counters_recorded(self):
        tracer = obs.Tracer()
        with tracer.span("work", system=2, engine="vectorized") as span:
            span.set("nodes", 49)
            span.add("records", 10)
            span.add("records", 5)
        event = tracer.events[0]
        assert event["attrs"] == {"system": 2, "engine": "vectorized", "nodes": 49}
        assert event["counters"] == {"records": 15}
        assert event["status"] == "ok"
        assert event["wall_s"] >= 0 and event["cpu_s"] >= 0

    def test_exception_closes_span_with_error_status(self):
        tracer = obs.Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        event = tracer.events[0]
        assert event["status"] == "error"
        assert event["error"] == "RuntimeError: boom"

    def test_out_of_order_close_raises(self):
        tracer = obs.Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_open_spans_lists_stack(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.open_spans == ["a", "b"]
        assert tracer.open_spans == []

    def test_emit_records_premeasured_span(self):
        tracer = obs.Tracer()
        with tracer.span("parent"):
            span_id = tracer.emit(
                "attempt", wall_s=1.5, attrs={"shard": "system-2"}
            )
        assert span_id == "main:1"
        event = tracer.events[0]
        assert event["name"] == "attempt"
        assert event["wall_s"] == 1.5
        assert event["parent"] == "main:0"
        assert event["depth"] == 1

    def test_emit_with_error_marks_status(self):
        tracer = obs.Tracer()
        tracer.emit("attempt", error="ChaosError: injected")
        assert tracer.events[0]["status"] == "error"
        assert tracer.events[0]["error"] == "ChaosError: injected"


class TestGraft:
    def _worker_events(self, key):
        worker = obs.Tracer(stream=key)
        with worker.span("synth.system", system=2):
            with worker.span("synth.arrivals"):
                pass
        return worker.events

    def test_graft_reparents_roots_and_shifts_depth(self):
        parent = obs.Tracer()
        with parent.span("supervise"):
            span_id = parent.emit("shard.attempt", attrs={"shard": "system-2"})
            parent.graft(self._worker_events("system-2"), span_id)
        by_name = {event["name"]: event for event in parent.events}
        root = by_name["synth.system"]
        assert root["parent"] == span_id
        assert root["depth"] == by_name["shard.attempt"]["depth"] + 1
        child = by_name["synth.arrivals"]
        assert child["parent"] == root["id"]
        assert child["depth"] == root["depth"] + 1
        # The merged stream still validates: ids unique, depths consistent.
        assert validate_events(parent.to_events()) == []

    def test_graft_unknown_parent_raises(self):
        tracer = obs.Tracer()
        with pytest.raises(KeyError, match="unknown graft parent"):
            tracer.graft(self._worker_events("system-2"), "main:99")

    def test_graft_ignores_non_span_events(self):
        parent = obs.Tracer()
        span_id = parent.emit("shard.attempt")
        parent.graft(
            [{"type": "header", "kind": "repro-trace"}], span_id
        )
        assert len(parent.events) == 1


class TestOutput:
    def test_write_roundtrips_through_schema(self, tmp_path):
        tracer = obs.Tracer(run_id="test:seed=1")
        registry = obs.MetricsRegistry()
        registry.counter("records").add(7)
        with tracer.span("root"):
            pass
        path = tmp_path / "trace.jsonl"
        count = tracer.write(path, metrics=registry)
        lines = path.read_text().strip().split("\n")
        assert count == len(lines) == 3  # header + span + metric
        events = [json.loads(line) for line in lines]
        assert events[0]["kind"] == obs.TRACE_KIND
        assert events[0]["schema"] == obs.SCHEMA_VERSION
        assert events[0]["run_id"] == "test:seed=1"
        assert events[-1] == {
            "type": "metric", "kind": "counter", "name": "records", "value": 7,
        }
        assert validate_events(events) == []


class TestSpool:
    def test_spool_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.SPOOL_ENV_VAR, str(tmp_path))
        worker = obs.Tracer(stream="system-2")
        with worker.span("synth.system"):
            pass
        path = obs.write_spool(worker, "system-2")
        assert path is not None and path.parent == tmp_path
        events = obs.load_spool_events("system-2")
        assert [event["name"] for event in events] == ["synth.system"]

    def test_spool_disarmed_is_noop(self, monkeypatch):
        monkeypatch.delenv(obs.SPOOL_ENV_VAR, raising=False)
        assert obs.write_spool(obs.Tracer(), "system-2") is None
        assert obs.load_spool_events("system-2") == []

    def test_retry_overwrites_spool(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.SPOOL_ENV_VAR, str(tmp_path))
        first = obs.Tracer(stream="system-2")
        with first.span("attempt-1"):
            pass
        obs.write_spool(first, "system-2")
        second = obs.Tracer(stream="system-2")
        with second.span("attempt-2"):
            pass
        obs.write_spool(second, "system-2")
        assert [e["name"] for e in obs.load_spool_events("system-2")] == [
            "attempt-2"
        ]

    def test_spool_path_is_safe_and_collision_free(self, tmp_path):
        weird = obs.spool_path(tmp_path, "shard/../etc")
        assert weird.parent == tmp_path
        assert weird.name.endswith(".events.jsonl")
        other = obs.spool_path(tmp_path, "shard/./etc")
        assert weird != other  # same sanitized text, different digest


class TestActivation:
    def test_module_span_is_null_when_disabled(self):
        assert obs.span("anything") is obs.NULL_SPAN
        assert not obs.enabled()

    def test_null_span_supports_full_surface(self):
        with obs.span("off", key=1) as span:
            assert span.set("a", 1) is span
            assert span.add("b") is span

    def test_observing_installs_and_restores(self, tmp_path, monkeypatch):
        monkeypatch.delenv(obs.SPOOL_ENV_VAR, raising=False)
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        with obs.observing(tracer, registry, spool=tmp_path / "spool"):
            assert obs.enabled()
            assert obs.active_tracer() is tracer
            assert obs.active_metrics() is registry
            assert obs.spool_dir() == tmp_path / "spool"
            with obs.span("traced"):
                pass
            obs.metrics().counter("hits").add()
        assert not obs.enabled()
        assert obs.spool_dir() is None
        assert tracer.events[0]["name"] == "traced"
        assert registry.counter("hits").value == 1

    def test_disabled_metrics_are_discarded(self):
        registry = obs.metrics()
        registry.counter("lost").add(5)
        assert obs.metrics().counter("lost").value == 0

    def test_worker_tracing_noop_unless_armed(self, monkeypatch):
        monkeypatch.delenv(obs.SPOOL_ENV_VAR, raising=False)
        with obs.worker_tracing("system-2") as tracer:
            assert tracer is None

    def test_worker_tracing_spools_even_on_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv(obs.SPOOL_ENV_VAR, str(tmp_path))
        with pytest.raises(RuntimeError):
            with obs.worker_tracing("system-2"):
                with obs.span("synth.system"):
                    raise RuntimeError("chaos")
        events = obs.load_spool_events("system-2")
        assert len(events) == 1
        assert events[0]["status"] == "error"
