"""A memory-mapped, sharded columnar trace store.

The store lays a failure trace out as per-shard, per-column ``.npy``
files plus a trailing ``manifest.json`` carrying the schema digest and
per-shard min/max statistics for predicate pushdown.  Writes go
through the repo's atomic machinery (crash-safe, chaos-testable);
reads are memory-mapped and chunked, so analyses run out-of-core over
traces far larger than RAM.

Entry points:

* :meth:`repro.synth.generator.TraceGenerator.generate_store` — write
  a generated trace straight to a store (``repro generate --store
  columnar``).
* :class:`ColumnarStore` — open, scan, verify
  (``repro store info|verify|analyze``).
* :func:`store_from_trace` / :func:`store_from_file` /
  :func:`export_store` — convert to and from traces and CSV/JSONL
  (``repro store import|export``).

Format and semantics are documented in ``docs/columnar.md``.
"""

from repro.store.analytics import StoreSummary, summarize_store
from repro.store.convert import export_store, store_from_file, store_from_trace
from repro.store.manifest import (
    MANIFEST_NAME,
    SHARDS_DIR,
    Manifest,
    Predicate,
    ShardInfo,
    StoreError,
)
from repro.store.reader import ColumnarStore, ScanStats, verify_store
from repro.store.schema import (
    COLUMN_NAMES,
    COLUMNS,
    FORMAT_VERSION,
    ColumnBatch,
    batch_from_records,
    concat_batches,
    empty_batch,
    records_from_batch,
    schema_digest,
)
from repro.store.writer import DEFAULT_SHARD_ROWS, StoreWriter

__all__ = [
    "COLUMNS",
    "COLUMN_NAMES",
    "FORMAT_VERSION",
    "DEFAULT_SHARD_ROWS",
    "MANIFEST_NAME",
    "SHARDS_DIR",
    "ColumnBatch",
    "ColumnarStore",
    "Manifest",
    "Predicate",
    "ScanStats",
    "ShardInfo",
    "StoreError",
    "StoreSummary",
    "StoreWriter",
    "batch_from_records",
    "concat_batches",
    "empty_batch",
    "export_store",
    "records_from_batch",
    "schema_digest",
    "store_from_file",
    "store_from_trace",
    "summarize_store",
    "verify_store",
]
