"""supervised_map: surviving crashed, hung and failing workers.

These tests run real ``ProcessPoolExecutor`` pools with tiny tasks.
Cross-process "fail only the first N times" coordination uses the same
claim-file scheme as :mod:`repro.faults.process_ops`: a worker injects
its failure only if it can exclusively create the next claim file.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.resilience import (
    CircuitBreaker,
    RetryPolicy,
    RunReport,
    SupervisorError,
    supervised_map,
)

FAST = RetryPolicy(base_delay=0.01, max_delay=0.05, max_attempts=3)


def _claim(state_dir: str, times: int) -> bool:
    for n in range(times):
        try:
            fd = os.open(
                os.path.join(state_dir, f"claim-{n}"),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


# --- module-level tasks (must be picklable) ---------------------------

def _square(payload):
    return payload * payload


def _flaky(payload):
    value, state_dir, fail_times = payload
    if _claim(state_dir, fail_times):
        raise RuntimeError(f"transient failure for {value}")
    return value * 10


def _kill_self(payload):
    value, state_dir, kill_times = payload
    if _claim(state_dir, kill_times):
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 100


def _hang(payload):
    value, state_dir, hang_times = payload
    if _claim(state_dir, hang_times):
        time.sleep(600)
    return value + 7


def _always_fails(payload):
    raise ValueError("permanent defect")


def _staged(payload):
    value, stage = payload
    if stage == "primary":
        raise RuntimeError("primary engine broken")
    return (value, stage)


class TestHappyPath:
    def test_maps_all_payloads(self):
        results = supervised_map(_square, [1, 2, 3], workers=2, policy=FAST)
        assert results == {"shard-0": 1, "shard-1": 4, "shard-2": 9}

    def test_custom_keys_and_on_result(self):
        seen = []
        results = supervised_map(
            _square,
            [2, 3],
            keys=["a", "b"],
            workers=2,
            policy=FAST,
            on_result=lambda key, value: seen.append((key, value)),
        )
        assert results == {"a": 4, "b": 9}
        assert sorted(seen) == [("a", 4), ("b", 9)]


class TestRecovery:
    def test_flaky_task_retried_to_success(self, tmp_path):
        report = RunReport()
        results = supervised_map(
            _flaky,
            [(i, str(tmp_path), 2) for i in range(4)],
            keys=[f"s{i}" for i in range(4)],
            workers=2,
            policy=FAST,
            report=report,
        )
        assert results == {f"s{i}": i * 10 for i in range(4)}
        assert report.ok
        retried = report.retried_shards
        assert retried, "two injected failures must show up as retries"
        for shard in retried:
            assert shard.attempts[0].outcome == "error"
            assert shard.attempts[0].backoff is not None
            assert shard.attempts[-1].outcome == "ok"

    def test_killed_worker_pool_respawned(self, tmp_path):
        report = RunReport()
        results = supervised_map(
            _kill_self,
            [(i, str(tmp_path), 2) for i in range(5)],
            keys=[f"s{i}" for i in range(5)],
            workers=2,
            policy=FAST,
            report=report,
        )
        assert results == {f"s{i}": i + 100 for i in range(5)}
        crashes = [
            attempt
            for shard in report.shards.values()
            for attempt in shard.attempts
            if attempt.outcome == "crash"
        ]
        assert crashes, "worker kills must be recorded as crash attempts"
        assert report.ok

    def test_hung_worker_terminated_and_retried(self, tmp_path):
        report = RunReport()
        results = supervised_map(
            _hang,
            [(i, str(tmp_path), 1) for i in range(3)],
            keys=[f"s{i}" for i in range(3)],
            workers=2,
            policy=FAST,
            shard_timeout=1.5,
            report=report,
        )
        assert results == {f"s{i}": i + 7 for i in range(3)}
        timeouts = [
            attempt
            for shard in report.shards.values()
            for attempt in shard.attempts
            if attempt.outcome == "timeout"
        ]
        assert timeouts, "the hang must be recorded as a timeout attempt"


class TestDegradationAndSkip:
    def test_permanent_failure_becomes_structured_skip(self):
        report = RunReport()
        results = supervised_map(
            _always_fails,
            [0, 1],
            keys=["bad-0", "bad-1"],
            workers=2,
            policy=RetryPolicy(base_delay=0.0, jitter=0.0, max_attempts=2),
            report=report,
        )
        assert results == {"bad-0": None, "bad-1": None}
        assert {s.shard for s in report.skipped_shards} == {"bad-0", "bad-1"}
        assert not report.ok

    def test_stage_ladder_degrades_payload(self):
        report = RunReport()
        breaker = CircuitBreaker(
            stages=("primary", "fallback"), failure_threshold=1
        )
        results = supervised_map(
            _staged,
            [(1, "primary"), (2, "primary")],
            keys=["a", "b"],
            workers=2,
            policy=RetryPolicy(base_delay=0.0, jitter=0.0, max_attempts=1),
            breaker=breaker,
            stage_payload=lambda payload, stage: (payload[0], stage),
            report=report,
        )
        assert results == {"a": (1, "fallback"), "b": (2, "fallback")}
        assert {s.shard for s in report.degraded_shards} == {"a", "b"}

    def test_deadline_skips_remaining_shards(self):
        report = RunReport()
        results = supervised_map(
            _always_fails,
            [0],
            keys=["slow"],
            workers=2,
            policy=RetryPolicy(
                base_delay=0.0, jitter=0.0, max_attempts=100, deadline=0.001
            ),
            report=report,
        )
        assert results == {"slow": None}
        assert report.shards["slow"].attempts[-1].outcome == "deadline"


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(SupervisorError, match="workers"):
            supervised_map(_square, [1], workers=0)

    def test_mismatched_keys(self):
        with pytest.raises(SupervisorError, match="keys"):
            supervised_map(_square, [1, 2], keys=["only-one"], workers=1)

    def test_duplicate_keys(self):
        with pytest.raises(SupervisorError, match="unique"):
            supervised_map(_square, [1, 2], keys=["x", "x"], workers=1)
