"""Shared bench fixtures.

Every bench consumes the same full synthetic LANL trace (seed 1),
generated once per session.  Benches print the reproduced paper
artifact (run with ``-s`` to see it) and assert the paper's *shape*
claims — fit rankings, hazard directions, ratios — not absolute counts.
"""

from __future__ import annotations

import pytest

from repro.synth import TraceGenerator


@pytest.fixture(scope="session")
def trace():
    """The full 22-system synthetic LANL trace."""
    return TraceGenerator(seed=1).generate()


@pytest.fixture(scope="session")
def system20(trace):
    """System 20, the paper's reference system for Figures 3 and 6."""
    return trace.filter_systems([20])
