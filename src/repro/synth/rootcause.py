"""Root-cause sampling (Figure 1, Section 4).

Each failure gets a high-level cause drawn from the hardware type's
mixture, then a low-level detail drawn from the cause's detail mixture.
Two refinements match the paper:

* **Unknown-cause era** (Section 4): for types D and G — the first
  large SMP cluster and the first NUMA clusters — the fraction of
  failures with unknown root cause started above 90% and dropped below
  10% within ~2 years as administrators learned the systems.  Modeled
  as an age-dependent probability that a failure's diagnosis is lost
  (cause replaced by UNKNOWN).
* **Burst causes**: correlated simultaneous failures share their
  parent's cause (a power outage hits many nodes at once); handled in
  :mod:`repro.synth.correlated`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.records.record import LowLevelCause, RootCause
from repro.records.system import HardwareType
from repro.records.timeutils import SECONDS_PER_MONTH
from repro.synth.config import GeneratorConfig

__all__ = ["CauseModel"]


class CauseModel:
    """Samples (root cause, low-level cause) pairs for one system."""

    def __init__(self, config: GeneratorConfig, hardware_type: HardwareType) -> None:
        self._config = config
        self._hardware_type = hardware_type
        mix = config.cause_mix[hardware_type]
        self._causes = tuple(mix.keys())
        self._cause_probs = np.array([mix[cause] for cause in self._causes])
        self._detail_tables: Dict[RootCause, Tuple[Tuple[LowLevelCause, ...], np.ndarray]] = {}
        for cause, table in (
            (RootCause.HARDWARE, config.hardware_detail[hardware_type]),
            (RootCause.SOFTWARE, config.software_detail[hardware_type]),
            (RootCause.NETWORK, config.network_detail),
            (RootCause.ENVIRONMENT, config.environment_detail),
            (RootCause.HUMAN, config.human_detail),
        ):
            details = tuple(table.keys())
            self._detail_tables[cause] = (
                details,
                np.array([table[detail] for detail in details]),
            )
        self._unknown_era = hardware_type in config.unknown_era_types

    def unknown_probability(self, age_seconds: float) -> float:
        """Extra probability that a failure's diagnosis is lost at ``age``.

        Zero for types outside the unknown era; otherwise decays
        exponentially from ``unknown_era_initial`` so the *total*
        unknown fraction starts above 90% and falls under 10% within
        about two years.
        """
        if not self._unknown_era:
            return 0.0
        tau = self._config.unknown_era_decay_months * SECONDS_PER_MONTH
        return self._config.unknown_era_initial * math.exp(-max(age_seconds, 0.0) / tau)

    def sample(
        self, generator: np.random.Generator, age_seconds: float
    ) -> Tuple[RootCause, Optional[LowLevelCause]]:
        """Draw a (root cause, low-level cause) pair for a failure.

        Parameters
        ----------
        generator:
            RNG to draw from.
        age_seconds:
            System age at failure time (drives the unknown-cause era).
        """
        cause = self._causes[int(generator.choice(len(self._causes), p=self._cause_probs))]
        lost = self.unknown_probability(age_seconds)
        if lost > 0.0 and cause is not RootCause.UNKNOWN:
            if generator.random() < lost:
                return RootCause.UNKNOWN, None
        if cause is RootCause.UNKNOWN:
            return cause, None
        details, probs = self._detail_tables[cause]
        detail = details[int(generator.choice(len(details), p=probs))]
        return cause, detail
