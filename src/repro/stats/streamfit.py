"""Maximum-likelihood fitting from mergeable sketches.

The streaming counterpart of :mod:`repro.stats.fitting`: every fitter
here consumes a :class:`~repro.stats.sketch.SampleSketch` (bounded
memory, built chunk-by-chunk over a columnar store) instead of a
materialized sample, and returns the same :class:`FitResult` objects so
report code is agnostic about which path produced a fit.

Exactness
---------
The exponential, lognormal and gamma MLEs depend on the sample only
through ``n``, ``sum(x)`` and ``sum(log x)`` — all tracked *exactly* by
the sketch — so their parameters and negative log-likelihoods match the
materialized fits to floating-point noise.  Closed forms used (with
``n`` the count, ``S`` = sum(x), ``L`` = sum(log x), all over the
clamped sample, mirroring ``fit_all``'s ``prepare_positive`` step):

* exponential, scale = mean:  nll = n (log mean + 1)
* lognormal, mu = mean(log x), sigma = std(log x):
  nll = L + n log sigma + n log sqrt(2 pi) + n/2
  (the z² sum collapses to n at the MLE)
* gamma, Newton on log k - digamma(k) = log(mean) - mean(log x):
  nll = -(k-1) L + S/theta + n lgamma(k) + n k log theta

The Weibull profile likelihood needs ``sum(x^k)`` for varying k, which
no fixed-size exact summary provides; its Newton iteration runs over
the log-bucket histogram's weighted representatives instead, making the
shape/scale accurate to the histogram's relative-error bound
(:data:`~repro.stats.sketch.QUANTILE_RELATIVE_ERROR`).  The KS
statistic is likewise computed against the histogram's weighted ECDF
for every candidate.

Degenerate-sample behaviour mirrors :mod:`repro.stats.fitting` exactly:
the same :class:`DegenerateFitError` conditions and messages, and the
same "degenerate only if every candidate was degenerate" ranking
semantics.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

import numpy as np
from scipy import special

from repro.stats.empirical import EmpiricalDistribution
from repro.stats.distributions import (
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    Weibull,
)
from repro.stats.fitting import (
    DegenerateFitError,
    FitError,
    FitOutcome,
    FitResult,
    _raise_no_candidate,
)
from repro.stats.gof import aic, bic
from repro.stats.sketch import LogBucketSketch, SampleSketch

__all__ = [
    "sketch_ks",
    "sketch_empirical",
    "sketch_fit_exponential",
    "sketch_fit_weibull",
    "sketch_fit_gamma",
    "sketch_fit_lognormal",
    "sketch_fit_all",
    "sketch_fit_all_safe",
    "SKETCH_FITTERS",
]

_LOG_SQRT_2PI = 0.5 * math.log(2.0 * math.pi)


def sketch_ks(histogram: LogBucketSketch, distribution: Distribution) -> float:
    """KS statistic of a histogram's weighted ECDF against a CDF.

    The sketched analogue of :func:`repro.stats.gof.ks_statistic`:
    evaluated at the occupied buckets' representative values using both
    limits of the weighted empirical step function.
    """
    values, counts = histogram.representatives()
    if values.size == 0:
        raise ValueError("ks_statistic requires at least one observation")
    n = float(histogram.count)
    cumulative = np.cumsum(counts).astype(float)
    upper = cumulative / n
    lower = (cumulative - counts) / n
    cdf = np.asarray(distribution.cdf(values), dtype=float)
    return float(np.max(np.maximum(np.abs(upper - cdf), np.abs(cdf - lower))))


def sketch_empirical(sketch: SampleSketch) -> EmpiricalDistribution:
    """An :class:`EmpiricalDistribution` summary of a sketched sample.

    Count, mean, std, min and max come from the *raw* moment sketch and
    are exact; the median comes from the log-bucket histogram and is
    accurate to its relative-error bound.  When the median rank falls
    inside the sample's exact-zero block the median is reported as 0.0
    (the histogram only sees the clamped values).
    """
    raw = sketch.raw
    if raw.count == 0:
        raise ValueError("cannot summarize an empty sample")
    if 0.5 * (raw.count - 1) < sketch.nonpositive:
        median = 0.0
    else:
        median = sketch.histogram.median
    return EmpiricalDistribution(
        count=raw.count,
        mean=raw.mean,
        median=median,
        std=raw.std,
        minimum=raw.minimum,
        maximum=raw.maximum,
    )


def _require_sample(sketch: SampleSketch) -> int:
    n = sketch.clamped.count
    if n < 2:
        raise DegenerateFitError(
            f"need at least 2 observations, got {n}"
        )
    return n


def _sketch_result(
    distribution: Distribution, nll: float, sketch: SampleSketch
) -> FitResult:
    n = sketch.clamped.count
    return FitResult(
        distribution=distribution,
        nll=nll,
        aic=aic(nll, distribution.n_params),
        bic=bic(nll, distribution.n_params, n),
        ks=sketch_ks(sketch.histogram, distribution),
        n=n,
    )


def sketch_fit_exponential(sketch: SampleSketch) -> FitResult:
    """Streaming MLE exponential fit: scale = clamped sample mean."""
    n = _require_sample(sketch)
    mean = sketch.clamped.mean
    if mean <= 0:
        raise DegenerateFitError("exponential requires positive sample mean")
    nll = n * (math.log(mean) + 1.0)
    return _sketch_result(Exponential(scale=mean), nll, sketch)


def sketch_fit_lognormal(sketch: SampleSketch) -> FitResult:
    """Streaming MLE lognormal fit from the log-moment sketch."""
    n = _require_sample(sketch)
    mu = sketch.log_clamped.mean
    sigma = sketch.log_clamped.std  # ddof=0: MLE convention
    if sigma <= 0:
        raise DegenerateFitError("degenerate sample (all values equal)")
    nll = (
        sketch.log_clamped.total
        + n * math.log(sigma)
        + n * _LOG_SQRT_2PI
        + 0.5 * n
    )
    return _sketch_result(LogNormal(mu=mu, sigma=sigma), nll, sketch)


def sketch_fit_gamma(
    sketch: SampleSketch, tolerance: float = 1e-10, max_iterations: int = 200
) -> FitResult:
    """Streaming MLE gamma fit — exact, the shape equation needs only
    ``log(mean)`` and ``mean(log x)``."""
    n = _require_sample(sketch)
    mean = sketch.clamped.mean
    mean_log = sketch.log_clamped.mean
    s = math.log(mean) - mean_log
    if s <= 1e-12:
        raise DegenerateFitError("degenerate sample (zero log-spread)")
    # Minka's initialization, then the same Newton as fit_gamma.
    k = (3.0 - s + math.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)
    for _ in range(max_iterations):
        g = math.log(k) - float(special.digamma(k)) - s
        g_prime = 1.0 / k - float(special.polygamma(1, k))
        if g_prime == 0.0 or not math.isfinite(g_prime):
            break
        k_next = k - g / g_prime
        if k_next <= 0:
            k_next = k / 2.0
        if abs(k_next - k) < tolerance * max(1.0, k):
            k = k_next
            break
        k = k_next
    shape = float(k)
    scale = mean / shape
    nll = (
        -(shape - 1.0) * sketch.log_clamped.total
        + sketch.clamped.total / scale
        + n * float(special.gammaln(shape))
        + n * shape * math.log(scale)
    )
    return _sketch_result(Gamma(shape=shape, scale=scale), nll, sketch)


def sketch_fit_weibull(
    sketch: SampleSketch, tolerance: float = 1e-10, max_iterations: int = 200
) -> FitResult:
    """Streaming Weibull fit: Newton over histogram representatives.

    The profile-likelihood sums ``sum(x^k ...)`` are evaluated over the
    weighted bucket representatives (the one approximate step), while
    ``mean(log x)`` and ``std(log x)`` come exactly from the log-moment
    sketch.  Same bracketed Newton and stabilized scale computation as
    :func:`repro.stats.fitting.fit_weibull`.
    """
    n = _require_sample(sketch)
    mean_log = sketch.log_clamped.mean
    std_log = sketch.log_clamped.std  # ddof=0: MLE convention
    if std_log <= 0:
        raise DegenerateFitError("degenerate sample (all values equal)")
    values, counts = sketch.histogram.representatives()
    logs = np.log(values)
    weights = counts.astype(float)
    max_log = float(np.max(logs))
    k = 1.2 / std_log
    low, high = 1e-3, 1e3
    for _ in range(max_iterations):
        shifted = weights * np.exp(k * (logs - max_log))
        s0 = float(np.sum(shifted))
        s1 = float(np.sum(shifted * logs))
        s2 = float(np.sum(shifted * logs**2))
        g = s1 / s0 - 1.0 / k - mean_log
        g_prime = (s2 * s0 - s1**2) / s0**2 + 1.0 / k**2
        if g > 0:
            high = min(high, k)
        else:
            low = max(low, k)
        k_next = k - g / g_prime
        if not (low < k_next < high):
            k_next = 0.5 * (low + high)
        if abs(k_next - k) < tolerance * max(1.0, k):
            k = k_next
            break
        k = k_next
    shape = float(k)
    mean_pow = float(np.sum(weights * np.exp(shape * (logs - max_log)))) / n
    scale = math.exp(max_log + math.log(mean_pow) / shape)
    # At the fitted scale, sum over the weighted sample of (x/scale)^k
    # is exactly n, so the likelihood's power-sum term collapses.
    nll = (
        -n * math.log(shape)
        + shape * n * math.log(scale)
        - (shape - 1.0) * sketch.log_clamped.total
        + n
    )
    return _sketch_result(Weibull(shape=shape, scale=scale), nll, sketch)


#: Streaming counterparts of fitting.CONTINUOUS_FITTERS, same order.
SKETCH_FITTERS: Dict[str, Callable[[SampleSketch], FitResult]] = {
    "exponential": sketch_fit_exponential,
    "weibull": sketch_fit_weibull,
    "gamma": sketch_fit_gamma,
    "lognormal": sketch_fit_lognormal,
}


def sketch_fit_all(sketch: SampleSketch) -> List[FitResult]:
    """Fit the paper's four continuous candidates from a sketch.

    The streaming mirror of :func:`repro.stats.fitting.fit_all` —
    zero handling is already encoded in the sketch's clamp, so there is
    no ``zero_policy`` argument.  Results are ranked by NLL.
    """
    results: List[FitResult] = []
    errors: List[FitError] = []
    for _name, fitter in SKETCH_FITTERS.items():
        try:
            results.append(fitter(sketch))
        except FitError as exc:
            errors.append(exc)
            continue
    if not results:
        _raise_no_candidate(errors)
    results.sort(key=lambda result: result.nll)
    return results


def sketch_fit_all_safe(sketch: SampleSketch) -> FitOutcome:
    """:func:`sketch_fit_all` that reports failure as a status."""
    try:
        return FitOutcome(status="ok", fits=tuple(sketch_fit_all(sketch)))
    except FitError as exc:
        status = (
            "degenerate" if isinstance(exc, DegenerateFitError) else "failed"
        )
        return FitOutcome(status=status, error=str(exc))
