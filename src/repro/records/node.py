"""Node-level configuration schema for the Table 1 inventory.

A system's nodes are not identical: Table 1's right half groups them
into *categories* differing in processors per node, memory, NICs and
production window.  :class:`NodeCategory` captures one such row;
:class:`NodeConfig` is the expansion to a concrete node.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.records.record import Workload

__all__ = ["NodeCategory", "NodeConfig"]


@dataclass(frozen=True)
class NodeCategory:
    """One row of the right half of Table 1.

    Attributes
    ----------
    node_count:
        Number of nodes in this category.
    procs_per_node:
        Processors per node.
    memory_gb:
        Main memory per node in GB.
    nics:
        Number of network interfaces per node.
    production_start / production_end:
        Table 1 production window strings (``MM/YY``, ``"N/A"`` or
        ``"now"``); resolved against the data window by the inventory.
    workload:
        Predominant workload of nodes in this category.  Graphics and
        front-end nodes exhibit markedly higher failure rates
        (Section 5.1), so the category records it.
    """

    node_count: int
    procs_per_node: int
    memory_gb: float
    nics: int
    production_start: str = "N/A"
    production_end: str = "now"
    workload: Workload = Workload.COMPUTE

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ValueError(f"node_count must be >= 1, got {self.node_count}")
        if self.procs_per_node < 1:
            raise ValueError(
                f"procs_per_node must be >= 1, got {self.procs_per_node}"
            )
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")
        if self.nics < 0:
            raise ValueError(f"nics must be >= 0, got {self.nics}")

    @property
    def total_processors(self) -> int:
        """Processors contributed by this category."""
        return self.node_count * self.procs_per_node


@dataclass(frozen=True)
class NodeConfig:
    """A concrete node: a category row expanded to one node ID.

    Attributes
    ----------
    system_id:
        Owning system's paper ID.
    node_id:
        Zero-based node index within the system.
    category:
        The :class:`NodeCategory` this node belongs to.
    production_start / production_end:
        Resolved production window in toolkit seconds.
    """

    system_id: int
    node_id: int
    category: NodeCategory
    production_start: float
    production_end: float

    def __post_init__(self) -> None:
        if self.production_end <= self.production_start:
            raise ValueError(
                f"node {self.system_id}/{self.node_id}: empty production window"
            )

    @property
    def procs(self) -> int:
        """Processors on this node."""
        return self.category.procs_per_node

    @property
    def workload(self) -> Workload:
        """Predominant workload of this node."""
        return self.category.workload

    @property
    def production_seconds(self) -> float:
        """Length of the production window in seconds."""
        return self.production_end - self.production_start

    def in_production(self, timestamp: float) -> bool:
        """Whether the node was in production at ``timestamp``."""
        return self.production_start <= timestamp < self.production_end
