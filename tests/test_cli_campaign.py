"""CLI tests for ``repro chaos campaign`` (the chaos-campaign command)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults.campaign import PRESETS, SCORECARD_NAME, TIMINGS_NAME


class TestChaosCampaignCommand:
    @pytest.fixture(scope="class")
    def smoke_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cli-campaign")
        code = main(
            ["chaos", "campaign", "--preset", "smoke", "--seed", "7",
             "--root", str(root)]
        )
        return root, code

    def test_exit_zero_when_invariants_hold(self, smoke_run, capsys):
        _, code = smoke_run
        assert code == 0

    def test_writes_scorecard_and_timings(self, smoke_run):
        root, _ = smoke_run
        scorecard = json.loads((root / SCORECARD_NAME).read_text())
        assert scorecard["ok"] is True
        assert scorecard["preset"] == "smoke"
        assert scorecard["seed"] == 7
        assert len(scorecard["scenarios"]) == len(PRESETS["smoke"])
        assert (root / TIMINGS_NAME).exists()

    def test_two_token_spelling_equals_registered_name(self, tmp_path, capsys):
        # "chaos campaign" and "chaos-campaign" are the same command.
        code = main(
            ["chaos-campaign", "--preset", "smoke", "--seed", "7",
             "--root", str(tmp_path)]
        )
        assert code == 0
        assert "chaos campaign 'smoke'" in capsys.readouterr().out

    def test_summary_lists_scenarios(self, tmp_path, capsys):
        code = main(
            ["chaos", "campaign", "--preset", "smoke", "--seed", "7",
             "--root", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ALL INVARIANTS HOLD" in out
        for scenario in PRESETS["smoke"]:
            assert scenario.name in out

    def test_json_output_is_the_scorecard(self, tmp_path, capsys):
        code = main(
            ["chaos", "campaign", "--preset", "smoke", "--seed", "7",
             "--root", str(tmp_path), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "repro-robustness-scorecard"
        assert payload == json.loads((tmp_path / SCORECARD_NAME).read_text())

    def test_out_flag_redirects_scorecard(self, tmp_path, capsys):
        out = tmp_path / "artifacts" / "card.json"
        out.parent.mkdir()
        code = main(
            ["chaos", "campaign", "--preset", "smoke", "--seed", "7",
             "--root", str(tmp_path / "work"), "--out", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["ok"] is True

    def test_determinism_across_cli_runs(self, smoke_run, tmp_path):
        first_root, _ = smoke_run
        code = main(
            ["chaos", "campaign", "--preset", "smoke", "--seed", "7",
             "--root", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / SCORECARD_NAME).read_bytes() == (
            first_root / SCORECARD_NAME
        ).read_bytes()

    def test_bad_preset_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["chaos", "campaign", "--preset", "hurricane"])


class TestLegacyChaosUnaffected:
    def test_legacy_chaos_synthetic_still_works(self, capsys):
        code = main(
            ["chaos", "--synthetic", "--seed", "5", "--systems", "2,13",
             "--rate", "0.05", "--no-report"]
        )
        assert code == 0
        assert "SURVIVED" in capsys.readouterr().out

    def test_legacy_chaos_still_requires_trace_or_synthetic(self):
        with pytest.raises(SystemExit):
            main(["chaos"])


class TestBenchFsfaultsGuard:
    def test_guard_passes_and_reports(self, capsys):
        code = main(["bench", "--fsfaults-guard"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "fs-faults" in out
        assert "overhead" in out
