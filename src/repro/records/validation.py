"""Trace and record validation.

The CSV loader and the synthetic generator both validate their output;
user-supplied traces can be validated explicitly before analysis so
that malformed data fails loudly rather than skewing statistics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.records.record import FailureRecord
from repro.records.trace import FailureTrace

__all__ = ["TraceValidationError", "validate_record", "validate_trace"]


class TraceValidationError(ValueError):
    """Raised when a record or trace violates the data-model invariants."""


def validate_record(record: FailureRecord, trace: Optional[FailureTrace] = None) -> None:
    """Validate one record, optionally against a trace's inventory.

    Checks beyond the dataclass's own invariants:

    * the system exists in the inventory and the node ID is in range,
    * the failure falls inside the trace's observation window.

    Raises
    ------
    TraceValidationError
        On the first violation found.
    """
    if trace is None:
        return
    config = trace.systems.get(record.system_id)
    if config is None:
        raise TraceValidationError(
            f"record references unknown system {record.system_id}"
        )
    if record.node_id >= config.node_count:
        raise TraceValidationError(
            f"record references node {record.node_id} but system "
            f"{record.system_id} has only {config.node_count} nodes"
        )
    if not trace.data_start <= record.start_time < trace.data_end:
        raise TraceValidationError(
            f"record start time {record.start_time} outside observation "
            f"window [{trace.data_start}, {trace.data_end})"
        )


def validate_trace(trace: FailureTrace, max_errors: int = 20) -> List[str]:
    """Validate every record of a trace.

    Parameters
    ----------
    trace:
        The trace to validate.
    max_errors:
        Stop collecting after this many problems (the trace may hold
        tens of thousands of records).

    Returns
    -------
    list of str
        Human-readable problem descriptions; empty if the trace is valid.
    """
    problems: List[str] = []
    previous_start = float("-inf")
    for index, record in enumerate(trace):
        if record.start_time < previous_start:
            problems.append(f"record {index}: trace not sorted by start time")
        previous_start = record.start_time
        try:
            validate_record(record, trace)
        except TraceValidationError as exc:
            problems.append(f"record {index}: {exc}")
        if len(problems) >= max_errors:
            problems.append("... (further problems suppressed)")
            break
    return problems
