"""Shared monthly rate turbulence.

Real monthly failure counts (Figure 4) vary far more than a smooth
lifecycle curve, and the early-era node-level interarrivals show the
C² ~ 3.9 / lognormal-best signature of a *doubly stochastic* process
(Figure 6(a)).  :class:`MonthlyJitter` provides a per-(system, month)
lognormal rate multiplier with unit mean, shared by all nodes of the
system — shared, so it also creates the system-wide overdispersion the
early data shows.

The turbulence amplitude is higher during the early production era
(first ``era_months``) and higher for the ramp-lifecycle systems
(types D/G), whose first years were "a slow and painful process"
(Section 5.2).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.records.timeutils import SECONDS_PER_MONTH
from repro.simulate.rng import RngStream
from repro.synth.lifecycle import LifecycleShape

__all__ = ["MonthlyJitter"]


class MonthlyJitter:
    """Unit-mean lognormal monthly multipliers for one system.

    Parameters
    ----------
    stream:
        The system's jitter RNG stream (deterministic per seed+system).
    n_months:
        Number of months to precompute (the system lifetime).
    shape:
        The system's lifecycle shape (ramp systems are more turbulent
        early on).
    sigma_early / sigma_late:
        Log-std during and after the early era.
    era_months:
        Length of the early era.
    enabled:
        When False every multiplier is 1 (ablation switch).
    """

    def __init__(
        self,
        stream: RngStream,
        n_months: int,
        shape: LifecycleShape,
        sigma_early_ramp: float = 0.85,
        sigma_early_decay: float = 0.35,
        sigma_late: float = 0.18,
        era_months: float = 40.0,
        enabled: bool = True,
    ) -> None:
        if n_months < 1:
            raise ValueError(f"n_months must be >= 1, got {n_months}")
        sigma_early = (
            sigma_early_ramp if shape is LifecycleShape.RAMP_PEAK else sigma_early_decay
        )
        generator = stream.generator
        multipliers: List[float] = []
        for month in range(n_months):
            if not enabled:
                multipliers.append(1.0)
                continue
            sigma = sigma_early if month < era_months else sigma_late
            if sigma <= 0:
                multipliers.append(1.0)
                continue
            # Unit mean: E[exp(N(-s^2/2, s^2))] = 1.
            multipliers.append(
                math.exp(-0.5 * sigma**2 + sigma * generator.standard_normal())
            )
        self._multipliers = np.asarray(multipliers, dtype=float)

    def at_age(self, age_seconds: float) -> float:
        """The multiplier for the month containing ``age_seconds``."""
        if age_seconds < 0:
            return float(self._multipliers[0])
        month = int(age_seconds // SECONDS_PER_MONTH)
        return float(self._multipliers[min(month, len(self._multipliers) - 1)])

    def at_ages(self, age_seconds: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`at_age` over an array of ages."""
        ages = np.asarray(age_seconds, dtype=float)
        months = np.floor_divide(np.maximum(ages, 0.0), SECONDS_PER_MONTH)
        months = np.minimum(months.astype(int), len(self._multipliers) - 1)
        return self._multipliers[months]

    def __len__(self) -> int:
        return len(self._multipliers)
