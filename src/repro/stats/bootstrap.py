"""Nonparametric bootstrap confidence intervals.

The paper reports point statistics; bootstrap CIs let users judge how
much a statistic like C² or a fitted Weibull shape can be trusted on a
given sample size.  Used by the examples and by tests that assert a
statistic's stability.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

import numpy as np

__all__ = ["bootstrap_ci"]

ArrayLike = Union[Sequence[float], np.ndarray]


def bootstrap_ci(
    data: ArrayLike,
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    n_resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap confidence interval for a statistic.

    Parameters
    ----------
    data:
        The sample.
    statistic:
        Function mapping an array to a scalar (e.g. ``np.median``).
    confidence:
        Interval coverage (default 95%).
    n_resamples:
        Number of bootstrap resamples.
    seed:
        RNG seed for reproducibility.

    Returns
    -------
    (point, low, high):
        The statistic on the full sample and the percentile interval.
    """
    values = np.asarray(data, dtype=float)
    if values.size < 2:
        raise ValueError("bootstrap requires at least 2 observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ValueError(f"n_resamples must be >= 10, got {n_resamples}")
    generator = np.random.Generator(np.random.PCG64(seed))
    point = float(statistic(values))
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = generator.choice(values, size=values.size, replace=True)
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [alpha, 1.0 - alpha])
    return point, float(low), float(high)
