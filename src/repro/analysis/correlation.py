"""Correlation analyses: simultaneous failures and workload effects.

Two findings of Section 5:

* early in the NUMA era, a large fraction of system-wide interarrivals
  are exactly zero — simultaneous failures of multiple nodes
  (Figure 6(c));
* failure rates correlate with the type and intensity of the workload:
  graphics and front-end nodes fail far more often than compute nodes
  running on identical hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.records.record import Workload
from repro.records.trace import FailureTrace

__all__ = ["simultaneous_fraction", "WorkloadRate", "workload_rates"]


def simultaneous_fraction(trace: FailureTrace, tolerance: float = 0.0) -> float:
    """Fraction of interarrival gaps that are <= ``tolerance`` seconds.

    With the default tolerance of zero this counts exact simultaneous
    failures, the paper's Figure 6(c) measure.
    """
    gaps = trace.interarrival_times()
    if len(gaps) == 0:
        raise ValueError("trace has fewer than 2 records")
    return float(np.mean(gaps <= tolerance))


@dataclass(frozen=True)
class WorkloadRate:
    """Failure intensity of one workload class within a system."""

    workload: Workload
    nodes: int
    failures: int

    @property
    def failures_per_node(self) -> float:
        """Lifetime failures per node of this class."""
        return self.failures / self.nodes


def workload_rates(
    trace: FailureTrace, system_id: Optional[int] = None
) -> Dict[Workload, WorkloadRate]:
    """Per-node failure intensity by workload class.

    Node membership is inferred from the workload label on the node's
    records; nodes with no failures count as compute (the default
    class).  Restrict to one system with ``system_id``.

    Returns only classes that have at least one node.
    """
    sub = trace if system_id is None else trace.filter_systems([system_id])
    system_ids = [system_id] if system_id is not None else sorted(
        {record.system_id for record in sub}
    )
    node_class: Dict[tuple, Workload] = {}
    failures: Dict[tuple, int] = {}
    for record in sub:
        key = (record.system_id, record.node_id)
        node_class[key] = record.workload
        failures[key] = failures.get(key, 0) + 1
    # Nodes with zero failures: compute class.
    for sid in system_ids:
        config = sub.systems.get(sid)
        if config is None:
            continue
        for node_id in range(config.node_count):
            key = (sid, node_id)
            node_class.setdefault(key, Workload.COMPUTE)
            failures.setdefault(key, 0)
    grouped_nodes: Dict[Workload, int] = {}
    grouped_failures: Dict[Workload, int] = {}
    for key, workload in node_class.items():
        grouped_nodes[workload] = grouped_nodes.get(workload, 0) + 1
        grouped_failures[workload] = grouped_failures.get(workload, 0) + failures[key]
    return {
        workload: WorkloadRate(
            workload=workload,
            nodes=grouped_nodes[workload],
            failures=grouped_failures[workload],
        )
        for workload in grouped_nodes
    }
