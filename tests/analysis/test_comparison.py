"""Tests for trace comparison."""

import numpy as np
import pytest

from repro.analysis.comparison import compare_traces, two_sample_ks
from repro.synth import TraceGenerator


class TestTwoSampleKs:
    def test_identical_samples_zero(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert two_sample_ks(data, data) == 0.0

    def test_disjoint_samples_one(self):
        assert two_sample_ks([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_known_value(self):
        # F_a jumps to 1 at 1; F_b jumps 0.5 at 1, 1.0 at 2.
        assert two_sample_ks([1.0, 1.0], [1.0, 2.0]) == pytest.approx(0.5)

    def test_same_distribution_small(self):
        generator = np.random.Generator(np.random.PCG64(0))
        a = generator.exponential(10.0, 5000)
        b = generator.exponential(10.0, 5000)
        assert two_sample_ks(a, b) < 0.05

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            two_sample_ks([], [1.0])


class TestCompareTraces:
    def test_same_seed_nearly_identical(self, small_trace):
        rows = compare_traces(small_trace, small_trace)
        for row in rows:
            assert row.relative_difference == pytest.approx(0.0, abs=1e-12), row.name

    def test_different_seeds_similar_shape(self):
        a = TraceGenerator(seed=1).generate([13])
        b = TraceGenerator(seed=2).generate([13])
        rows = {row.name: row for row in compare_traces(a, b)}
        # Same configuration, different randomness: shares and medians
        # agree within tens of percent.
        assert rows["failures per year"].relative_difference < 0.35
        assert rows["share[hardware]"].relative_difference < 0.2
        assert rows["repair median (min)"].relative_difference < 0.4
        assert rows["interarrival KS (mean-normalized)"].value_a < 0.1

    def test_different_configs_detected(self):
        from repro.synth import GeneratorConfig

        a = TraceGenerator(seed=1).generate([19])
        b = TraceGenerator(
            seed=1, config=GeneratorConfig(bursts_enabled=False)
        ).generate([19])
        rows = {row.name: row for row in compare_traces(a, b)}
        assert rows["zero-gap fraction"].relative_difference > 0.9

    def test_minimum_records(self, small_trace):
        from repro.records.trace import FailureTrace

        with pytest.raises(ValueError):
            compare_traces(small_trace, FailureTrace(list(small_trace)[:3]))

    def test_describe_renders(self, small_trace):
        rows = compare_traces(small_trace, small_trace, "x", "y")
        for row in rows:
            text = row.describe()
            assert row.name in text
            assert "diff" in text
