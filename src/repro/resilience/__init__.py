"""Fault-tolerant execution: retries, supervision, journaling, atomicity.

The paper this repo reproduces studies failures in long-running HPC
pipelines; this subsystem applies its lessons — retry with backoff,
checkpointing, graceful degradation — to our own hot path:

* :class:`~repro.resilience.retry.RetryPolicy` — exponential backoff
  with deterministic jitter and an overall deadline;
* :class:`~repro.resilience.breaker.CircuitBreaker` — per-shard
  failure counting over a degradation ladder (for generation:
  vectorized → scalar → structured skip);
* :func:`~repro.resilience.supervisor.supervised_map` — a process-pool
  map that survives crashed (``BrokenProcessPool``), hung and failing
  workers by respawning the pool and retrying only unfinished shards;
* :class:`~repro.resilience.journal.ShardJournal` — a crash-safe
  per-run record of completed shards enabling ``--resume``;
* :class:`~repro.resilience.report.RunReport` — the audit trail of
  every attempt, retry, degradation and skip;
* :mod:`~repro.resilience.atomic` — tmp + fsync + ``os.replace``
  artifact writes used by every writer in the toolkit.

See ``docs/resilience.md`` for the full semantics.
"""

from repro.resilience.atomic import (
    atomic_open_text,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN_STATE,
    CircuitBreaker,
)
from repro.resilience.deadline import Deadline, DeadlineExceeded
from repro.resilience.journal import JournalError, ShardJournal
from repro.resilience.report import RunReport, ShardAttempt, ShardOutcome
from repro.resilience.retry import RetryPolicy
from repro.resilience.supervisor import SupervisorError, supervised_map

__all__ = [
    "atomic_open_text",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "CLOSED",
    "HALF_OPEN",
    "OPEN_STATE",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "JournalError",
    "ShardJournal",
    "RunReport",
    "ShardAttempt",
    "ShardOutcome",
    "RetryPolicy",
    "SupervisorError",
    "supervised_map",
]
