"""Tests for per-section error isolation in the whole-paper report."""

import pytest

from repro.records.trace import FailureTrace
from repro.report import PaperReport, SectionResult, run_paper_report

SECTION_NAMES = (
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table2",
    "fig7",
    "table3",
)


class TestRunPaperReport:
    @pytest.fixture(scope="class")
    def degraded(self, small_trace):
        # Systems 2 + 13 only: figure 6 (system 20) cannot render.
        return run_paper_report(small_trace)

    def test_all_sections_present_in_order(self, degraded):
        assert tuple(section.name for section in degraded.sections) == SECTION_NAMES

    def test_missing_system_degrades_not_raises(self, degraded):
        failed = {section.name for section in degraded.failed}
        assert "fig6" in failed
        assert not degraded.ok
        # Sections that do not need system 20 still render.
        by_name = {section.name: section for section in degraded.sections}
        assert by_name["table1"].ok
        assert by_name["fig1"].ok
        assert by_name["table3"].ok

    def test_thin_data_classified_degraded_not_failed(self, degraded):
        # A missing system is thin data, not a bug: the section must be
        # "degraded" (DegenerateSampleError), and nothing may be
        # "failed" on a merely-sparse trace.
        by_name = {section.name: section for section in degraded.sections}
        assert by_name["fig6"].status == "degraded"
        assert by_name["fig6"].degraded
        assert not by_name["fig6"].crashed
        assert degraded.crashed == ()
        assert {section.name for section in degraded.degraded} == {
            section.name for section in degraded.failed
        }

    def test_failed_sections_carry_typed_errors(self, degraded):
        for section in degraded.failed:
            assert section.status in ("failed", "degraded")
            assert section.text == ""
            assert ":" in section.error  # "ExceptionType: message"

    def test_diagnostics_lists_every_section(self, degraded):
        diagnostics = degraded.diagnostics()
        for name in SECTION_NAMES:
            assert name in diagnostics
        assert "DEGRADED (thin data)" in diagnostics

    def test_render_substitutes_placeholders(self, degraded):
        text = degraded.render()
        assert "unavailable on this trace" in text
        # Healthy sections keep their content.
        ok_section = next(section for section in degraded.sections if section.ok)
        assert ok_section.text in text

    def test_empty_trace_still_completes(self):
        report = run_paper_report(FailureTrace([]))
        assert tuple(section.name for section in report.sections) == SECTION_NAMES
        # Nothing escaped as an exception; table3 is trace-independent.
        by_name = {section.name: section for section in report.sections}
        assert by_name["table3"].ok


class TestPaperReportDataclass:
    def test_ok_and_failed_views(self):
        sections = (
            SectionResult(name="a", status="ok", text="body"),
            SectionResult(name="b", status="failed", error="ValueError: nope"),
        )
        report = PaperReport(sections=sections)
        assert not report.ok
        assert [section.name for section in report.failed] == ["b"]
        assert PaperReport(sections=sections[:1]).ok
