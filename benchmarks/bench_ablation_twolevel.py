"""Ablation: two-level recovery vs the correlated-failure structure.

The intro cites two-level recovery schemes [21]; Figure 6(c) documents
the correlated multi-node failures that motivate them.  This bench runs
a long job on system 20's failure sequence under

* single-level global checkpointing, and
* two-level checkpointing (cheap local checkpoints; global fallback
  for correlated failures),

in both the early correlated era (1997-99) and the late independent
era (2000-05).  Two-level wins outright when failures are mostly
single; in the burst era its local checkpoints are frequently
invalidated, shrinking (but not erasing) the advantage — quantifying
*why* correlation statistics matter for recovery design.
"""

import datetime as dt

from repro.checkpoint.simulator import CheckpointSimulation
from repro.checkpoint.twolevel import TwoLevelCheckpointSimulation
from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.report.tables import format_table

ERA = from_datetime(dt.datetime(2000, 1, 1))

WORK = 40 * SECONDS_PER_DAY
INTERVAL = 3600.0
LOCAL_COST, GLOBAL_COST = 30.0, 600.0
LOCAL_RESTART, GLOBAL_RESTART = 120.0, 1800.0


def run_both(failure_offsets):
    horizon = float(failure_offsets[-1])
    two = TwoLevelCheckpointSimulation(
        work=WORK, interval=INTERVAL, local_cost=LOCAL_COST,
        global_cost=GLOBAL_COST, global_every=10,
        local_restart=LOCAL_RESTART, global_restart=GLOBAL_RESTART,
    ).run(failure_offsets, horizon=horizon)
    single = CheckpointSimulation(
        work=WORK, interval=INTERVAL, checkpoint_cost=GLOBAL_COST,
        restart_cost=GLOBAL_RESTART,
    ).run(failure_offsets, horizon=horizon)
    return two, single


def test_twolevel_vs_correlation(benchmark, system20):
    starts = system20.start_times()
    early = starts[starts < ERA]
    late = starts[starts >= ERA]
    early_offsets = early - early[0]
    late_offsets = late - late[0]

    def run_late():
        return run_both(late_offsets)

    two_late, single_late = benchmark(run_late)
    two_early, single_early = run_both(early_offsets)

    rows = []
    for era, two, single in (
        ("early (correlated)", two_early, single_early),
        ("late (independent)", two_late, single_late),
    ):
        rows.append((
            era, f"{two.efficiency:.4f}", f"{single.efficiency:.4f}",
            two.local_recoveries, two.global_recoveries,
        ))
    print("\n" + format_table(
        ("era", "two-level eff", "single eff", "local recoveries", "global recoveries"),
        rows, title="Two-level recovery vs failure correlation (system 20)",
    ))

    assert two_late.completed and single_late.completed
    assert two_early.completed and single_early.completed
    # Late era: almost every failure is single => local recovery
    # dominates and two-level clearly wins.
    assert two_late.global_recoveries <= 0.2 * two_late.local_recoveries
    assert two_late.efficiency > single_late.efficiency
    # Early era: bursts force real global recoveries...
    assert two_early.global_recoveries > 0.3 * two_early.local_recoveries
    # ...and the two-level advantage shrinks relative to the late era.
    late_gain = two_late.efficiency - single_late.efficiency
    early_gain = two_early.efficiency - single_early.efficiency
    assert early_gain < late_gain + 0.02
