"""Supervised process-pool mapping: crash, hang and error recovery.

:func:`supervised_map` is the fault-tolerant replacement for
``ProcessPoolExecutor.map``.  A bare pool has the failure mode the
paper warns about: one crashed worker (``BrokenProcessPool``) or one
hung worker aborts *all* in-flight work.  The supervisor instead:

* detects a broken pool, respawns it, and retries only the shards that
  did not complete;
* detects hangs — no shard completes within ``shard_timeout`` —
  terminates the stuck workers, respawns, retries;
* counts failures per shard through a
  :class:`~repro.resilience.breaker.CircuitBreaker`, degrading a
  repeatedly-failing shard down a stage ladder and finally recording a
  structured skip (result ``None``) instead of raising;
* spaces retry rounds by the
  :class:`~repro.resilience.retry.RetryPolicy`'s deterministic
  exponential backoff, honoring its overall deadline;
* records every attempt in a
  :class:`~repro.resilience.report.RunReport`.

Work is only safe to retry because tasks are pure functions of their
payload (the generator re-derives every shard from ``(seed, labels)``),
so a retried shard is byte-identical to a first-try shard.
"""

from __future__ import annotations

import contextlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.resilience import report as report_mod
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.report import RunReport
from repro.resilience.retry import RetryPolicy

__all__ = ["supervised_map", "SupervisorError"]


class SupervisorError(RuntimeError):
    """Unrecoverable supervision failure (bad configuration, not a shard)."""


def _terminate_workers(executor: ProcessPoolExecutor) -> None:
    """Forcefully stop a pool whose workers may never return.

    Workers must be killed *before* ``shutdown()``: shutdown clears the
    executor's process table, and a hung worker never drains the wakeup
    sentinel anyway — it has to die for the pool's management thread
    (joined here and again by the interpreter's atexit hook) to finish.
    """
    processes = list((getattr(executor, "_processes", None) or {}).values())
    for process in processes:
        with contextlib.suppress(Exception):
            process.kill()
    executor.shutdown(wait=True, cancel_futures=True)


def supervised_map(
    task: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    workers: int,
    keys: Optional[Sequence[str]] = None,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    stage_payload: Optional[Callable[[Any, str], Any]] = None,
    shard_timeout: Optional[float] = None,
    report: Optional[RunReport] = None,
    on_result: Optional[Callable[[str, Any], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    executor_factory: Optional[Callable[[int], ProcessPoolExecutor]] = None,
) -> Dict[str, Any]:
    """Map ``task`` over ``payloads`` in worker processes, surviving
    crashed, hung and failing workers.

    Parameters
    ----------
    task:
        Module-level (picklable) callable applied to each payload.
    payloads:
        Picklable work items ("shards").
    workers:
        Worker process count (capped at the number of pending shards).
    keys:
        Shard labels for reporting/journaling; default ``"shard-i"``.
    policy:
        Retry/backoff policy; defaults to :class:`RetryPolicy`'s
        defaults.
    breaker:
        Circuit breaker owning the degradation ladder; defaults to a
        single-stage breaker with ``policy.max_attempts`` threshold.
    stage_payload:
        ``f(payload, stage) -> payload`` rewriting a payload for a
        degraded stage (e.g. switching the generation engine); default
        identity.
    shard_timeout:
        Hang detection: if no shard completes for this many seconds,
        the round's unfinished shards are failed with outcome
        ``timeout`` and the pool is terminated and respawned.
    report:
        Optional :class:`RunReport` filled in place.
    on_result:
        Called as ``on_result(key, result)`` in the parent process as
        each shard completes — the journaling hook.
    sleep / executor_factory:
        Injection points for tests.

    Returns
    -------
    dict
        ``key -> result``; a skipped shard maps to ``None``.

    Observability
    -------------
    When tracing is active (:func:`repro.obs.observing`), the whole
    call is wrapped in a ``supervise`` span and, at the end of the run,
    one ``shard.attempt`` span is emitted per :class:`ShardAttempt` in
    the report — shard-keyed and sorted, so the emitted spans line up
    with the attempt history one-for-one and the trace is stable across
    process schedules.  Worker processes that spooled their own span
    stream (:func:`repro.obs.worker_tracing`) get those events grafted
    under the successful attempt's span.
    """
    with obs.span(
        "supervise", shards=len(payloads), workers=workers
    ) as span:
        results = _supervised_map(
            task,
            payloads,
            workers=workers,
            keys=keys,
            policy=policy,
            breaker=breaker,
            stage_payload=stage_payload,
            shard_timeout=shard_timeout,
            report=report,
            on_result=on_result,
            sleep=sleep,
            executor_factory=executor_factory,
        )
        skipped = sum(1 for value in results.values() if value is None)
        span.add("completed", len(results) - skipped)
        span.add("skipped", skipped)
        tracer = obs.active_tracer()
        if tracer is not None and report is not None:
            _emit_attempt_spans(tracer, report, sorted(results))
    return results


def _emit_attempt_spans(
    tracer: "obs.Tracer", report: RunReport, keys: Sequence[str]
) -> None:
    """Replay the report's attempt history as spans, merging spools.

    Emission is keyed by shard and ordered by (sorted shard key,
    attempt number) — never by completion time — so the merged trace is
    deterministic for a deterministic workload regardless of how the
    pool scheduled the attempts.  A worker's spooled events (the final
    attempt's, since retries overwrite the spool atomically) are
    grafted under the successful attempt's span.
    """
    for key in keys:
        outcome = report.shards.get(key)
        if outcome is None:
            continue
        for entry in outcome.attempts:
            attrs = {
                "shard": key,
                "stage": entry.stage,
                "attempt": entry.attempt,
                "outcome": entry.outcome,
            }
            if entry.backoff is not None:
                attrs["backoff_s"] = round(entry.backoff, 6)
            span_id = tracer.emit(
                "shard.attempt",
                wall_s=entry.wall_s or 0.0,
                attrs=attrs,
                error=entry.error,
            )
            if entry.outcome == report_mod.OK:
                events = obs.load_spool_events(key)
                if events:
                    tracer.graft(events, span_id)


def _supervised_map(
    task: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    workers: int,
    keys: Optional[Sequence[str]] = None,
    policy: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    stage_payload: Optional[Callable[[Any, str], Any]] = None,
    shard_timeout: Optional[float] = None,
    report: Optional[RunReport] = None,
    on_result: Optional[Callable[[str, Any], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    executor_factory: Optional[Callable[[int], ProcessPoolExecutor]] = None,
) -> Dict[str, Any]:
    """The supervision loop behind :func:`supervised_map`."""
    if workers < 1:
        raise SupervisorError(f"workers must be >= 1, got {workers}")
    if keys is None:
        keys = [f"shard-{i}" for i in range(len(payloads))]
    if len(keys) != len(payloads):
        raise SupervisorError(
            f"{len(keys)} keys for {len(payloads)} payloads"
        )
    if len(set(keys)) != len(keys):
        raise SupervisorError("shard keys must be unique")
    policy = policy if policy is not None else RetryPolicy()
    if breaker is None:
        breaker = CircuitBreaker(failure_threshold=policy.max_attempts)
    if stage_payload is None:
        stage_payload = lambda payload, stage: payload  # noqa: E731
    if executor_factory is None:
        executor_factory = lambda n: ProcessPoolExecutor(max_workers=n)  # noqa: E731

    pending: Dict[str, Any] = dict(zip(keys, payloads))
    results: Dict[str, Any] = {}
    attempts: Dict[str, int] = {key: 0 for key in keys}
    started = time.monotonic()
    deadline_at = (
        started + policy.deadline if policy.deadline is not None else None
    )

    def _skip(key: str) -> None:
        results[key] = None
        del pending[key]
        if report is not None:
            report.finish_shard(key, report_mod.STATUS_SKIPPED)

    def _complete(
        key: str, stage: str, result: Any, wall_s: Optional[float]
    ) -> None:
        results[key] = result
        del pending[key]
        breaker.record_success(key)
        if report is not None:
            report.record_attempt(key, stage, report_mod.OK, wall_s=wall_s)
            status = (
                report_mod.STATUS_DEGRADED
                if stage != breaker.stages[0]
                else report_mod.STATUS_OK
            )
            try:
                n_records = len(result)
            except TypeError:
                n_records = None
            report.finish_shard(key, status, records=n_records)
        if on_result is not None:
            on_result(key, result)

    while pending:
        round_stages = {key: breaker.stage(key) for key in pending}
        executor = executor_factory(min(workers, len(pending)))
        futures = {
            executor.submit(
                task, stage_payload(pending[key], round_stages[key])
            ): key
            for key in list(pending)
        }
        # Attempt wall time is measured from submission: it includes
        # pool queueing, which is what the user actually waited.
        submitted = {future: time.perf_counter() for future in futures}
        failed: List[str] = []
        hung = False
        not_done = set(futures)
        while not_done:
            done, not_done = wait(
                not_done, timeout=shard_timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                hung = True
                break
            for future in done:
                key = futures[future]
                stage = round_stages[key]
                attempts[key] += 1
                wall = time.perf_counter() - submitted[future]
                try:
                    result = future.result()
                except BrokenProcessPool:
                    failed.append(key)
                    if report is not None:
                        report.record_attempt(
                            key, stage, report_mod.CRASH,
                            error="worker process died (pool broken)",
                            wall_s=wall,
                        )
                except Exception as exc:  # task raised in the worker
                    failed.append(key)
                    if report is not None:
                        report.record_attempt(
                            key, stage, report_mod.ERROR,
                            error=f"{type(exc).__name__}: {exc}",
                            wall_s=wall,
                        )
                else:
                    _complete(key, stage, result, wall)
        if hung:
            for future, key in futures.items():
                if not future.done():
                    attempts[key] += 1
                    failed.append(key)
                    if report is not None:
                        report.record_attempt(
                            key, round_stages[key], report_mod.TIMEOUT,
                            error=(
                                "no progress within "
                                f"{shard_timeout}s; pool terminated"
                            ),
                            wall_s=time.perf_counter() - submitted[future],
                        )
            _terminate_workers(executor)
        else:
            executor.shutdown(wait=True)

        if not failed:
            continue
        # Decide each failed shard's fate and the round's backoff.
        round_delay = 0.0
        for key in failed:
            action = breaker.record_failure(key)
            if action == "open":
                _skip(key)
                continue
            delay = policy.backoff(key, attempts[key])
            round_delay = max(round_delay, delay)
            if report is not None and report.shards[key].attempts:
                report.shards[key].attempts[-1].backoff = delay
        if deadline_at is not None and time.monotonic() >= deadline_at:
            for key in list(pending):
                if report is not None:
                    report.record_attempt(
                        key, str(breaker.stage(key)), report_mod.DEADLINE,
                        error=f"retry deadline ({policy.deadline}s) exhausted",
                    )
                _skip(key)
            break
        if round_delay > 0 and pending:
            sleep(round_delay)

    return results
