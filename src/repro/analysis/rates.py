"""Failure rates across systems (Figure 2, Section 5.1).

Figure 2(a): average failures per year for each system during its
production time — varying wildly (17 to ~1150 in the paper), mostly
because systems vary wildly in size.  Figure 2(b): the same rates
normalized by processor count — much less variable, especially within
a hardware type, implying failure rates grow roughly linearly with
system size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.errors import DegenerateSampleError
from repro.records.system import HardwareType
from repro.records.trace import FailureTrace

__all__ = [
    "SystemRate",
    "failure_rates",
    "normalized_variability",
    "variability_from_rates",
    "rate_size_correlation",
]


@dataclass(frozen=True)
class SystemRate:
    """Failure-rate summary for one system.

    Attributes
    ----------
    system_id / hardware_type:
        Identity.
    failures:
        Total failures recorded for the system.
    production_years:
        Length of the production window in average years.
    per_year:
        Figure 2(a): failures / production year.
    per_year_per_proc:
        Figure 2(b): per_year / processor count.
    processors / nodes:
        System size.
    """

    system_id: int
    hardware_type: HardwareType
    failures: int
    production_years: float
    per_year: float
    per_year_per_proc: float
    processors: int
    nodes: int


def failure_rates(trace: FailureTrace) -> List[SystemRate]:
    """Figure 2: per-system failure rates, raw and per-processor.

    Systems present in the inventory but absent from the records get a
    rate of zero (they existed; they just did not fail in the window).
    """
    by_system = trace.by_system()
    rates: List[SystemRate] = []
    for system_id in sorted(trace.systems.keys()):
        config = trace.systems[system_id]
        years = config.production_years(trace.data_start, trace.data_end)
        failures = len(by_system.get(system_id, ()))
        per_year = failures / years
        rates.append(
            SystemRate(
                system_id=system_id,
                hardware_type=config.hardware_type,
                failures=failures,
                production_years=years,
                per_year=per_year,
                per_year_per_proc=per_year / config.processor_count,
                processors=config.processor_count,
                nodes=config.node_count,
            )
        )
    return rates


def _coefficient_of_variation(values: np.ndarray) -> float:
    if values.size < 2:
        raise DegenerateSampleError(
            f"coefficient of variation needs >= 2 observations, "
            f"got {values.size}"
        )
    mean = float(np.mean(values))
    if mean == 0:
        raise DegenerateSampleError(
            "coefficient of variation is undefined for a zero-mean group"
        )
    return float(np.std(values) / mean)


def normalized_variability(trace: FailureTrace) -> Dict[str, float]:
    """Coefficient of variation of rates, raw vs normalized.

    Quantifies Figure 2's visual claim: normalizing by processor count
    shrinks the across-system variability dramatically.  Returns CVs
    for raw rates, normalized rates, and normalized rates within each
    hardware type with >= 2 systems.
    """
    return variability_from_rates(failure_rates(trace))


def variability_from_rates(all_rates: List[SystemRate]) -> Dict[str, float]:
    """:func:`normalized_variability` from precomputed per-system rates.

    Split out so the out-of-core path — which builds the same
    :class:`SystemRate` list from exact streamed counts — produces
    bit-identical CVs without materializing a trace.
    """
    rates = [rate for rate in all_rates if rate.failures > 0]
    if len(rates) < 2:
        raise DegenerateSampleError(
            f"need at least 2 systems with failures, got {len(rates)}"
        )
    raw = np.array([rate.per_year for rate in rates])
    normalized = np.array([rate.per_year_per_proc for rate in rates])
    result = {
        "raw": _coefficient_of_variation(raw),
        "normalized": _coefficient_of_variation(normalized),
    }
    by_type: Dict[HardwareType, List[float]] = {}
    for rate in rates:
        by_type.setdefault(rate.hardware_type, []).append(rate.per_year_per_proc)
    for hardware_type, values in sorted(by_type.items(), key=lambda kv: kv[0].value):
        if len(values) >= 2:
            result[f"normalized[{hardware_type.value}]"] = _coefficient_of_variation(
                np.array(values)
            )
    return result


def rate_size_correlation(trace: FailureTrace) -> float:
    """Pearson correlation of log(failures/year) vs log(processors).

    A slope/correlation near 1 on the log-log scale supports the
    paper's conclusion that failure rates grow roughly linearly (not
    super-linearly) with system size.
    """
    rates = [rate for rate in failure_rates(trace) if rate.failures > 0]
    if len(rates) < 3:
        raise DegenerateSampleError(
            f"need at least 3 systems with failures, got {len(rates)}"
        )
    x = np.array([math.log(rate.processors) for rate in rates])
    y = np.array([math.log(rate.per_year) for rate in rates])
    return float(np.corrcoef(x, y)[0, 1])
