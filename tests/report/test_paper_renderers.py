"""Tests for the paper-artifact renderers.

Each renderer must produce non-empty text containing the paper's key
labels, numbers and structure — these are the same functions every
bench prints.
"""

import pytest

from repro import report


class TestTableRenderers:
    def test_table1_totals(self, full_trace):
        text = report.render_table1(full_trace)
        assert "Table 1" in text
        assert "4750 nodes" in text
        assert "ID" in text and "Procs" in text

    def test_table2_columns(self, full_trace):
        text = report.render_table2(full_trace)
        assert "Table 2" in text
        for cause in ("unknown", "human", "environment", "network",
                      "software", "hardware", "All"):
            assert cause in text
        assert "C^2" in text

    def test_table3_static(self):
        text = report.render_table3()
        assert "Table 3" in text
        assert "Tandem systems" in text
        assert "1285" in text  # Sahoo et al. failure count


class TestFigureRenderers:
    def test_figure1_both_panels(self, full_trace):
        text = report.render_figure1(full_trace)
        assert "Figure 1(a)" in text
        assert "Figure 1(b)" in text
        assert "All systems" in text
        assert "legend:" in text

    def test_figure2_rates_and_cv(self, full_trace):
        text = report.render_figure2(full_trace)
        assert "Figure 2(a)" in text and "Figure 2(b)" in text
        assert "CV[" in text

    def test_figure3_share_and_fits(self, system20_trace):
        text = report.render_figure3(system20_trace)
        assert "Figure 3(a)" in text
        assert "6% of nodes" in text
        assert "poisson" in text.lower()

    def test_figure4_two_shapes(self, full_trace):
        text = report.render_figure4(full_trace)
        assert "system 5" in text
        assert "system 19" in text
        assert "infant-decay" in text
        assert "ramp-peak" in text

    def test_figure5_ratios(self, full_trace):
        text = report.render_figure5(full_trace)
        assert "peak/trough ratio" in text
        assert "weekday/weekend ratio" in text
        assert "Mon" in text

    def test_figure6_four_panels(self, system20_trace):
        text = report.render_figure6(system20_trace)
        for panel in ("(a)", "(b)", "(c)", "(d)"):
            assert f"Figure 6{panel}" in text
        assert "zero gaps" in text

    def test_figure7_fits_and_per_system(self, full_trace):
        text = report.render_figure7(full_trace)
        assert "Figure 7(a)" in text
        assert "Figure 7(b)" in text
        assert "Figure 7(c)" in text
        assert "LogNormal" in text
