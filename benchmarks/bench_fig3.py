"""Figure 3: failures per node of system 20 and the count-CDF fits.

Paper shape claims asserted:

* graphics nodes 21-23 (6% of nodes) account for ~20% of failures;
* the per-node count CDF of compute-only nodes is fit poorly by a
  Poisson and far better by normal/lognormal (overdispersion).
"""

from repro.analysis.pernode import node_count_study, node_share
from repro.report import render_figure3


def test_figure3(benchmark, trace):
    study = benchmark(node_count_study, trace, 20)
    print("\n" + render_figure3(trace))

    # 3 of 49 nodes carry ~20% of the failures.
    share = node_share(trace, 20, [21, 22, 23])
    assert 0.10 < share < 0.30

    # Poisson is the worst fit; normal/lognormal much better.
    assert study.poisson_is_poor
    assert study.best.name in ("normal", "lognormal")
    poisson = next(fit for fit in study.fits if fit.name == "poisson")
    assert poisson.nll > study.best.nll + 10  # decisively worse
    # Strong overdispersion vs the equal-rate Poisson model.
    assert study.overdispersion > 2.0
    # Compute-only population: graphics nodes and short-lived node 0
    # excluded.
    assert len(study.counts) == 45
