"""CircuitBreaker: per-shard failure counting over a stage ladder."""

from __future__ import annotations

import pytest

from repro.resilience import CircuitBreaker


class TestLadder:
    def test_starts_in_first_stage(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"))
        assert breaker.stage("k") == "vectorized"
        assert not breaker.is_open("k")

    def test_retries_below_threshold(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"), failure_threshold=3)
        assert breaker.record_failure("k") == "retry"
        assert breaker.record_failure("k") == "retry"
        assert breaker.stage("k") == "vectorized"

    def test_degrades_at_threshold(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"), failure_threshold=2)
        breaker.record_failure("k")
        assert breaker.record_failure("k") == "degrade"
        assert breaker.stage("k") == "scalar"

    def test_opens_after_last_stage(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"), failure_threshold=1)
        assert breaker.record_failure("k") == "degrade"
        assert breaker.record_failure("k") == "open"
        assert breaker.is_open("k")
        assert breaker.stage("k") is None
        # Further failures stay open.
        assert breaker.record_failure("k") == "open"

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(stages=("a", "b"), failure_threshold=2)
        breaker.record_failure("k")
        breaker.record_success("k")
        assert breaker.failures("k") == 0
        assert breaker.record_failure("k") == "retry"

    def test_shards_are_independent(self):
        breaker = CircuitBreaker(stages=("a", "b"), failure_threshold=1)
        breaker.record_failure("k1")
        assert breaker.stage("k1") == "b"
        assert breaker.stage("k2") == "a"


class TestValidation:
    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError, match="stages"):
            CircuitBreaker(stages=())

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
