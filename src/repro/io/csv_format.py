"""CSV reader/writer for failure traces.

See :mod:`repro.io.schema` for the column definitions.  The reader is
tolerant of column order (it uses the header) but strict about values:
a malformed row raises :class:`~repro.io.schema.SchemaError` with the
row number, rather than silently skewing downstream statistics.
"""

from __future__ import annotations

import csv
import gzip
from pathlib import Path
from typing import Iterable, Mapping, Optional, Union

from repro.io.schema import CSV_COLUMNS, SchemaError
from repro.records.record import FailureRecord, LowLevelCause, RootCause, Workload
from repro.records.system import SystemConfig
from repro.records.trace import FailureTrace

__all__ = ["read_lanl_csv", "write_lanl_csv"]

PathLike = Union[str, Path]

_WORKLOADS = {workload.value: workload for workload in Workload}
_CAUSES = {cause.value: cause for cause in RootCause}
_LOW_LEVEL = {cause.value: cause for cause in LowLevelCause}


def _open_text(path: Path, mode: str):
    """Open a text file, transparently gzipped when the name ends .gz."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", newline="")
    return path.open(mode, newline="")


def _parse_row(row: Mapping[str, str], line: int) -> FailureRecord:
    try:
        record_id_text = row.get("record_id", "") or ""
        record_id = int(record_id_text) if record_id_text else None
        workload_text = (row.get("workload") or "compute").strip().lower()
        cause_text = (row.get("root_cause") or "unknown").strip().lower()
        low_text = (row.get("low_level_cause") or "").strip().lower()
        if workload_text not in _WORKLOADS:
            raise SchemaError(f"unknown workload {workload_text!r}")
        if cause_text not in _CAUSES:
            raise SchemaError(f"unknown root cause {cause_text!r}")
        low_level = None
        if low_text:
            if low_text not in _LOW_LEVEL:
                raise SchemaError(f"unknown low-level cause {low_text!r}")
            low_level = _LOW_LEVEL[low_text]
        return FailureRecord(
            start_time=float(row["start_time"]),
            end_time=float(row["end_time"]),
            system_id=int(row["system_id"]),
            node_id=int(row["node_id"]),
            workload=_WORKLOADS[workload_text],
            root_cause=_CAUSES[cause_text],
            low_level_cause=low_level,
            record_id=record_id,
        )
    except SchemaError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise SchemaError(f"line {line}: malformed row: {exc}") from exc


def read_lanl_csv(
    path: PathLike,
    systems: Optional[Mapping[int, SystemConfig]] = None,
    data_start: Optional[float] = None,
    data_end: Optional[float] = None,
) -> FailureTrace:
    """Load a failure trace from a CSV file.

    Parameters
    ----------
    path:
        The CSV file.  The first row must be a header naming at least
        ``system_id, node_id, start_time, end_time``.
    systems:
        Inventory to attach; defaults to the LANL Table 1 inventory.
    data_start / data_end:
        Observation window; defaults to the LANL data window.

    Raises
    ------
    SchemaError
        On a missing header or any malformed row.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise SchemaError(f"{path}: empty file (no header)")
        missing = {"system_id", "node_id", "start_time", "end_time"} - set(
            reader.fieldnames
        )
        if missing:
            raise SchemaError(
                f"{path}: header missing required columns {sorted(missing)}"
            )
        records = [
            _parse_row(row, line)
            for line, row in enumerate(reader, start=2)
        ]
    kwargs = {}
    if data_start is not None:
        kwargs["data_start"] = data_start
    if data_end is not None:
        kwargs["data_end"] = data_end
    if systems is not None:
        kwargs["systems"] = systems
    return FailureTrace(records, **kwargs)


def write_lanl_csv(trace: Union[FailureTrace, Iterable[FailureRecord]], path: PathLike) -> int:
    """Write a trace to a CSV file; returns the number of rows written."""
    path = Path(path)
    records = trace.records if isinstance(trace, FailureTrace) else tuple(trace)
    with _open_text(path, "w") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for index, record in enumerate(records):
            writer.writerow(
                (
                    record.record_id if record.record_id is not None else index,
                    record.system_id,
                    record.node_id,
                    repr(record.start_time),
                    repr(record.end_time),
                    record.workload.value,
                    record.root_cause.value,
                    record.low_level_cause.value if record.low_level_cause else "",
                )
            )
    return len(records)
