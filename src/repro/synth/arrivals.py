"""Modulated Weibull-renewal arrival sampling.

The paper finds the time between failures is Weibull with shape 0.7-0.8
(decreasing hazard), while failure *rates* vary with system age
(Figure 4) and time of week (Figure 5).  To produce both properties at
once we use **time rescaling**:

1. Draw interarrivals from a unit-mean Weibull renewal process in
   *operational time*.
2. Map operational time ``u`` to wall-clock time ``t`` through the
   inverse of the cumulative modulated rate
   ``Lambda(t) = base_rate * integral_0^t L(age(s)) * W(s) ds``,
   where ``L`` is the lifecycle multiplier and ``W`` the weekly
   profile.

``L`` is treated as constant within a calendar week (it varies on a
monthly scale), so ``Lambda`` is piecewise linear in the profile's
cumulative table.  The sampler precomputes one cumulative-capacity
array over the production window's weeks; inverting ``Lambda`` is then
a single ``searchsorted`` plus the profile's within-week inversion.

Two sampling paths share that grid:

* :meth:`ModulatedWeibullArrivals.sample` — the scalar reference path,
  one event per loop iteration.
* :meth:`ModulatedWeibullArrivals.sample_vectorized` — draws whole
  interarrival arrays and inverts them in a handful of NumPy calls.

Both consume the RNG identically *per draw* and perform the same
IEEE-754 operations per event, so for the same generator state they
produce bit-identical timestamps (the statistical-equivalence suite
asserts this via ``repr()`` comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np
from scipy import special

from repro.records.timeutils import SECONDS_PER_WEEK
from repro.synth.diurnal import WeeklyProfile

__all__ = [
    "ModulatedWeibullArrivals",
    "ArrivalGrid",
    "build_arrival_grid",
    "invert_operational",
    "week_grid",
]

# Hard cap on vectorized draw rounds; each round adds a chunk of
# unit-mean interarrivals, so hitting this means the capacity budget is
# astronomically larger than the expectation (a bug, not bad luck).
_MAX_DRAW_ROUNDS = 10_000


def week_grid(start: float, end: float) -> np.ndarray:
    """Start timestamps of the calendar weeks covering ``[start, end)``.

    The grid is anchored at the toolkit epoch (week boundaries at
    integer multiples of one week), matching the anchoring of
    :class:`~repro.synth.diurnal.WeeklyProfile`.
    """
    if end <= start:
        raise ValueError(f"empty window [{start}, {end})")
    first_index = math.floor(start / SECONDS_PER_WEEK)
    n_weeks = max(math.ceil(end / SECONDS_PER_WEEK) - first_index, 1)
    return (first_index + np.arange(n_weeks)) * SECONDS_PER_WEEK


@dataclass(frozen=True)
class ArrivalGrid:
    """Precomputed weekly capacity grid for one production window.

    ``cumulative[i]`` is the total operational capacity (effective
    seconds weighted by the week's lifecycle level) from the window
    start through the end of week ``i``.  The grid depends only on the
    window and the level table — not on a node's base rate — so all
    nodes of a Table 1 category share one instance.
    """

    week_starts: np.ndarray
    levels: np.ndarray
    base0: float
    cumulative: np.ndarray


def build_arrival_grid(
    profile: WeeklyProfile, start: float, end: float, levels: np.ndarray
) -> ArrivalGrid:
    """Build the capacity grid for a window from per-week levels."""
    week_starts = week_grid(start, end)
    levels = np.asarray(levels, dtype=float)
    if levels.shape != week_starts.shape:
        raise ValueError(
            f"levels has shape {levels.shape}, expected {week_starts.shape} "
            "for this window"
        )
    if levels.size and levels.min() <= 0:
        raise ValueError(
            f"lifecycle multiplier must be positive, got {levels.min()}"
        )
    base0 = profile.cumulative_at(start - week_starts[0])
    effective = np.full(len(week_starts), profile.total)
    effective[0] = profile.total - base0
    return ArrivalGrid(
        week_starts=week_starts,
        levels=levels,
        base0=base0,
        cumulative=np.cumsum(levels * effective),
    )


def invert_operational(
    grid: ArrivalGrid, profile: WeeklyProfile, totals: np.ndarray
) -> np.ndarray:
    """Map cumulative operational times to wall-clock timestamps.

    All ``totals`` must lie within the grid's capacity (callers cut at
    ``grid.cumulative[-1]`` first); totals past capacity raise
    ``ValueError`` rather than indexing off the end of the grid.
    Elementwise, so totals from many nodes sharing one grid can be
    inverted in a single call — the trace generator batches a whole
    Table 1 category this way.  Performs the same per-element IEEE-754
    operations as the scalar path.

    Boundary semantics (``side="left"``): a total exactly on a week
    boundary ``cumulative[i]`` resolves to week ``i`` with the full
    week's mass consumed — identical to the scalar ``_invert_one``
    twin, which the boundary tests assert bitwise.
    """
    if totals.size == 0:
        return np.empty(0, dtype=float)
    cumulative = grid.cumulative
    capacity = cumulative[-1]
    overflow = float(np.max(totals))
    if overflow > capacity:
        raise ValueError(
            f"operational total {overflow} exceeds the grid's capacity "
            f"{capacity}; cut totals at grid.cumulative[-1] before inverting"
        )
    index = np.searchsorted(cumulative, totals, side="left")
    previous = np.where(index > 0, cumulative[np.maximum(index - 1, 0)], 0.0)
    base = np.where(index == 0, grid.base0, 0.0)
    target = base + (totals - previous) / grid.levels[index]
    return grid.week_starts[index] + profile.invert_array(target)


class ModulatedWeibullArrivals:
    """Sample failure times for one node.

    Parameters
    ----------
    base_rate:
        Long-run failures per second for this node (already including
        the node's workload and heterogeneity multipliers).
    shape:
        Weibull shape of the renewal process (< 1 for decreasing
        hazard).
    lifecycle:
        Callable mapping *node age in seconds* to the lifecycle
        multiplier L (dimensionless, ~1).  May be omitted when
        ``levels`` is given.
    profile:
        The shared :class:`WeeklyProfile` (periodic modulation W).
    start / end:
        The node's production window (absolute toolkit seconds).
    levels:
        Optional precomputed per-week lifecycle levels, one per week of
        ``week_grid(start, end)``, evaluated at week midpoints.
    grid:
        Optional fully prebuilt :class:`ArrivalGrid` for this window.
        The trace generator passes one shared grid for all nodes of a
        Table 1 category (the grid does not depend on ``base_rate``),
        skipping per-node grid construction entirely.
    """

    def __init__(
        self,
        base_rate: float,
        shape: float,
        lifecycle: Optional[Callable[[float], float]] = None,
        profile: Optional[WeeklyProfile] = None,
        start: float = 0.0,
        end: float = 0.0,
        levels: Optional[np.ndarray] = None,
        grid: Optional[ArrivalGrid] = None,
    ) -> None:
        if base_rate < 0:
            raise ValueError(f"base_rate must be >= 0, got {base_rate}")
        if not 0 < shape <= 2:
            raise ValueError(f"shape must be in (0, 2], got {shape}")
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        if profile is None:
            raise ValueError("profile is required")
        if lifecycle is None and levels is None and grid is None:
            raise ValueError("one of lifecycle, levels, or grid must be given")
        self._base_rate = base_rate
        self._shape = shape
        self._lifecycle = lifecycle
        self._profile = profile
        self._start = start
        self._end = end
        self._given_levels = levels
        # Unit-mean Weibull: X = scale * W(shape) with scale = 1/Gamma(1+1/k).
        self._unit_scale = 1.0 / math.gamma(1.0 + 1.0 / shape)
        # Grid state, built lazily (unless prebuilt) so that invalid
        # lifecycle levels are reported at sampling time (the
        # documented contract).
        self._grid = grid

    # ------------------------------------------------------------------
    # Weekly capacity grid
    # ------------------------------------------------------------------

    def _ensure_grid(self) -> ArrivalGrid:
        """Build (or fetch) the per-week capacity grid."""
        if self._grid is not None:
            return self._grid
        if self._given_levels is not None:
            levels = np.asarray(self._given_levels, dtype=float)
        else:
            week_starts = week_grid(self._start, self._end)
            levels = np.empty(len(week_starts))
            for i, week_start in enumerate(week_starts):
                mid_age = max(
                    0.0, (week_start + 0.5 * SECONDS_PER_WEEK) - self._start
                )
                levels[i] = self._lifecycle(mid_age)
        self._grid = build_arrival_grid(
            self._profile, self._start, self._end, levels
        )
        return self._grid

    # ------------------------------------------------------------------
    # Draws
    # ------------------------------------------------------------------

    def _equilibrium_draw(self, generator: np.random.Generator) -> float:
        """First interarrival from the equilibrium (stationary) renewal law.

        A renewal process observed from an arbitrary instant has its
        first interarrival distributed with density S(x)/mu, not f(x).
        Starting in equilibrium removes the ordinary-renewal transient —
        for decreasing-hazard Weibulls that transient adds ~(C^2-1)/2
        extra events per node and would bias every rate upward.  For a
        Weibull(k, lam) the equilibrium CDF is the regularized lower
        incomplete gamma gammainc(1/k, (x/lam)^k), inverted exactly via
        gammaincinv.
        """
        u = float(generator.random())
        z = float(special.gammaincinv(1.0 / self._shape, u))
        return self._unit_scale * z ** (1.0 / self._shape)

    def _invert_one(
        self, grid: ArrivalGrid, total_operational: float
    ) -> Optional[float]:
        """Map a cumulative operational time to a wall-clock timestamp.

        Returns None when the operational time exceeds the window's
        total capacity.
        """
        cumulative = grid.cumulative
        index = int(np.searchsorted(cumulative, total_operational, side="left"))
        if index >= len(cumulative):
            return None
        previous = cumulative[index - 1] if index else 0.0
        base = grid.base0 if index == 0 else 0.0
        target = base + (total_operational - previous) / grid.levels[index]
        return grid.week_starts[index] + self._profile.invert(target)

    def sample(self, generator: np.random.Generator) -> List[float]:
        """Generate all failure times in the production window (scalar).

        Returns an increasing list of absolute timestamps.  This is the
        reference implementation; :meth:`sample_vectorized` must match
        it bit-for-bit for the same generator state.
        """
        if self._base_rate == 0.0:
            return []
        grid = self._ensure_grid()
        events: List[float] = []
        total_operational = 0.0
        first = True
        while True:
            if first:
                draw = self._equilibrium_draw(generator)
                first = False
            else:
                draw = self._unit_scale * float(generator.weibull(self._shape))
            total_operational += draw / self._base_rate
            t = self._invert_one(grid, total_operational)
            if t is None or t >= self._end:
                return events
            events.append(float(t))

    def sample_vectorized(self, generator: np.random.Generator) -> np.ndarray:
        """Generate all failure times in the production window (batched).

        Draws whole interarrival arrays and inverts the time rescaling
        with array ops.  Bit-identical to :meth:`sample` for the same
        generator state: the underlying bit-stream consumption per draw
        and the per-event float operations are the same, only batched.
        (The *number* of draws consumed may differ — batching overdraws
        past the window's capacity — which is why each node's arrival
        stream is dedicated and never reused for other quantities.)
        """
        totals = self.sample_operational_totals(generator)
        if totals.size == 0:
            return np.empty(0, dtype=float)
        times = invert_operational(self._grid, self._profile, totals)
        cut = int(np.searchsorted(times, self._end, side="left"))
        return times[:cut]

    def sample_operational_totals(
        self, generator: np.random.Generator
    ) -> np.ndarray:
        """Cumulative operational times of all events within capacity.

        The draw stage of :meth:`sample_vectorized`; the inversion
        stage is :func:`invert_operational`.  Exposed separately so the
        trace generator can draw per node (each node owns its stream)
        but invert a whole category of nodes — which share one grid —
        in a single vectorized call.
        """
        if self._base_rate == 0.0:
            return np.empty(0, dtype=float)
        grid = self._ensure_grid()
        capacity = float(grid.cumulative[-1])
        expected = capacity * self._base_rate
        chunk = max(32, int(1.25 * expected) + 24)
        parts: List[np.ndarray] = []
        carry = 0.0
        first = True
        for _ in range(_MAX_DRAW_ROUNDS):
            if first:
                increments = np.empty(chunk)
                increments[0] = self._equilibrium_draw(generator) / self._base_rate
                increments[1:] = (
                    self._unit_scale * generator.weibull(self._shape, chunk - 1)
                ) / self._base_rate
                first = False
                # A plain cumsum seeds the running total with
                # increments[0], exactly like the scalar loop's first
                # ``total += draw``.
                totals = np.cumsum(increments)
            else:
                increments = (
                    self._unit_scale * generator.weibull(self._shape, chunk)
                ) / self._base_rate
                # Continue the running sum across chunks with a seed
                # element so the result stays bit-identical to one long
                # sequential sum.
                totals = np.cumsum(np.concatenate(([carry], increments)))[1:]
            parts.append(totals)
            carry = float(totals[-1])
            if carry > capacity:
                break
        else:
            raise RuntimeError(
                "arrival sampling failed to cover the window capacity "
                f"after {_MAX_DRAW_ROUNDS} rounds"
            )
        totals = parts[0] if len(parts) == 1 else np.concatenate(parts)
        count = int(np.searchsorted(totals, capacity, side="right"))
        return totals[:count]

    def expected_count(self, resolution_weeks: int = 1) -> float:
        """Approximate expected number of failures in the window.

        Integrates base * L numerically (W has weekly mean 1); useful
        for calibration tests.
        """
        if self._lifecycle is None:
            grid = self._ensure_grid()
            effective = np.full(len(grid.week_starts), self._profile.total)
            effective[0] = self._profile.total - grid.base0
            # Truncate the final partial week to the window end.
            last_start = float(grid.week_starts[-1])
            if self._end < last_start + SECONDS_PER_WEEK:
                effective[-1] -= self._profile.total - self._profile.cumulative_at(
                    self._end - last_start
                )
            return float(self._base_rate * np.sum(grid.levels * effective))
        step = resolution_weeks * SECONDS_PER_WEEK
        total = 0.0
        t = self._start
        while t < self._end:
            upper = min(t + step, self._end)
            mid_age = 0.5 * (t + upper) - self._start
            total += self._base_rate * self._lifecycle(mid_age) * (upper - t)
            t = upper
        return total
