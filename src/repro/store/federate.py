"""Federating columnar stores: crash-safe append and merge.

Two operations grow a store from more than one trace:

:func:`append_trace` adds a trace's rows to an *existing* store.  New
shards are fully written into a ``staging/`` directory first, moved
into ``shards/`` under names the live manifest does not reference, and
made visible by a single atomic manifest replace
(:func:`~repro.store.manifest.publish_manifest`, fault site
``store.merge.manifest``) that keeps the previous generation as
``manifest.prev.json``.  A crash at any point leaves either the old
store or the new one — stray staged or renamed files answer to no
manifest entry, and the next scrub sweeps them.

:func:`merge_stores` builds a *new* store from several sources.  The
output directory is not a store until the trailing manifest lands, so
the ordinary write-last discipline already makes it crash-safe; the
manifest is still published through the ``store.merge.manifest`` site
so the chaos campaign can tear it.  Merging sources with disjoint
systems at the same ``shard_rows`` is byte-identical to a single-pass
import of the concatenated trace: each source's per-system rows are
already ``(start_time, node_id)``-sorted, and the stable re-sort of
their concatenation reproduces the single-pass order exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.resilience.atomic import atomic_write_bytes, fs_fault_hook
from repro.store.manifest import (
    MANIFEST_NAME,
    SHARDS_DIR,
    STAGING_DIR,
    Manifest,
    Predicate,
    ShardInfo,
    StoreError,
    publish_manifest,
    shard_stats_from_batch,
)
from repro.store.reader import ColumnarStore
from repro.store.schema import (
    COLUMN_NAMES,
    FORMAT_VERSION,
    NO_RECORD_ID,
    ColumnBatch,
    batch_from_records,
    concat_batches,
    schema_digest,
)
from repro.store.scrub import _resolve_reference
from repro.store.writer import (
    DEFAULT_SHARD_ROWS,
    StoreWriter,
    _npy_bytes,
    column_file_name,
)

__all__ = ["append_trace", "merge_stores"]


def _strip_record_ids(batch: ColumnBatch) -> ColumnBatch:
    """Force the record_id column to the sentinel (implicit stores)."""
    return ColumnBatch(
        {
            name: (
                np.full(len(batch), NO_RECORD_ID, dtype="<i8")
                if name == "record_id"
                else batch[name]
            )
            for name in batch.names
        }
    )


class _TraceSource:
    """A CSV/JSONL trace file quacking like a store handle for merge.

    Trace files merge as ``explicit``-id sources — the same decision
    :func:`repro.store.convert.store_from_trace` makes on import — so
    merging trace files and merging the stores imported from them
    produce identical output.
    """

    def __init__(self, trace) -> None:
        self._batch = batch_from_records(trace.records)
        self.manifest = Manifest(
            schema_sha256=schema_digest(),
            format_version=FORMAT_VERSION,
            columns=COLUMN_NAMES,
            record_ids="explicit",
            row_count=len(self._batch),
            shards=(),
            data_start=trace.data_start,
            data_end=trace.data_end,
            systems=dict(trace.systems or {}),
        )

    def system_ids(self) -> List[int]:
        return np.unique(self._batch["system_id"]).tolist()

    def iter_batches(self, predicate: Optional[Predicate] = None):
        batch = self._batch
        if predicate is not None:
            batch = batch.take(predicate.mask(batch))
        if len(batch):
            yield batch


def _handle_systems(handle) -> List[int]:
    """The distinct system IDs a merge source holds rows for."""
    if isinstance(handle, _TraceSource):
        return handle.system_ids()
    return sorted(
        {
            int(shard.stats["system_id"][0])
            for shard in handle.manifest.shards
        }
    )


def _merged_systems(existing: Dict, incoming) -> Dict:
    """Union two inventories, refusing conflicting definitions."""
    merged = dict(existing)
    for system_id, config in (incoming or {}).items():
        known = merged.get(system_id)
        if known is not None and known != config:
            raise StoreError(
                f"system {system_id} is defined differently by the two "
                "federation sources; refusing to merge inventories"
            )
        merged[system_id] = config
    return merged


def append_trace(root, source, *, shard_rows: Optional[int] = None) -> Manifest:
    """Append a trace (or store, or CSV/JSONL file) to an existing store.

    New rows become new shards — existing shard files are never
    rewritten — published by one atomic manifest replace.  ``shard_rows``
    defaults to the store's largest existing shard so federated stores
    keep a uniform shard geometry.
    """
    store = ColumnarStore(root)
    root = store.root
    manifest = store.manifest
    trace = _resolve_reference(source)
    if not trace.records:
        return manifest
    if shard_rows is None:
        shard_rows = max(
            (shard.rows for shard in manifest.shards),
            default=DEFAULT_SHARD_ROWS,
        )
    if shard_rows < 1:
        raise ValueError(f"shard_rows must be >= 1, got {shard_rows}")

    batch = batch_from_records(trace.records)
    if manifest.record_ids == "implicit":
        batch = _strip_record_ids(batch)
    systems = _merged_systems(manifest.systems, trace.systems)

    staging = root / STAGING_DIR
    if staging.is_dir():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)

    new_shards: List[ShardInfo] = []
    system_ids = batch["system_id"]
    with obs.span("store.append", rows=len(batch)):
        for system_id in np.unique(system_ids).tolist():
            mask = system_ids == system_id
            group = batch.take(mask)
            order = np.lexsort((group["node_id"], group["start_time"]))
            group = ColumnBatch(
                {name: group[name][order] for name in group.names}
            )
            for offset in range(0, len(group), shard_rows):
                chunk = group.slice(offset, offset + shard_rows)
                if not len(chunk):
                    continue
                name = f"{len(manifest.shards) + len(new_shards):05d}"
                checksums: Dict[str, str] = {}
                for column in COLUMN_NAMES:
                    payload = _npy_bytes(chunk[column])
                    path = staging / column_file_name(name, column)
                    fs_fault_hook("store.column", path)
                    atomic_write_bytes(path, payload)
                    checksums[column] = hashlib.sha256(payload).hexdigest()
                new_shards.append(
                    ShardInfo(
                        name=name,
                        rows=len(chunk),
                        stats=shard_stats_from_batch(chunk),
                        checksums=checksums,
                    )
                )

        # Stage -> live: these names are unreferenced by the current
        # manifest, so a crash mid-move leaves harmless orphans the
        # next scrub sweeps; the publish below is the commit point.
        shards_dir = root / SHARDS_DIR
        for shard in new_shards:
            for column in COLUMN_NAMES:
                name = column_file_name(shard.name, column)
                os.replace(staging / name, shards_dir / name)

        meta = dict(manifest.meta)
        meta["appends"] = int(meta.get("appends", 0)) + 1
        new_manifest = dataclasses.replace(
            manifest,
            row_count=manifest.row_count + len(batch),
            shards=manifest.shards + tuple(new_shards),
            data_start=min(manifest.data_start, trace.data_start),
            data_end=max(manifest.data_end, trace.data_end),
            systems=systems,
            meta=meta,
        )
        publish_manifest(root, new_manifest, site="store.merge.manifest")
        shutil.rmtree(staging)

    registry = obs.metrics()
    registry.counter("store.records_appended").add(len(batch))
    registry.counter("store.shards_appended").add(len(new_shards))
    return new_manifest


def merge_stores(
    out_root,
    sources: Sequence[Union[str, Path, ColumnarStore]],
    *,
    shard_rows: int = DEFAULT_SHARD_ROWS,
    on_damage: str = "raise",
) -> Manifest:
    """Build a new store from several sources.

    Sources may be store directories, open :class:`ColumnarStore`
    handles (pass handles to inspect their ``degraded`` reports
    afterwards when merging with ``on_damage="skip"``), or CSV/JSONL
    trace files (merged as ``explicit``-id sources, exactly as if
    imported first).  Record-id modes must agree; inventories must not
    conflict.  The output must not already be a store — growing one in
    place is :func:`append_trace`'s job.
    """
    out_root = Path(out_root)
    if (out_root / MANIFEST_NAME).exists():
        raise StoreError(
            f"{out_root} is already a columnar store; use `store append` "
            "to grow it in place"
        )
    handles = []
    for source in sources:
        if isinstance(source, ColumnarStore):
            handles.append(source)
        elif Path(source).is_dir():
            handles.append(ColumnarStore(source, on_damage=on_damage))
        else:
            handles.append(_TraceSource(_resolve_reference(source)))
    if not handles:
        raise StoreError("merge needs at least one source store")
    modes = {handle.manifest.record_ids for handle in handles}
    if len(modes) > 1:
        raise StoreError(
            "cannot merge stores with mixed record-id modes "
            f"({', '.join(sorted(modes))}): implicit IDs are positions in "
            "their own store's order and would collide with explicit ones"
        )
    systems: Dict = {}
    for handle in handles:
        systems = _merged_systems(systems, handle.manifest.systems)

    writer = StoreWriter(
        out_root,
        systems=systems,
        data_start=min(handle.manifest.data_start for handle in handles),
        data_end=max(handle.manifest.data_end for handle in handles),
        record_ids=modes.pop(),
        shard_rows=shard_rows,
        meta={"merged_sources": len(handles)},
        manifest_site="store.merge.manifest",
    )
    merged_systems = sorted(
        {
            system_id
            for handle in handles
            for system_id in _handle_systems(handle)
        }
    )
    rows = 0
    with obs.span("store.merge", sources=len(handles)):
        for system_id in merged_systems:
            predicate = Predicate.build(systems=[system_id])
            parts = [
                batch
                for handle in handles
                for batch in handle.iter_batches(predicate=predicate)
            ]
            if not parts:
                continue
            group = concat_batches(parts)
            order = np.lexsort((group["node_id"], group["start_time"]))
            writer.append_group(
                ColumnBatch(
                    {name: group[name][order] for name in group.names}
                )
            )
            rows += len(group)
        manifest = writer.finalize()

    registry = obs.metrics()
    registry.counter("store.records_merged").add(rows)
    registry.counter("store.stores_merged").add(len(handles))
    return manifest
