"""A minimal discrete-event simulation (DES) kernel.

The kernel is intentionally small: a priority queue of timestamped
events, a monotonic clock, and a run loop.  It is the engine underneath
the checkpoint/restart simulator (:mod:`repro.checkpoint.simulator`) and
the scheduling simulator (:mod:`repro.sched.simulator`).

Events are callbacks.  Ordering is total and deterministic: events fire
in (time, sequence-number) order, so two events scheduled for the same
instant fire in scheduling order.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> _ = sim.schedule(5.0, lambda sim: fired.append(sim.now))
>>> _ = sim.schedule(2.0, lambda sim: fired.append(sim.now))
>>> sim.run()
>>> fired
[2.0, 5.0]
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional

__all__ = ["SimulationError", "Event", "EventQueue", "Simulator"]

EventCallback = Callable[["Simulator"], None]


class SimulationError(RuntimeError):
    """Raised on invalid simulator operations (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Simulator.schedule`; hold on to one
    to :meth:`cancel` it.  Events compare by (time, sequence number) so
    the queue ordering is deterministic.
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: EventCallback) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the run loop skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(time={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: EventCallback) -> Event:
        """Insert a new event and return its handle."""
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or None."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled event, or None if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None


class Simulator:
    """Event-queue simulator with a monotonic clock.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock (default 0).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def schedule(self, time: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` to fire at absolute ``time``.

        Raises
        ------
        SimulationError
            If ``time`` is in the past or not finite.
        """
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite, got {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push(time, callback)

    def schedule_after(self, delay: float, callback: EventCallback) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback)

    def run(self, until: Optional[float] = None) -> None:
        """Execute events in order until the queue drains or ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, and any events
        scheduled after ``until`` remain pending.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                self._events_fired += 1
                event.callback(self)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def step(self) -> bool:
        """Execute a single event; return False if the queue was empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_fired += 1
        event.callback(self)
        return True
