"""Tests for burstiness/correlation analysis and the trend test."""

import numpy as np
import pytest

from repro.analysis.burstiness import (
    burst_size_distribution,
    co_failure_ratio,
    extract_bursts,
    index_of_dispersion,
)
from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace
from repro.stats.trend import mann_kendall


def record(start, node=0, system=20):
    return FailureRecord(
        start_time=start, end_time=start + 60.0, system_id=system,
        node_id=node, root_cause=RootCause.HARDWARE,
    )


class TestExtractBursts:
    def test_simultaneous_events_group(self):
        trace = FailureTrace([
            record(1e8, node=1), record(1e8, node=2), record(1e8, node=3),
            record(1.1e8, node=4),
        ])
        bursts = extract_bursts(trace)
        assert len(bursts) == 2
        assert bursts[0].size == 3
        assert bursts[0].node_ids == (1, 2, 3)
        assert bursts[0].is_multi_node
        assert not bursts[1].is_multi_node

    def test_window_coalesces_near_events(self):
        trace = FailureTrace([record(1e8, node=1), record(1e8 + 30.0, node=2)])
        assert len(extract_bursts(trace, window=0.0)) == 2
        assert len(extract_bursts(trace, window=60.0)) == 1

    def test_empty_trace(self):
        assert extract_bursts(FailureTrace([])) == []

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            extract_bursts(FailureTrace([record(1e8)]), window=-1.0)

    def test_size_counts_records_not_nodes(self):
        # Same node twice in a burst: size 2, one distinct node.
        trace = FailureTrace([record(1e8, node=5), record(1e8, node=5)])
        bursts = extract_bursts(trace)
        assert bursts[0].size == 2
        assert bursts[0].node_ids == (5,)


class TestBurstStatistics:
    def test_size_distribution(self):
        trace = FailureTrace([
            record(1e8, node=1), record(1e8, node=2),
            record(1.1e8, node=3),
            record(1.2e8, node=4),
        ])
        assert burst_size_distribution(trace) == {2: 1, 1: 2}

    def test_index_of_dispersion_poisson_near_one(self):
        generator = np.random.Generator(np.random.PCG64(0))
        starts = 1e7 + np.cumsum(generator.exponential(5e4, 4000))
        # Tie the observation window to the sample span: counting empty
        # windows the process never covered would inflate the variance.
        trace = FailureTrace(
            [record(float(t)) for t in starts],
            data_start=float(starts[0]) - 1.0,
            data_end=float(starts[-1]) + 1.0,
        )
        dispersion = index_of_dispersion(trace, window_seconds=86400.0)
        assert 0.7 < dispersion < 1.5

    def test_index_of_dispersion_detects_clustering(self, system20_trace):
        # Bursts + diurnal modulation + lifecycle => clearly > 1.
        assert index_of_dispersion(system20_trace, window_seconds=86400.0) > 3.0

    def test_index_validation(self):
        with pytest.raises(ValueError):
            index_of_dispersion(FailureTrace([record(1e8)]), window_seconds=0.0)

    def test_co_failure_ratio_independent_pair(self):
        generator = np.random.Generator(np.random.PCG64(1))
        records = []
        t = 1e7
        for _ in range(4000):
            t += float(generator.exponential(3e4))
            records.append(record(t, node=int(generator.integers(0, 10))))
        trace = FailureTrace(records)
        ratio = co_failure_ratio(trace, 0, 1, window=0.0)
        assert ratio < 5.0  # no excess correlation

    def test_co_failure_ratio_correlated_pair(self):
        # Nodes 1 and 2 always fail together; node 3 alone.
        records = []
        for k in range(50):
            t = 1e7 + k * 1e5
            records.append(record(t, node=1))
            records.append(record(t, node=2))
            records.append(record(t + 5e4, node=3))
        trace = FailureTrace(records)
        ratio = co_failure_ratio(trace, 1, 2)
        # in_a = in_b = together = 50 of 100 bursts => 50/(50*50/100) = 2;
        # perfectly dependent given marginals.
        assert ratio == pytest.approx(2.0)
        assert co_failure_ratio(trace, 1, 3) == 0.0

    def test_co_failure_never_failing_node_rejected(self):
        trace = FailureTrace([record(1e8, node=1), record(1.1e8, node=2)])
        with pytest.raises(ValueError):
            co_failure_ratio(trace, 1, 9)


class TestMannKendall:
    def test_increasing_series(self):
        result = mann_kendall(np.arange(30, dtype=float))
        assert result.direction == "increasing"
        assert result.tau == pytest.approx(1.0)
        assert result.p_value < 1e-6

    def test_decreasing_series(self):
        result = mann_kendall(np.arange(30, dtype=float)[::-1])
        assert result.direction == "decreasing"
        assert result.tau == pytest.approx(-1.0)

    def test_noise_has_no_trend(self):
        generator = np.random.Generator(np.random.PCG64(3))
        result = mann_kendall(generator.normal(0, 1, 100))
        assert result.direction == "no trend"

    def test_constant_series(self):
        result = mann_kendall([5.0] * 10)
        assert result.p_value == 1.0
        assert result.direction == "no trend"

    def test_too_short(self):
        with pytest.raises(ValueError):
            mann_kendall([1.0, 2.0, 3.0])

    def test_lifecycle_trends_on_synthetic(self, full_trace):
        from repro.analysis.lifecycle import monthly_failures

        # System 5 decays: a significant decreasing trend over its life
        # (the steep part is the first few months, so the full series
        # carries the signal).
        curve5 = monthly_failures(full_trace, 5)
        assert mann_kendall(curve5.totals).direction == "decreasing"
        # System 19 ramps: increasing trend over the first 20 months.
        curve19 = monthly_failures(full_trace, 19)
        assert mann_kendall(curve19.totals[:20]).direction == "increasing"
