"""Synthetic job workloads for the scheduling simulation.

LANL's workloads are long-running simulations (Section 2.2): months of
CPU time, checkpointed every few hours.  The generator produces jobs
with Poisson arrivals, lognormal durations and a node-count
distribution skewed toward small jobs — a standard shape for HPC
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.records.timeutils import SECONDS_PER_DAY, SECONDS_PER_HOUR

__all__ = ["Job", "JobGenerator", "DiurnalJobGenerator"]


@dataclass(frozen=True)
class Job:
    """One job: arrival time, node demand, and required compute time."""

    job_id: int
    arrival: float
    nodes: int
    duration: float

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"job needs >= 1 node, got {self.nodes}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")


class JobGenerator:
    """Generates a stream of jobs.

    Parameters
    ----------
    mean_interarrival:
        Mean time between job arrivals (exponential).
    median_duration / duration_sigma:
        Lognormal duration parameters (median and log-std).
    max_nodes:
        Largest node request; requests are geometric-ish, mostly small.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        mean_interarrival: float = 4 * SECONDS_PER_HOUR,
        median_duration: float = 1 * SECONDS_PER_DAY,
        duration_sigma: float = 1.0,
        max_nodes: int = 8,
        seed: int = 0,
    ) -> None:
        if mean_interarrival <= 0 or median_duration <= 0:
            raise ValueError("interarrival and duration must be positive")
        if duration_sigma <= 0:
            raise ValueError(f"duration_sigma must be positive, got {duration_sigma}")
        if max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
        self._mean_interarrival = mean_interarrival
        self._mu = float(np.log(median_duration))
        self._sigma = duration_sigma
        self._max_nodes = max_nodes
        self._generator = np.random.Generator(np.random.PCG64(seed))

    def generate(self, start: float, end: float) -> List[Job]:
        """All jobs arriving in ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        jobs: List[Job] = []
        t = start
        job_id = 0
        generator = self._generator
        while True:
            t += float(generator.exponential(self._mean_interarrival))
            if t >= end:
                break
            # Geometric node demand truncated at max_nodes: mostly 1-2.
            nodes = min(int(generator.geometric(0.5)), self._max_nodes)
            duration = float(generator.lognormal(self._mu, self._sigma))
            jobs.append(Job(job_id=job_id, arrival=t, nodes=nodes, duration=duration))
            job_id += 1
        return jobs


class DiurnalJobGenerator(JobGenerator):
    """Job arrivals that follow the working-hours cycle.

    The paper interprets Figure 5 as failure rates tracking workload
    intensity; the matching workload model submits jobs at a rate that
    peaks during the day and on weekdays, using the same modulation
    profile as the failure generator (so scheduler experiments see the
    load pattern that drives the failures).

    Arrivals are a nonhomogeneous Poisson process sampled by thinning
    against the weekly profile's peak.
    """

    def __init__(self, *args, amplitude: float = 1.0 / 3.0,
                 weekend_factor: float = 0.55, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        from repro.synth.diurnal import WeeklyProfile

        self._profile = WeeklyProfile(
            amplitude=amplitude, weekend_factor=weekend_factor, enabled=True
        )
        self._peak = float(max(self._profile.hourly))

    def generate(self, start: float, end: float) -> List[Job]:
        """All jobs arriving in ``[start, end)`` (diurnal intensity)."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        jobs: List[Job] = []
        t = start
        job_id = 0
        generator = self._generator
        # Thinning: candidate arrivals at the peak rate, accepted with
        # probability W(t)/peak.  Mean rate matches the base generator
        # because the profile has weekly mean 1.
        candidate_mean = self._mean_interarrival / self._peak
        while True:
            t += float(generator.exponential(candidate_mean))
            if t >= end:
                break
            if generator.random() >= self._profile.value_at(t) / self._peak:
                continue
            nodes = min(int(generator.geometric(0.5)), self._max_nodes)
            duration = float(generator.lognormal(self._mu, self._sigma))
            jobs.append(Job(job_id=job_id, arrival=t, nodes=nodes, duration=duration))
            job_id += 1
        return jobs
