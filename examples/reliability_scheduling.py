#!/usr/bin/env python3
"""Reliability-aware job placement on a failure trace.

Section 5.1: "Knowledge on how failure rates vary across the nodes in a
system can be utilized in job scheduling, for instance by assigning
critical jobs or jobs with high recovery time to more reliable nodes."

This example schedules one year of jobs on system 20's failure timeline
under three placement policies and reports kills, wasted node-hours and
slowdown.  The reliability-aware policy trains on the preceding two
years of failure history.

Usage::

    python examples/reliability_scheduling.py
"""

import datetime as dt

from repro import generate_lanl_trace
from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.report import format_table
from repro.sched import (
    ClusterTimeline,
    JobGenerator,
    LeastFailuresPolicy,
    RandomPolicy,
    ReliabilityAwarePolicy,
    SchedulerSimulation,
)


def main() -> int:
    print("Generating system 20 ...")
    trace = generate_lanl_trace(seed=1).filter_systems([20])
    timeline = ClusterTimeline(trace, 20)

    train_start = from_datetime(dt.datetime(2000, 1, 1))
    t0 = from_datetime(dt.datetime(2002, 1, 1))
    t1 = from_datetime(dt.datetime(2003, 1, 1))
    jobs = JobGenerator(seed=7).generate(t0, t1 - 30 * SECONDS_PER_DAY)
    print(f"  workload: {len(jobs)} jobs over 2002; training window 2000-2001\n")

    trained_rates = timeline.failure_rates(train_start, t0)
    worst = sorted(trained_rates, key=trained_rates.get, reverse=True)[:5]
    print(f"least reliable nodes by training history: {worst}")
    print("  (nodes 21-23 are the graphics nodes of Figure 3(a))\n")

    policies = (
        RandomPolicy(seed=3),
        ReliabilityAwarePolicy(trained_rates),
        LeastFailuresPolicy(),
    )
    rows = []
    for policy in policies:
        result = SchedulerSimulation(timeline, policy, (t0, t1)).run(jobs)
        rows.append(
            (
                policy.name,
                f"{result.jobs_completed}/{result.jobs_submitted}",
                result.kills,
                f"{result.lost_node_seconds / 3600:.0f}",
                f"{100 * result.waste_fraction:.2f}%",
                f"{result.mean_slowdown:.3f}",
            )
        )
    print(
        format_table(
            ("policy", "completed", "kills", "lost node-hours", "waste", "slowdown"),
            rows,
            title="One year of scheduling on system 20's failure timeline",
        )
    )
    print(
        "\nThe reliability-aware policy exploits exactly the per-node\n"
        "heterogeneity of Figure 3: most failures hide in a few nodes."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
