"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.stats.bootstrap import bootstrap_ci


class TestBootstrapCi:
    def test_point_estimate_is_full_sample_statistic(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        point, low, high = bootstrap_ci(data, np.mean, seed=0)
        assert point == 3.0

    def test_interval_brackets_point_for_mean(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = generator.normal(10.0, 2.0, 500)
        point, low, high = bootstrap_ci(data, np.mean, seed=1)
        assert low <= point <= high

    def test_interval_contains_truth_for_well_behaved_statistic(self):
        generator = np.random.Generator(np.random.PCG64(2))
        data = generator.exponential(100.0, 2000)
        point, low, high = bootstrap_ci(data, np.median, seed=3)
        true_median = 100.0 * np.log(2.0)
        assert low < true_median < high

    def test_wider_confidence_wider_interval(self):
        generator = np.random.Generator(np.random.PCG64(4))
        data = generator.normal(0.0, 1.0, 200)
        _, low95, high95 = bootstrap_ci(data, np.mean, confidence=0.95, seed=5)
        _, low50, high50 = bootstrap_ci(data, np.mean, confidence=0.50, seed=5)
        assert (high95 - low95) > (high50 - low50)

    def test_reproducible(self):
        data = list(range(50))
        assert bootstrap_ci(data, np.mean, seed=9) == bootstrap_ci(data, np.mean, seed=9)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], np.mean, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], np.mean, n_resamples=5)
