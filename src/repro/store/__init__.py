"""A memory-mapped, sharded columnar trace store.

The store lays a failure trace out as per-shard, per-column ``.npy``
files plus a trailing ``manifest.json`` carrying the schema digest and
per-shard min/max statistics for predicate pushdown.  Writes go
through the repo's atomic machinery (crash-safe, chaos-testable);
reads are memory-mapped and chunked, so analyses run out-of-core over
traces far larger than RAM.

Entry points:

* :meth:`repro.synth.generator.TraceGenerator.generate_store` — write
  a generated trace straight to a store (``repro generate --store
  columnar``).
* :class:`ColumnarStore` — open, scan, verify
  (``repro store info|verify|analyze``).
* :func:`store_from_trace` / :func:`store_from_file` /
  :func:`export_store` — convert to and from traces and CSV/JSONL
  (``repro store import|export``).
* :func:`scrub_store` / :func:`repair_store` — self-healing: classify
  and quarantine damage, re-materialize provably byte-identical shards
  from a reference (``repro store scrub|repair``).
* :func:`append_trace` / :func:`merge_stores` — crash-safe federation
  of multiple traces into one store (``repro store append|merge``).

Format and semantics are documented in ``docs/columnar.md``.
"""

from repro.store.analytics import StoreSummary, summarize_store
from repro.store.convert import export_store, store_from_file, store_from_trace
from repro.store.federate import append_trace, merge_stores
from repro.store.manifest import (
    LEDGER_NAME,
    MANIFEST_NAME,
    PREV_MANIFEST_NAME,
    QUARANTINE_DIR,
    SHARDS_DIR,
    STAGING_DIR,
    Manifest,
    Predicate,
    ShardInfo,
    StoreError,
    load_ledger,
    publish_manifest,
    write_ledger,
)
from repro.store.reader import (
    ColumnarStore,
    DegradedReadReport,
    ScanStats,
    diagnose_shard,
    verify_store,
)
from repro.store.scrub import (
    RepairReport,
    ScrubReport,
    repair_store,
    scrub_store,
)
from repro.store.schema import (
    COLUMN_NAMES,
    COLUMNS,
    FORMAT_VERSION,
    ColumnBatch,
    batch_from_records,
    concat_batches,
    empty_batch,
    records_from_batch,
    schema_digest,
)
from repro.store.writer import DEFAULT_SHARD_ROWS, StoreWriter

__all__ = [
    "COLUMNS",
    "COLUMN_NAMES",
    "FORMAT_VERSION",
    "DEFAULT_SHARD_ROWS",
    "LEDGER_NAME",
    "MANIFEST_NAME",
    "PREV_MANIFEST_NAME",
    "QUARANTINE_DIR",
    "SHARDS_DIR",
    "STAGING_DIR",
    "ColumnBatch",
    "ColumnarStore",
    "DegradedReadReport",
    "Manifest",
    "Predicate",
    "RepairReport",
    "ScanStats",
    "ScrubReport",
    "ShardInfo",
    "StoreError",
    "StoreSummary",
    "StoreWriter",
    "append_trace",
    "batch_from_records",
    "concat_batches",
    "diagnose_shard",
    "empty_batch",
    "export_store",
    "load_ledger",
    "merge_stores",
    "publish_manifest",
    "records_from_batch",
    "repair_store",
    "schema_digest",
    "scrub_store",
    "store_from_file",
    "store_from_trace",
    "summarize_store",
    "verify_store",
    "write_ledger",
]
