"""One renderer per paper artifact.

Each ``render_*`` function takes a trace (and options), runs the
corresponding analysis and returns the printable reproduction of the
paper's table or figure.  The bench for each artifact calls exactly one
of these.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.interarrival import (
    node_interarrivals,
    split_eras,
    system_interarrivals,
)
from repro.analysis.lifecycle import classify_lifecycle, monthly_failures
from repro.analysis.pernode import failures_per_node, node_count_study, node_share
from repro.analysis.periodicity import WEEKDAY_NAMES, periodicity_study
from repro.analysis.rates import failure_rates, normalized_variability
from repro.analysis.related import RELATED_STUDIES
from repro.analysis.repair import (
    repair_by_system,
    repair_fit_study,
    repair_statistics_by_cause,
)
from repro.analysis.rootcause import (
    breakdown_by_hardware_type,
    downtime_breakdown_by_hardware_type,
)
from repro.records.record import HIGH_LEVEL_CAUSES
from repro.stats.errors import DegenerateSampleError
from repro.records.timeutils import from_datetime
from repro.records.trace import FailureTrace
from repro.report.charts import bar_chart, cdf_plot, series_plot, stacked_bars
from repro.report.tables import format_table

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "SectionResult",
    "PaperReport",
    "run_paper_report",
]

ERA_BOUNDARY = from_datetime(_dt.datetime(2000, 1, 1))


def render_table1(trace: FailureTrace) -> str:
    """Table 1: overview of the systems in the trace's inventory."""
    return _format_table1(trace.systems)


def _format_table1(systems) -> str:
    """Table 1 text from an inventory mapping (trace- or manifest-fed)."""
    rows = []
    total_nodes = 0
    total_procs = 0
    for system_id in sorted(systems.keys()):
        config = systems[system_id]
        total_nodes += config.node_count
        total_procs += config.processor_count
        for index, category in enumerate(config.categories):
            rows.append(
                (
                    system_id if index == 0 else "",
                    config.hardware_type.value if index == 0 else "",
                    config.architecture.value.upper() if index == 0 else "",
                    config.node_count if index == 0 else "",
                    config.processor_count if index == 0 else "",
                    category.node_count,
                    category.procs_per_node,
                    f"{category.production_start} - {category.production_end}",
                    f"{category.memory_gb:g}",
                    category.nics,
                )
            )
    table = format_table(
        ("ID", "HW", "Arch", "Nodes", "Procs", "Cat nodes", "Procs/node",
         "Production", "Mem (GB)", "NICs"),
        rows,
        title="Table 1: overview of systems",
    )
    return f"{table}\n\nTotals: {total_nodes} nodes, {total_procs} processors"


def render_table2(trace: FailureTrace) -> str:
    """Table 2: repair-time statistics by root cause (minutes)."""
    return _format_table2(repair_statistics_by_cause(trace))


def _format_table2(by_cause) -> str:
    """Table 2 text from :class:`RepairByCauseRow` rows."""
    rows = [
        (
            row.label,
            row.n,
            f"{row.mean:.0f}",
            f"{row.median:.0f}",
            f"{row.std:.0f}",
            f"{row.squared_cv:.0f}",
        )
        for row in by_cause
    ]
    return format_table(
        ("Root cause", "n", "Mean (min)", "Median (min)", "Std dev (min)", "C^2"),
        rows,
        title="Table 2: time to repair as a function of root cause",
    )


def render_table3() -> str:
    """Table 3: overview of related studies (literature metadata)."""
    rows = [
        (
            study.reference,
            study.date,
            study.length,
            study.environment,
            study.data_type,
            study.n_failures if study.n_failures is not None else "N/A",
            study.statistics,
        )
        for study in RELATED_STUDIES
    ]
    return format_table(
        ("Study", "Date", "Length", "Environment", "Type of data", "# Failures", "Statistics"),
        rows,
        title="Table 3: overview of related studies",
        align="lrlllll",
    )


def render_figure1(trace: FailureTrace) -> str:
    """Figure 1: root-cause breakdown of failures (a) and downtime (b)."""
    return _format_figure1(
        breakdown_by_hardware_type(trace),
        downtime_breakdown_by_hardware_type(trace),
    )


def _format_figure1(failure_breakdowns, downtime_breakdowns) -> str:
    """Figure 1 text from label -> :class:`CauseBreakdown` mappings."""
    sections = []
    for panel, breakdowns in (
        ("(a) failures by root cause (%)", failure_breakdowns),
        ("(b) downtime by root cause (%)", downtime_breakdowns),
    ):
        groups = {
            label: {
                cause.value: breakdown.percent(cause) for cause in HIGH_LEVEL_CAUSES
            }
            for label, breakdown in breakdowns.items()
        }
        rows = [
            (label,) + tuple(f"{breakdown.percent(c):.1f}" for c in HIGH_LEVEL_CAUSES)
            for label, breakdown in breakdowns.items()
        ]
        table = format_table(
            ("Group",) + tuple(c.value for c in HIGH_LEVEL_CAUSES),
            rows,
            title=f"Figure 1{panel}",
        )
        sections.append(table + "\n\n" + stacked_bars(groups))
    return "\n\n".join(sections)


def render_figure2(trace: FailureTrace) -> str:
    """Figure 2: failures/year per system, raw (a) and per processor (b)."""
    return _format_figure2(failure_rates(trace), normalized_variability(trace))


def _format_figure2(rates, variability) -> str:
    """Figure 2 text from :class:`SystemRate` rows and CV mapping."""
    chart_a = bar_chart(
        [f"{rate.system_id} ({rate.hardware_type.value})" for rate in rates],
        [rate.per_year for rate in rates],
        title="Figure 2(a): average failures per year per system",
    )
    chart_b = bar_chart(
        [f"{rate.system_id} ({rate.hardware_type.value})" for rate in rates],
        [rate.per_year_per_proc for rate in rates],
        title="Figure 2(b): failures per year per processor",
        value_format="{:.3f}",
    )
    footer = "\n".join(
        f"  CV[{name}] = {value:.3f}" for name, value in variability.items()
    )
    return f"{chart_a}\n\n{chart_b}\n\nRate variability (coefficient of variation):\n{footer}"


def render_figure3(
    trace: FailureTrace, system_id: int = 20, graphics_nodes=(21, 22, 23)
) -> str:
    """Figure 3: failures per node of system 20 and count-CDF fits."""
    counts = failures_per_node(trace, system_id)
    share = node_share(trace, system_id, graphics_nodes)
    study = node_count_study(trace, system_id)
    return _format_figure3(system_id, graphics_nodes, counts, share, study)


def _format_figure3(system_id, graphics_nodes, counts, share, study) -> str:
    """Figure 3 text from per-node counts, share, and the count study."""
    chart = bar_chart(
        [str(node_id) for node_id in sorted(counts.keys())],
        [counts[node_id] for node_id in sorted(counts.keys())],
        width=40,
        title=f"Figure 3(a): failures per node, system {system_id}",
        value_format="{:.0f}",
    )
    fit_lines = "\n".join("  " + fit.describe() for fit in study.fits)
    plot = cdf_plot(
        np.asarray(study.counts, dtype=float),
        {fit.name: fit.distribution for fit in study.fits},
        log_x=False,
        title="Figure 3(b): CDF of failures per compute node, with fits",
    )
    return (
        f"{chart}\n\n"
        f"Graphics nodes {list(graphics_nodes)}: "
        f"{100 * len(graphics_nodes) / len(counts):.0f}% of nodes, "
        f"{100 * share:.0f}% of failures\n\n"
        f"Figure 3(b) fits (ranked by negative log-likelihood):\n{fit_lines}\n\n{plot}"
    )


def render_figure4(trace: FailureTrace, system_ids=(5, 19)) -> str:
    """Figure 4: failures per month vs system age for two systems."""
    return _format_figure4(
        [(system_id, monthly_failures(trace, system_id)) for system_id in system_ids]
    )


def _format_figure4(curves) -> str:
    """Figure 4 text from ``(system_id, LifecycleCurve)`` pairs."""
    sections = []
    for system_id, curve in curves:
        if sum(curve.totals) == 0:
            sections.append(
                f"Figure 4: system {system_id} has no failures in this trace"
            )
            continue
        shape = classify_lifecycle(curve)
        plot = series_plot(
            curve.totals,
            title=(
                f"Figure 4: system {system_id} failures/month "
                f"(classified: {shape})"
            ),
            x_label=f"months in production (0..{curve.months - 1})",
        )
        top_causes = sorted(
            curve.by_cause.items(), key=lambda kv: -sum(kv[1])
        )[:3]
        cause_lines = "\n".join(
            f"  {cause.value}: {sum(values)} failures" for cause, values in top_causes
        )
        sections.append(f"{plot}\nTop causes:\n{cause_lines}")
    return "\n\n".join(sections)


def render_figure5(trace: FailureTrace) -> str:
    """Figure 5: failures by hour of day and day of week."""
    return _format_figure5(periodicity_study(trace))


def _format_figure5(study) -> str:
    """Figure 5 text from a :class:`PeriodicityStudy`."""
    hours = bar_chart(
        [f"{hour:02d}" for hour in range(24)],
        list(study.hourly),
        width=40,
        title="Figure 5 (left): failures by hour of day",
        value_format="{:.0f}",
    )
    days = bar_chart(
        list(WEEKDAY_NAMES),
        list(study.weekday),
        width=40,
        title="Figure 5 (right): failures by day of week",
        value_format="{:.0f}",
    )
    return (
        f"{hours}\n\n{days}\n\n"
        f"peak/trough ratio: {study.peak_trough_ratio:.2f} "
        f"(peak {study.peak_hour}:00, trough {study.trough_hour}:00)\n"
        f"weekday/weekend ratio: {study.weekday_weekend_ratio:.2f}\n"
        f"Monday spike (delayed-detection check): {study.monday_spike:.2f}"
    )


def render_figure6(
    trace: FailureTrace,
    system_id: int = 20,
    node_id: int = 22,
    era_boundary: float = ERA_BOUNDARY,
) -> str:
    """Figure 6: interarrival CDFs, node/system x early/late."""
    reference = trace.filter_systems([system_id])
    early, late = split_eras(reference, era_boundary)
    sections = []
    for panel, study in (
        ("(a) node view, early era", node_interarrivals(early, system_id, node_id)),
        ("(b) node view, late era", node_interarrivals(late, system_id, node_id)),
        ("(c) system view, early era", system_interarrivals(early, system_id)),
        ("(d) system view, late era", system_interarrivals(late, system_id)),
    ):
        gaps = np.maximum(np.asarray(study.gaps), 1.0)  # clamp zeros for log-x
        plot = cdf_plot(
            gaps,
            {fit.name: fit.distribution for fit in study.fits},
            title=f"Figure 6{panel}: time between failures (s)",
        )
        sections.append(
            _format_figure6_panel(
                panel,
                study.n,
                study.summary.squared_cv,
                study.zero_fraction,
                study.fits,
                plot,
            )
        )
    return "\n\n".join(sections)


def _format_figure6_panel(panel, n, squared_cv, zero_fraction, fits, plot) -> str:
    """One Figure 6 panel's text from its summary numbers and plot."""
    fit_lines = "\n".join("  " + fit.describe() for fit in fits)
    return (
        f"Figure 6{panel}: n={n}  C^2={squared_cv:.2f}  "
        f"zero gaps={100 * zero_fraction:.1f}%\n{fit_lines}\n{plot}"
    )


@dataclass(frozen=True)
class SectionResult:
    """Outcome of rendering one paper artifact.

    Attributes
    ----------
    name:
        Artifact name (``"table1"``, ``"fig6"``, ...).
    status:
        ``"ok"``; ``"degraded"`` when the section's analysis raised
        :class:`~repro.stats.errors.DegenerateSampleError` (the data is
        too thin for this artifact — expected on sparse or corrupted
        traces); ``"failed"`` for any other exception (a bug or an
        unanticipated data condition).
    text:
        The rendered artifact when ok, else empty.
    error:
        ``"ExceptionType: message"`` when not ok, else empty.
    partial:
        True when the section was computed from a deadline-truncated
        scan (out-of-core path with ``on_deadline="partial"``): the
        numbers cover only the scanned prefix of the store.
    """

    name: str
    status: str
    text: str = ""
    error: str = ""
    partial: bool = False

    @property
    def ok(self) -> bool:
        """True when the section rendered."""
        return self.status == "ok"

    @property
    def degraded(self) -> bool:
        """True when the section's data was too thin to render."""
        return self.status == "degraded"

    @property
    def crashed(self) -> bool:
        """True when the section failed for a non-degenerate reason."""
        return self.status == "failed"


@dataclass(frozen=True)
class PaperReport:
    """The whole-paper report with per-section error isolation."""

    sections: Tuple[SectionResult, ...]

    @property
    def ok(self) -> bool:
        """True when every section rendered."""
        return all(section.ok for section in self.sections)

    @property
    def failed(self) -> Tuple[SectionResult, ...]:
        """The sections that did not render (degraded and crashed)."""
        return tuple(section for section in self.sections if not section.ok)

    @property
    def degraded(self) -> Tuple[SectionResult, ...]:
        """The sections skipped because their data was too thin."""
        return tuple(section for section in self.sections if section.degraded)

    @property
    def crashed(self) -> Tuple[SectionResult, ...]:
        """The sections that failed for a non-degenerate reason."""
        return tuple(section for section in self.sections if section.crashed)

    def diagnostics(self) -> str:
        """One line per section: ok, or the failure it degraded with."""
        lines = []
        for section in self.sections:
            if section.ok:
                lines.append(f"{section.name:<8} ok")
            elif section.degraded:
                lines.append(
                    f"{section.name:<8} DEGRADED (thin data): {section.error}"
                )
            else:
                lines.append(f"{section.name:<8} FAILED: {section.error}")
        return "\n".join(lines)

    def render(self, divider: str = "\n\n" + "=" * 78 + "\n\n") -> str:
        """The full report text; failed sections render as diagnostics."""
        parts = []
        for section in self.sections:
            if section.ok:
                parts.append(section.text)
            else:
                parts.append(
                    f"[{section.name} unavailable on this trace: {section.error}]"
                )
        return divider.join(parts)


def run_paper_report(
    trace: FailureTrace = None,
    degraded_read=None,
    *,
    store=None,
    deadline=None,
    on_deadline: str = "raise",
    workers: int = None,
    batch_rows: int = None,
) -> PaperReport:
    """Render every paper artifact, isolating failures per section.

    On curated data this is equivalent to calling each ``render_*`` in
    sequence.  On degraded traces (sparse slices, corrupt-but-ingested
    data) a section whose analysis cannot run — a degenerate fit, an
    empty era, a missing system — yields a diagnostics entry instead of
    aborting the whole report.

    ``degraded_read`` is the :class:`repro.store.DegradedReadReport`
    from a store opened with ``on_damage="skip"`` (or ``None``).  When
    truthy, *any* section exception classifies as ``degraded`` rather
    than ``failed``: the trace is known-incomplete, so a section that
    cannot cope is a data gap, not a report bug.

    Passing ``store`` (a :class:`repro.store.ColumnarStore`) instead of
    ``trace`` runs the *out-of-core* path: one bounded-memory streaming
    pass over ``iter_batches`` through mergeable sketches, never
    materializing a :class:`FailureTrace`.  ``deadline``/``on_deadline``
    and ``workers``/``batch_rows`` are forwarded to
    :func:`repro.report.streaming.run_store_report`; use that function
    directly when you also want the partial/degraded metadata.
    """
    if store is not None:
        if trace is not None:
            raise ValueError("pass either trace or store, not both")
        from repro.report.streaming import run_store_report

        kwargs = {"deadline": deadline, "on_deadline": on_deadline}
        if workers is not None:
            kwargs["workers"] = workers
        if batch_rows is not None:
            kwargs["batch_rows"] = batch_rows
        return run_store_report(store, **kwargs).report
    if trace is None:
        raise ValueError("run_paper_report needs a trace or a store")
    renderers = (
        ("table1", lambda: render_table1(trace)),
        ("fig1", lambda: render_figure1(trace)),
        ("fig2", lambda: render_figure2(trace)),
        ("fig3", lambda: render_figure3(trace)),
        ("fig4", lambda: render_figure4(trace)),
        ("fig5", lambda: render_figure5(trace)),
        ("fig6", lambda: render_figure6(trace.filter_systems([20]))),
        ("table2", lambda: render_table2(trace)),
        ("fig7", lambda: render_figure7(trace)),
        ("table3", render_table3),
    )
    from repro import obs

    sections = []
    with obs.span("report", sections=len(renderers)):
        for name, renderer in renderers:
            try:
                with obs.span("report.section", section=name):
                    sections.append(
                        SectionResult(name=name, status="ok", text=renderer())
                    )
            except DegenerateSampleError as exc:
                sections.append(
                    SectionResult(
                        name=name,
                        status="degraded",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                sections.append(
                    SectionResult(
                        name=name,
                        status="degraded" if degraded_read else "failed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
    return PaperReport(sections=tuple(sections))


def render_figure7(trace: FailureTrace) -> str:
    """Figure 7: repair-time CDF with fits; mean/median per system."""
    fits = repair_fit_study(trace)
    minutes = np.maximum(trace.repair_minutes(), 0.1)
    plot = cdf_plot(
        minutes,
        {fit.name: fit.distribution for fit in fits},
        title="Figure 7(a): CDF of repair time (minutes) with fits",
    )
    return _format_figure7(fits, plot, repair_by_system(trace))


def _format_figure7(fits, plot, per_system) -> str:
    """Figure 7 text from ranked fits, a rendered CDF plot, and
    per-system repair rows."""
    fit_lines = "\n".join("  " + fit.describe() for fit in fits)
    mean_chart = bar_chart(
        [str(system_id) for system_id in per_system],
        [row.mean for row in per_system.values()],
        width=40,
        title="Figure 7(b): mean repair time per system (min)",
        value_format="{:.0f}",
    )
    median_chart = bar_chart(
        [str(system_id) for system_id in per_system],
        [row.median for row in per_system.values()],
        width=40,
        title="Figure 7(c): median repair time per system (min)",
        value_format="{:.0f}",
    )
    return f"Figure 7(a) fits:\n{fit_lines}\n\n{plot}\n\n{mean_chart}\n\n{median_chart}"
