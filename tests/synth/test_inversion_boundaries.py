"""Boundary-value audit of the searchsorted inversions.

Two cumulative-table inversions drive arrival sampling:

* :meth:`WeeklyProfile.invert` / ``invert_array`` — position in the
  week from effective seconds (``side="right" - 1`` with an hour-index
  clamp);
* :func:`invert_operational` / ``_invert_one`` — wall-clock time from
  cumulative operational time (``side="left"`` over the weekly
  capacity grid).

These tests pin the off-by-one-prone cases: targets exactly on a
bucket/week boundary, at zero, and at total mass — and assert the
vectorized and scalar twins agree bitwise there.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.records.timeutils import SECONDS_PER_HOUR, SECONDS_PER_WEEK
from repro.synth.arrivals import (
    ModulatedWeibullArrivals,
    build_arrival_grid,
    invert_operational,
    week_grid,
)
from repro.synth.diurnal import HOURS_PER_WEEK, WeeklyProfile


@pytest.fixture(scope="module")
def profile():
    return WeeklyProfile()


@pytest.fixture(scope="module")
def grid(profile):
    # A window starting mid-week (non-zero base0) spanning 4+ weeks.
    start = 1.5 * SECONDS_PER_WEEK
    end = 6.0 * SECONDS_PER_WEEK
    weeks = week_grid(start, end)
    levels = np.linspace(0.8, 1.3, len(weeks))
    return build_arrival_grid(profile, start, end, levels)


@pytest.fixture(scope="module")
def sampler(profile, grid):
    return ModulatedWeibullArrivals(
        base_rate=1e-6, shape=0.8, profile=profile,
        start=1.5 * SECONDS_PER_WEEK, end=6.0 * SECONDS_PER_WEEK,
        grid=grid,
    )


class TestWeeklyProfileInvert:
    def test_zero_maps_to_week_start(self, profile):
        assert profile.invert(0.0) == 0.0

    def test_total_mass_maps_to_week_end(self, profile):
        # The clamp keeps hour_index at 167; the remainder then walks
        # to the end of the last hour: no off-by-one past the table.
        # (profile.total is a float sum, so equality is to within ulps.)
        result = profile.invert(profile.total)
        assert result == pytest.approx(SECONDS_PER_WEEK, abs=1e-6)
        assert result <= SECONDS_PER_WEEK

    def test_target_exactly_on_hour_boundary(self, profile):
        # cumulative[i] must resolve to hour i's start, not hour i-1's
        # end via a stale remainder.
        for hour in (1, 24, 120, HOURS_PER_WEEK - 1):
            target = float(profile._cumulative[hour])
            assert profile.invert(target) == hour * SECONDS_PER_HOUR

    def test_roundtrip_through_cumulative(self, profile):
        positions = [0.0, 1.0, 3599.0, 3600.0, 90000.5, SECONDS_PER_WEEK]
        for position in positions:
            target = profile.cumulative_at(position)
            assert profile.invert(target) == pytest.approx(
                position, abs=1e-6
            )

    def test_out_of_range_rejected(self, profile):
        with pytest.raises(ValueError, match="outside"):
            profile.invert(-1.0)
        with pytest.raises(ValueError, match="outside"):
            profile.invert(profile.total * 1.01)

    def test_vectorized_bitwise_equals_scalar(self, profile):
        targets = np.array(
            [0.0, float(profile._cumulative[1]),
             float(profile._cumulative[24]),
             float(np.nextafter(profile._cumulative[24], 0.0)),
             profile.total / 3.0, profile.total]
        )
        vectorized = profile.invert_array(targets)
        scalar = np.array([profile.invert(t) for t in targets])
        assert vectorized.tolist() == scalar.tolist()  # bitwise

    def test_vectorized_range_check_matches_scalar(self, profile):
        with pytest.raises(ValueError, match="outside"):
            profile.invert_array(np.array([0.0, -1.0]))
        with pytest.raises(ValueError, match="outside"):
            profile.invert_array(np.array([profile.total * 1.01]))
        assert profile.invert_array(np.empty(0)).size == 0


class TestInvertOperational:
    def _boundary_totals(self, grid):
        cumulative = grid.cumulative
        capacity = float(cumulative[-1])
        return [
            float(np.nextafter(0.0, 1.0)),     # just past zero
            float(cumulative[0]),              # exactly first week boundary
            float(np.nextafter(cumulative[0], 0.0)),
            float(np.nextafter(cumulative[0], capacity)),
            float(cumulative[1]),              # interior week boundary
            0.5 * (float(cumulative[1]) + float(cumulative[2])),
            capacity,                          # exactly at total mass
            float(np.nextafter(capacity, 0.0)),
        ]

    def test_vectorized_bitwise_equals_scalar_at_boundaries(
        self, grid, profile, sampler
    ):
        totals = self._boundary_totals(grid)
        vectorized = invert_operational(grid, profile, np.array(totals))
        scalar = [sampler._invert_one(grid, total) for total in totals]
        assert vectorized.tolist() == scalar  # bitwise, incl. boundaries

    def test_week_boundary_total_lands_in_that_week(self, grid, profile):
        # A total exactly equal to cumulative[i] consumes all of week
        # i's mass: the event lands at the very end of week i, which is
        # the start of week i+1 — not a week later.
        total = float(grid.cumulative[0])
        time = float(invert_operational(grid, profile, np.array([total]))[0])
        assert time == pytest.approx(
            float(grid.week_starts[1]), abs=1e-6
        )

    def test_monotone_across_boundaries(self, grid, profile):
        totals = np.sort(self._boundary_totals(grid))
        times = invert_operational(grid, profile, totals)
        assert np.all(np.diff(times) >= 0)

    def test_capacity_overflow_raises_not_indexerror(self, grid, profile):
        capacity = float(grid.cumulative[-1])
        beyond = float(np.nextafter(capacity, np.inf))
        with pytest.raises(ValueError, match="exceeds the grid's capacity"):
            invert_operational(grid, profile, np.array([beyond]))

    def test_scalar_returns_none_past_capacity(self, grid, sampler):
        # The scalar loop's sentinel for "window exhausted"; the
        # vectorized path never sees such totals because
        # sample_operational_totals cuts at capacity first.
        capacity = float(grid.cumulative[-1])
        beyond = float(np.nextafter(capacity, np.inf))
        assert sampler._invert_one(grid, beyond) is None

    def test_empty_totals(self, grid, profile):
        assert invert_operational(grid, profile, np.empty(0)).size == 0


class TestEngineAgreementAtBoundaries:
    def test_operational_cut_keeps_exact_capacity_total(
        self, grid, profile, sampler
    ):
        # sample_operational_totals cuts with side="right": a total
        # exactly equal to capacity is kept (it still inverts inside
        # the window grid) — the scalar loop does the same before its
        # end-of-window check drops it.
        capacity = float(grid.cumulative[-1])
        totals = np.array([capacity * 0.5, capacity])
        count = int(np.searchsorted(totals, capacity, side="right"))
        assert count == 2

    def test_sample_paths_agree_bitwise(self, profile):
        start = 1.5 * SECONDS_PER_WEEK
        end = 6.0 * SECONDS_PER_WEEK
        weeks = week_grid(start, end)
        for seed in (0, 1, 2):
            scalar_sampler = ModulatedWeibullArrivals(
                base_rate=2e-6, shape=0.8, profile=profile,
                start=start, end=end, levels=np.ones(len(weeks)),
            )
            vector_sampler = ModulatedWeibullArrivals(
                base_rate=2e-6, shape=0.8, profile=profile,
                start=start, end=end, levels=np.ones(len(weeks)),
            )
            scalar = scalar_sampler.sample(
                np.random.Generator(np.random.PCG64(seed))
            )
            vectorized = vector_sampler.sample_vectorized(
                np.random.Generator(np.random.PCG64(seed))
            )
            assert [repr(t) for t in scalar] == [
                repr(float(t)) for t in vectorized
            ]
