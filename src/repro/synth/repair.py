"""Repair-time sampling (Table 2, Figure 7).

Repair times are lognormal — the paper's best fit — with a small
heavy-tail mixture component (the same lognormal shifted up in log
space) modeling the rare week-long repairs that drive Table 2's extreme
C^2 values (up to ~300), which a pure lognormal cannot reach.

The *mixture* is calibrated so that, at the reference hardware type,
its mean and median match Table 2's (mean, median) per root cause:

* median: the tail probability is small, so the mixture median is the
  body median up to a sub-percent correction => mu = ln(median).
* mean: the tail multiplies the body mean by a known factor
  ``exp(dmu + sigma*dsig + dsig^2/2)``, so the body mean that yields
  the target mixture mean is found by a fast fixed-point iteration
  (sigma depends on the body mean, which depends on sigma).

Environment repairs (only two detailed causes: power outage, A/C
failure) have C^2 ~ 2 and get no tail.

Per Figure 7(b,c), repair scale depends strongly on the *hardware
type* and not on system size: a per-type multiplier scales the whole
distribution.  The reference type is E (multiplier 1.0); since types E
and F dominate the failure counts, the aggregate Table 2 statistics
land near the reference values.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.records.record import RootCause
from repro.records.system import HardwareType
from repro.synth.config import GeneratorConfig

__all__ = ["RepairModel", "BatchRepairSampler"]

SECONDS_PER_MINUTE = 60.0


def _calibrate_body(
    target_mean: float,
    target_median: float,
    tail_prob: float,
    tail_mu_shift: float,
    tail_sigma_extra: float,
    iterations: int = 50,
) -> Tuple[float, float]:
    """Body (mu, sigma) such that the mixture matches (mean, median).

    Fixed-point iteration on the body mean; converges in a handful of
    steps because the tail factor varies slowly with sigma.
    """
    if target_mean < target_median:
        raise ValueError(
            f"mean {target_mean} < median {target_median} "
            "(lognormal requires mean >= median)"
        )
    mu = math.log(target_median)
    body_mean = target_mean
    sigma = math.sqrt(2.0 * math.log(max(body_mean / target_median, 1.0 + 1e-9)))
    for _ in range(iterations):
        tail_factor = math.exp(
            tail_mu_shift + sigma * tail_sigma_extra + 0.5 * tail_sigma_extra**2
        )
        denominator = (1.0 - tail_prob) + tail_prob * tail_factor
        new_body_mean = target_mean / denominator
        new_sigma = math.sqrt(
            2.0 * math.log(max(new_body_mean / target_median, 1.0 + 1e-9))
        )
        if abs(new_sigma - sigma) < 1e-12:
            sigma = new_sigma
            break
        sigma = new_sigma
        body_mean = new_body_mean
    if sigma <= 0:
        raise ValueError("degenerate repair distribution (mean ~ median with a tail)")
    return mu, sigma


class RepairModel:
    """Samples repair durations (seconds) by root cause and type."""

    def __init__(self, config: GeneratorConfig) -> None:
        self._config = config
        self._params: Dict[RootCause, Tuple[float, float]] = {}
        for cause, (mean_min, median_min) in config.repair_mean_median_min.items():
            tail_prob = (
                0.0 if cause in config.repair_no_tail_causes else config.repair_tail_prob
            )
            self._params[cause] = _calibrate_body(
                mean_min,
                median_min,
                tail_prob,
                config.repair_tail_mu_shift,
                config.repair_tail_sigma_extra,
            )

    def parameters(self, cause: RootCause) -> Tuple[float, float]:
        """The body lognormal (mu, sigma) in log-minutes for a cause."""
        return self._params[cause]

    def mixture_mean_minutes(self, cause: RootCause) -> float:
        """Analytic mean of the mixture at the reference type (minutes)."""
        mu, sigma = self._params[cause]
        config = self._config
        tail_prob = (
            0.0 if cause in config.repair_no_tail_causes else config.repair_tail_prob
        )
        body_mean = math.exp(mu + 0.5 * sigma**2)
        tail_factor = math.exp(
            config.repair_tail_mu_shift
            + sigma * config.repair_tail_sigma_extra
            + 0.5 * config.repair_tail_sigma_extra**2
        )
        return body_mean * ((1.0 - tail_prob) + tail_prob * tail_factor)

    def sample_minutes(
        self,
        generator: np.random.Generator,
        cause: RootCause,
        hardware_type: HardwareType,
    ) -> float:
        """One repair duration in minutes."""
        mu, sigma = self._params[cause]
        config = self._config
        tail = (
            cause not in config.repair_no_tail_causes
            and generator.random() < config.repair_tail_prob
        )
        if tail:
            mu = mu + config.repair_tail_mu_shift
            sigma = sigma + config.repair_tail_sigma_extra
        minutes = float(generator.lognormal(mu, sigma))
        minutes *= config.repair_type_factor[hardware_type]
        if (
            cause is RootCause.UNKNOWN
            and hardware_type not in config.unknown_era_types
        ):
            # Figure 1(b): short unknown repairs outside types D/G.
            minutes *= config.repair_unknown_short_factor
        return min(max(minutes, config.repair_floor_min), config.repair_ceiling_min)

    def sample_seconds(
        self,
        generator: np.random.Generator,
        cause: RootCause,
        hardware_type: HardwareType,
    ) -> float:
        """One repair duration in seconds (the record unit)."""
        return self.sample_minutes(generator, cause, hardware_type) * SECONDS_PER_MINUTE

    def batch_sampler(
        self, causes: Sequence[RootCause], hardware_type: HardwareType
    ) -> "BatchRepairSampler":
        """A batched sampler over a fixed cause alphabet.

        ``causes`` is the alphabet that batched cause indices refer to
        (``CauseModel.causes``); all per-cause parameters are gathered
        into lookup arrays once per (system, node loop).
        """
        return BatchRepairSampler(self, causes, hardware_type)


class BatchRepairSampler:
    """Vectorized repair draws over a fixed cause alphabet.

    Consumes the node's marks stream in the fixed block order
    ``u_tail`` then ``z`` (immediately after the cause blocks), so the
    vectorized and scalar mirrors see identical variates.  Unlike the
    legacy per-record path this draws the lognormal body explicitly as
    ``np.exp(mu + sigma * z)`` — NumPy's ``Generator.lognormal`` uses
    the C library ``exp``, whose rounding can differ from ``np.exp``'s,
    and the cross-engine bit-identity contract requires every float op
    to go through the same implementation in both engines.
    """

    def __init__(
        self,
        model: RepairModel,
        causes: Sequence[RootCause],
        hardware_type: HardwareType,
    ) -> None:
        config = model._config
        self._mu = np.array([model._params[cause][0] for cause in causes])
        self._sigma = np.array([model._params[cause][1] for cause in causes])
        self._tailable = np.array(
            [cause not in config.repair_no_tail_causes for cause in causes]
        )
        unknown_short = hardware_type not in config.unknown_era_types
        self._post_factor = np.array(
            [
                config.repair_type_factor[hardware_type]
                * (
                    config.repair_unknown_short_factor
                    if (cause is RootCause.UNKNOWN and unknown_short)
                    else 1.0
                )
                for cause in causes
            ]
        )
        self._tail_prob = config.repair_tail_prob
        self._mu_shift = config.repair_tail_mu_shift
        self._sigma_extra = config.repair_tail_sigma_extra
        self._floor = config.repair_floor_min
        self._ceiling = config.repair_ceiling_min

    def sample_seconds(
        self, generator: np.random.Generator, cause_idx: np.ndarray
    ) -> np.ndarray:
        """Batched repair durations in seconds for each cause index."""
        n = len(cause_idx)
        u_tail = generator.random(n)
        z = generator.standard_normal(n)
        return self.resolve_seconds(u_tail, z, cause_idx)

    def resolve_seconds(
        self, u_tail: np.ndarray, z: np.ndarray, cause_idx: np.ndarray
    ) -> np.ndarray:
        """Resolve pre-drawn mark variates to repair seconds.

        Split from :meth:`sample_seconds` so the trace generator can
        draw per-node mark blocks but resolve a whole system at once.
        """
        mu = self._mu[cause_idx]
        sigma = self._sigma[cause_idx]
        tail = self._tailable[cause_idx] & (u_tail < self._tail_prob)
        mu = np.where(tail, mu + self._mu_shift, mu)
        sigma = np.where(tail, sigma + self._sigma_extra, sigma)
        minutes = np.exp(mu + sigma * z)
        minutes = minutes * self._post_factor[cause_idx]
        minutes = np.minimum(np.maximum(minutes, self._floor), self._ceiling)
        return minutes * SECONDS_PER_MINUTE

    def sample_seconds_scalar(
        self, generator: np.random.Generator, cause_idx: np.ndarray
    ) -> np.ndarray:
        """Scalar mirror of :meth:`sample_seconds` (reference engine).

        Same stream consumption (block draws), per-event Python loop.
        """
        n = len(cause_idx)
        u_tail = generator.random(n)
        z = generator.standard_normal(n)
        return self.resolve_seconds_scalar(u_tail, z, cause_idx)

    def resolve_seconds_scalar(
        self, u_tail: np.ndarray, z: np.ndarray, cause_idx: np.ndarray
    ) -> np.ndarray:
        """Scalar mirror of :meth:`resolve_seconds` (per-event loop)."""
        n = len(cause_idx)
        out = np.empty(n)
        for i in range(n):
            index = cause_idx[i]
            mu = self._mu[index]
            sigma = self._sigma[index]
            if self._tailable[index] and u_tail[i] < self._tail_prob:
                mu = mu + self._mu_shift
                sigma = sigma + self._sigma_extra
            minutes = np.exp(mu + sigma * z[i])
            minutes = minutes * self._post_factor[index]
            out[i] = min(max(minutes, self._floor), self._ceiling) * SECONDS_PER_MINUTE
        return out
