"""Failure-record data model.

The vocabulary of the whole toolkit lives here:

* :class:`~repro.records.record.FailureRecord` — one failure, as entered
  in LANL's remedy database: system, node, start/end time, workload and
  root cause.
* :class:`~repro.records.record.RootCause` /
  :class:`~repro.records.record.Workload` — the paper's categorical
  fields.
* :class:`~repro.records.system.SystemConfig` and
  :class:`~repro.records.node.NodeCategory` — the Table 1 inventory
  schema; :data:`~repro.records.inventory.LANL_SYSTEMS` is Table 1
  encoded as data.
* :class:`~repro.records.trace.FailureTrace` — an immutable container of
  records with the filtering/slicing operations every analysis uses.
"""

from repro.records.node import NodeCategory, NodeConfig
from repro.records.record import (
    HIGH_LEVEL_CAUSES,
    FailureRecord,
    LowLevelCause,
    RootCause,
    Workload,
)
from repro.records.system import HardwareArchitecture, HardwareType, SystemConfig
from repro.records.inventory import (
    DATA_END,
    DATA_START,
    LANL_SYSTEMS,
    lanl_system,
    total_nodes,
    total_processors,
)
from repro.records.trace import FailureTrace
from repro.records.timeutils import (
    EPOCH,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_YEAR,
    day_of_week,
    from_datetime,
    hour_of_day,
    month_index,
    parse_month_year,
    to_datetime,
)
from repro.records.validation import (
    TraceValidationError,
    ValidationSummary,
    validate_record,
    validate_trace,
)

__all__ = [
    "FailureRecord",
    "RootCause",
    "LowLevelCause",
    "Workload",
    "HIGH_LEVEL_CAUSES",
    "NodeCategory",
    "NodeConfig",
    "HardwareType",
    "HardwareArchitecture",
    "SystemConfig",
    "LANL_SYSTEMS",
    "lanl_system",
    "total_nodes",
    "total_processors",
    "DATA_START",
    "DATA_END",
    "FailureTrace",
    "EPOCH",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_YEAR",
    "hour_of_day",
    "day_of_week",
    "month_index",
    "to_datetime",
    "from_datetime",
    "parse_month_year",
    "TraceValidationError",
    "validate_record",
    "validate_trace",
    "ValidationSummary",
]
