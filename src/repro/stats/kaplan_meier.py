"""Kaplan-Meier survival estimation.

The nonparametric counterpart to the censored MLE fitters: estimate the
survival function of time-between-failures directly, honoring
right-censored observations (the open gap after each node's last
failure), without committing to a parametric family.  Comparing the KM
curve against a fitted Weibull's survival is the standard reliability
diagnostic for "is the family adequate?".

Includes Greenwood's variance formula for pointwise confidence bands
and a restricted-mean-survival-time helper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

__all__ = ["KaplanMeier", "kaplan_meier"]

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class KaplanMeier:
    """A fitted Kaplan-Meier curve.

    Attributes
    ----------
    times:
        Distinct event times, ascending.
    survival:
        S(t) just after each event time.
    std_error:
        Greenwood standard errors of S(t).
    n_events / n_censored:
        Sample composition.
    """

    times: Tuple[float, ...]
    survival: Tuple[float, ...]
    std_error: Tuple[float, ...]
    n_events: int
    n_censored: int

    def survival_at(self, t: float) -> float:
        """S(t): right-continuous step evaluation (1.0 before the first event)."""
        index = np.searchsorted(np.asarray(self.times), t, side="right") - 1
        if index < 0:
            return 1.0
        return self.survival[index]

    def median(self) -> float:
        """Smallest event time with S(t) <= 0.5 (inf if never reached)."""
        for time, s in zip(self.times, self.survival):
            if s <= 0.5:
                return time
        return math.inf

    def confidence_band(self, z: float = 1.96) -> Tuple[np.ndarray, np.ndarray]:
        """Pointwise normal-approximation band (lower, upper), clipped to [0, 1]."""
        s = np.asarray(self.survival)
        se = np.asarray(self.std_error)
        return np.clip(s - z * se, 0.0, 1.0), np.clip(s + z * se, 0.0, 1.0)

    def restricted_mean(self, horizon: float) -> float:
        """Mean survival time restricted to [0, horizon] (area under S)."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        area = 0.0
        previous_time = 0.0
        previous_s = 1.0
        for time, s in zip(self.times, self.survival):
            if time >= horizon:
                break
            area += previous_s * (time - previous_time)
            previous_time, previous_s = time, s
        area += previous_s * (horizon - previous_time)
        return area


def kaplan_meier(observed: ArrayLike, censored: ArrayLike = ()) -> KaplanMeier:
    """Fit a Kaplan-Meier curve.

    Parameters
    ----------
    observed:
        Uncensored event durations (> 0).
    censored:
        Right-censored durations (> 0): the true value exceeds these.
    """
    events = np.asarray(observed, dtype=float)
    losses = np.asarray(censored, dtype=float)
    if events.size == 0:
        raise ValueError("kaplan_meier requires at least one event")
    if np.any(events <= 0) or np.any(losses <= 0):
        raise ValueError("durations must be strictly positive")
    # Pool and sort; censored observations tied with events are
    # conventionally considered at risk through the event.
    event_times, event_counts = np.unique(events, return_counts=True)
    n = events.size + losses.size
    survival = []
    errors = []
    greenwood_sum = 0.0
    s = 1.0
    for time, deaths in zip(event_times, event_counts):
        at_risk = int(np.sum(events >= time) + np.sum(losses >= time))
        s *= 1.0 - deaths / at_risk
        if at_risk > deaths:
            greenwood_sum += deaths / (at_risk * (at_risk - deaths))
        survival.append(s)
        errors.append(s * math.sqrt(greenwood_sum))
    return KaplanMeier(
        times=tuple(float(t) for t in event_times),
        survival=tuple(survival),
        std_error=tuple(errors),
        n_events=int(events.size),
        n_censored=int(losses.size),
    )
