"""Command-line interface.

::

    python -m repro generate --seed 1 --out trace.csv
    python -m repro generate --systems 19,20 --format jsonl --out g.jsonl
    python -m repro generate --workers 4 --run-dir runs/full --out trace.csv
    python -m repro generate --resume --run-dir runs/full --out trace.csv
    python -m repro generate --store columnar --scale 35 --out runs/big-store
    python -m repro store info runs/big-store
    python -m repro store verify runs/big-store
    python -m repro store analyze runs/big-store --systems 20 --json
    python -m repro store export runs/big-store trace.csv
    python -m repro store import trace.csv runs/imported-store
    python -m repro store scrub runs/big-store --fix-stats
    python -m repro store repair runs/big-store --from trace.csv
    python -m repro store append runs/big-store extra.csv
    python -m repro store merge runs/merged runs/store-a runs/store-b
    python -m repro report runs/big-store
    python -m repro report runs/big-store --artifact fig6 --workers 4
    python -m repro report trace.csv --artifact fig6
    python -m repro report --synthetic --artifact all
    python -m repro store analyze runs/big-store --full
    python -m repro summary trace.csv
    python -m repro availability trace.csv
    python -m repro validate trace.csv
    python -m repro ingest dirty.csv --mode lenient --quarantine dead.jsonl
    python -m repro chaos --synthetic --rate 0.05
    python -m repro bench --quick --out BENCH_generator.json
    python -m repro generate --seed 1 --out t.csv --trace trace.jsonl --metrics
    python -m repro profile --systems 2,13,20 --workers 2 --top 10
    python -m repro profile --trace trace.jsonl --validate
    python -m repro schema

Every subcommand that reads a trace accepts a CSV/JSONL path, a
columnar store directory, or ``--synthetic`` (with ``--seed``) to
generate the LANL trace in-process.

Any uncaught error exits with status 1 and a one-line message; pass
``--verbose`` (before or after the subcommand) to re-raise with the
full traceback instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.records.trace import FailureTrace

__all__ = ["main", "build_parser"]

ARTIFACTS = (
    "table1", "table2", "table3",
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "all",
)

INGEST_MODES = ("strict", "lenient", "repair")


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPC failure-data analysis toolkit (Schroeder & Gibson, DSN 2006)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    parser.add_argument(
        "--verbose", action="store_true", default=False,
        help="re-raise errors with the full traceback",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic LANL trace")
    generate.add_argument("--seed", type=int, default=0, help="generator seed")
    generate.add_argument(
        "--systems", type=str, default="",
        help="comma-separated system IDs (default: all 22)",
    )
    generate.add_argument("--out", type=str, required=True, help="output path")
    generate.add_argument(
        "--format", choices=("csv", "jsonl"), default="csv", help="output format"
    )
    generate.add_argument(
        "--store", choices=("records", "columnar"), default="records",
        help="output layout: 'records' writes --format to --out; "
             "'columnar' writes a sharded columnar store directory at "
             "--out (out-of-core; --format is ignored)",
    )
    generate.add_argument(
        "--scale", type=float, default=1.0, metavar="FACTOR",
        help="scale every system's node count by this factor "
             "(e.g. 35 ~ a million records)",
    )
    generate.add_argument(
        "--shard-rows", type=int, default=None, metavar="ROWS",
        help="rows per shard for --store columnar (default 131072)",
    )
    generate.add_argument(
        "--engine", choices=("vectorized", "scalar"), default=None,
        help="generation engine (both produce identical traces)",
    )
    generate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for per-system generation (supervised: "
             "crashed or hung workers are respawned and their shards retried)",
    )
    generate.add_argument(
        "--run-dir", type=str, default=None,
        help="run directory for the shard journal and run report "
             "(enables --resume after a crash)",
    )
    generate.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted run: skip shards already recorded "
             "in --run-dir's journal",
    )
    generate.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="hang detection: respawn the pool if no shard completes "
             "within this many seconds",
    )
    generate.add_argument(
        "--max-attempts", type=int, default=3,
        help="retry attempts per shard per engine stage",
    )
    generate.add_argument(
        "--chaos", type=str, default=None, metavar="OP[:TIMES]",
        help="fault-injection drill: inject process chaos into shard "
             "generation (kill-worker, hang-worker, slow-shard, "
             "flaky-shard); testing/CI only",
    )
    generate.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="enable tracing and write the span/metric event stream "
             "as JSONL to this path (worker spans are merged in)",
    )
    generate.add_argument(
        "--metrics", action="store_true",
        help="enable the metrics registry and print its summary",
    )

    for name, help_text in (
        ("report", "render a paper table/figure from a trace"),
        ("summary", "print the whole-paper summary"),
        ("availability", "per-system MTBF/MTTR/availability"),
        ("validate", "check a trace file against the data model"),
        ("outliers", "flag statistically anomalous nodes of a system"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("trace", nargs="?", default=None, help="CSV/JSONL path")
        command.add_argument(
            "--synthetic", action="store_true",
            help="use the synthetic trace instead of a file",
        )
        command.add_argument("--seed", type=int, default=1, help="synthetic seed")
        command.add_argument(
            "--on-damage", choices=("raise", "skip"), default="raise",
            help="columnar-store traces only: 'raise' fails on a damaged "
                 "shard; 'skip' runs a degraded read over the healthy "
                 "shards and warns on stderr",
        )
        if name == "report":
            command.add_argument(
                "--artifact", choices=ARTIFACTS, default="all",
                help="which table/figure to render (default: all)",
            )
            command.add_argument(
                "--workers", type=int, default=None, metavar="N",
                help="store directories only: scan shards with N "
                     "supervised worker processes (default serial)",
            )
            command.add_argument(
                "--batch-rows", type=int, default=None, metavar="ROWS",
                help="store directories only: rows per streamed chunk "
                     "(default 65536)",
            )
        if name == "outliers":
            command.add_argument(
                "--system", type=int, default=20, help="system ID to inspect"
            )
            command.add_argument(
                "--threshold", type=float, default=0.995,
                help="bulk-quantile flagging threshold",
            )

    compare = sub.add_parser("compare", help="compare two traces metric by metric")
    compare.add_argument("trace_a", help="first CSV/JSONL path")
    compare.add_argument("trace_b", help="second CSV/JSONL path")

    ingest = sub.add_parser(
        "ingest", help="load a (possibly dirty) trace under an ingest policy"
    )
    ingest.add_argument("trace", help="CSV/JSONL path, optionally gzipped")
    ingest.add_argument(
        "--mode", choices=INGEST_MODES, default="lenient",
        help="strict: fail on first bad row; lenient: quarantine bad rows; "
             "repair: fix swapped times / duplicate IDs / clampable "
             "timestamps, then quarantine",
    )
    ingest.add_argument(
        "--quarantine", type=str, default=None,
        help="dead-letter JSONL path for quarantined rows",
    )
    ingest.add_argument(
        "--max-error-rate", type=float, default=0.1,
        help="fail when more than this fraction of rows is quarantined",
    )
    ingest.add_argument(
        "--out", type=str, default=None,
        help="write the surviving rows to this CSV/JSONL path",
    )
    ingest.add_argument(
        "--json", action="store_true", help="print the ingest report as JSON"
    )

    chaos = sub.add_parser(
        "chaos", help="corrupt a trace, re-ingest it, and check survival"
    )
    chaos.add_argument("trace", nargs="?", default=None, help="CSV/JSONL path")
    chaos.add_argument(
        "--synthetic", action="store_true",
        help="use the synthetic trace instead of a file",
    )
    chaos.add_argument("--seed", type=int, default=1, help="synthetic seed")
    chaos.add_argument(
        "--systems", type=str, default="",
        help="comma-separated system IDs for --synthetic (default: all 22)",
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0, help="corruption injector seed"
    )
    chaos.add_argument(
        "--rate", type=float, default=0.05, help="fraction of rows to corrupt"
    )
    chaos.add_argument(
        "--mode", choices=("lenient", "repair"), default="lenient",
        help="ingest mode for the corrupted file",
    )
    chaos.add_argument(
        "--no-report", action="store_true",
        help="skip the paper report, only exercise ingest",
    )

    # Registered as "chaos-campaign"; main() rewrites the two-token
    # spelling ``chaos campaign ...`` to it, so the documented command
    # is ``repro chaos campaign`` while the legacy ``repro chaos
    # <trace>`` positional keeps working.
    campaign = sub.add_parser(
        "chaos-campaign",
        help="run a deterministic chaos campaign and verify recovery "
             "invariants (also: 'chaos campaign')",
    )
    campaign.add_argument(
        "--preset", choices=("smoke", "full"), default="smoke",
        help="scenario matrix to run (smoke: CI-sized; full: everything)",
    )
    campaign.add_argument(
        "--seed", type=int, default=7,
        help="campaign seed; same (preset, seed) -> byte-identical scorecard",
    )
    campaign.add_argument(
        "--root", type=str, default=None, metavar="DIR",
        help="campaign working directory (default: a temporary directory)",
    )
    campaign.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="where to write robustness_scorecard.json "
             "(default: <root>/robustness_scorecard.json)",
    )
    campaign.add_argument(
        "--json", action="store_true",
        help="print the scorecard JSON instead of the summary",
    )

    bench = sub.add_parser(
        "bench", help="benchmark trace generation (scalar/vectorized/parallel)"
    )
    bench.add_argument("--seed", type=int, default=1, help="generator seed")
    bench.add_argument(
        "--quick", action="store_true",
        help="only the 3-system smoke subset (CI)",
    )
    bench.add_argument(
        "--workers", type=int, default=1,
        help="also measure process-parallel generation with this many workers",
    )
    bench.add_argument(
        "--repeats", type=int, default=1,
        help="best-of-N timing per configuration",
    )
    bench.add_argument(
        "--out", type=str, default=None,
        help="write the JSON report here (e.g. BENCH_generator.json)",
    )
    bench.add_argument(
        "--check", type=str, default=None, metavar="BASELINE",
        help="fail if vectorized speedup regresses vs this baseline JSON",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional speedup regression for --check",
    )
    bench.add_argument(
        "--obs-guard", action="store_true",
        help="assert that disabled observability costs <= 2%% of a "
             "quick generate (runs instead of the throughput suites "
             "unless combined with them)",
    )
    bench.add_argument(
        "--fsfaults-guard", action="store_true",
        help="assert that the disabled filesystem-fault shim costs "
             "<= 2%% of a quick generate + trace write",
    )
    bench.add_argument(
        "--serve-guard", action="store_true",
        help="assert that the disabled read-path fault shim costs "
             "<= 2%% of a store analytics scan (the serving hot path)",
    )

    profile = sub.add_parser(
        "profile",
        help="run a scaled workload under tracing and print the span "
             "tree and top hotspots",
    )
    profile.add_argument("--seed", type=int, default=1, help="generator seed")
    profile.add_argument(
        "--systems", type=str, default="2,13,20",
        help="comma-separated system IDs for the profiling workload",
    )
    profile.add_argument(
        "--engine", choices=("vectorized", "scalar"), default=None,
        help="generation engine to profile",
    )
    profile.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (worker spans are merged into the trace)",
    )
    profile.add_argument(
        "--report", action="store_true",
        help="also profile the paper report over the generated trace",
    )
    profile.add_argument(
        "--top", type=int, default=10, help="number of hotspots to print"
    )
    profile.add_argument(
        "--max-depth", type=int, default=None,
        help="limit the printed span tree to this depth",
    )
    profile.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="also write the trace JSONL here",
    )
    profile.add_argument(
        "--trace", type=str, default=None, metavar="PATH",
        help="analyze an existing trace JSONL instead of running a workload",
    )
    profile.add_argument(
        "--validate", action="store_true",
        help="validate the trace against the schema (exit 1 on problems)",
    )

    store = sub.add_parser(
        "store", help="inspect, verify, convert a columnar trace store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_info = store_sub.add_parser(
        "info", help="print a store's manifest summary"
    )
    store_info.add_argument("root", help="store directory")
    store_info.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )

    store_verify = store_sub.add_parser(
        "verify", help="check column files against the manifest"
    )
    store_verify.add_argument("root", help="store directory")
    store_verify.add_argument(
        "--shallow", action="store_true",
        help="skip content checksums, statistics and sort checks "
             "(existence, shape and dtype only)",
    )
    store_verify.add_argument(
        "--json", action="store_true",
        help="print {problems, summary} as JSON (exit codes unchanged: "
             "0 clean, 1 problems)",
    )

    store_scrub = store_sub.add_parser(
        "scrub",
        help="classify damage, quarantine bad shards, repair safe drift",
    )
    store_scrub.add_argument("root", help="store directory")
    store_scrub.add_argument(
        "--fix-stats", action="store_true",
        help="recompute drifted manifest statistics from verified "
             "column data (instead of just reporting the drift)",
    )
    store_scrub.add_argument(
        "--json", action="store_true", help="print the scrub report as JSON"
    )

    store_repair = store_sub.add_parser(
        "repair",
        help="re-materialize quarantined shards from a reference trace "
             "or store, proving byte identity against the manifest",
    )
    store_repair.add_argument("root", help="store directory")
    store_repair.add_argument(
        "--from", dest="source", required=True, metavar="REFERENCE",
        help="reference to rebuild from: a CSV/JSONL trace file or "
             "another store directory holding the same records",
    )
    store_repair.add_argument(
        "--json", action="store_true", help="print the repair report as JSON"
    )

    store_append = store_sub.add_parser(
        "append",
        help="append a trace's records to an existing store (crash-safe: "
             "staged shards, atomic manifest publish)",
    )
    store_append.add_argument("root", help="existing store directory")
    store_append.add_argument(
        "source", help="CSV/JSONL trace file or store directory to append"
    )
    store_append.add_argument(
        "--shard-rows", type=int, default=None, metavar="ROWS",
        help="rows per new shard (default: the store's largest shard)",
    )

    store_merge = store_sub.add_parser(
        "merge",
        help="merge several traces/stores into a new store "
             "(globally re-sorted, crash-safe manifest publish)",
    )
    store_merge.add_argument("out", help="store directory to create")
    store_merge.add_argument(
        "sources", nargs="+",
        help="two or more CSV/JSONL trace files or store directories",
    )
    store_merge.add_argument(
        "--shard-rows", type=int, default=None, metavar="ROWS",
        help="rows per shard (default 131072)",
    )
    store_merge.add_argument(
        "--on-damage", choices=("raise", "skip"), default="raise",
        help="'skip' reads damaged source stores degraded instead of "
             "failing the merge",
    )

    store_analyze = store_sub.add_parser(
        "analyze",
        help="streaming summary over the store (bounded memory, "
             "predicate pushdown)",
    )
    store_analyze.add_argument("root", help="store directory")
    store_analyze.add_argument(
        "--since", type=float, default=None, metavar="TS",
        help="keep rows with start_time >= TS (epoch seconds)",
    )
    store_analyze.add_argument(
        "--until", type=float, default=None, metavar="TS",
        help="keep rows with start_time < TS (epoch seconds)",
    )
    store_analyze.add_argument(
        "--systems", type=str, default="",
        help="comma-separated system IDs to keep",
    )
    store_analyze.add_argument(
        "--batch-rows", type=int, default=None, metavar="ROWS",
        help="rows per read chunk (default 65536)",
    )
    store_analyze.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    store_analyze.add_argument(
        "--on-damage", choices=("raise", "skip"), default="raise",
        help="'raise' fails on a damaged shard; 'skip' summarizes the "
             "healthy shards and reports the skipped ones",
    )
    store_analyze.add_argument(
        "--full", action="store_true",
        help="render the full paper report out-of-core (streaming "
             "sketches, bounded memory) instead of the summary",
    )
    store_analyze.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="with --full: scan shards with N supervised worker "
             "processes (default serial)",
    )

    store_export = store_sub.add_parser(
        "export", help="stream a store to a CSV/JSONL trace file"
    )
    store_export.add_argument("root", help="store directory")
    store_export.add_argument("out", help="output path (.csv/.jsonl[.gz])")
    store_export.add_argument(
        "--format", choices=("csv", "jsonl"), default=None,
        help="output format (default: from the file suffix)",
    )
    store_export.add_argument(
        "--since", type=float, default=None, metavar="TS",
        help="keep rows with start_time >= TS",
    )
    store_export.add_argument(
        "--until", type=float, default=None, metavar="TS",
        help="keep rows with start_time < TS",
    )
    store_export.add_argument(
        "--systems", type=str, default="",
        help="comma-separated system IDs to keep",
    )

    store_import = store_sub.add_parser(
        "import", help="import a CSV/JSONL trace file into a store"
    )
    store_import.add_argument("trace", help="CSV/JSONL path, optionally gzipped")
    store_import.add_argument("root", help="store directory to create")
    store_import.add_argument(
        "--shard-rows", type=int, default=None, metavar="ROWS",
        help="rows per shard (default 131072)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve store analytics over HTTP until SIGTERM "
             "(admission control, deadlines, degraded serving)",
    )
    serve.add_argument("root", help="columnar store directory to serve")
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=4, metavar="N",
        help="queries executing simultaneously",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="queries allowed to wait; beyond that requests get 429",
    )
    serve.add_argument(
        "--deadline-seconds", type=float, default=5.0, metavar="S",
        help="default per-request scan budget (?deadline_ms= overrides)",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="S",
        help="open-breaker cooldown before a half-open probe",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="S",
        help="how long a SIGTERM drain waits for in-flight requests",
    )
    serve.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the final metrics snapshot here on drain",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="load-test the analytics service in-process and report "
             "latency percentiles and error/degraded rates",
    )
    serve_bench.add_argument("root", help="columnar store directory")
    serve_bench.add_argument(
        "--requests", type=int, default=200, help="total requests to issue"
    )
    serve_bench.add_argument(
        "--clients", type=int, default=8, help="concurrent client workers"
    )
    serve_bench.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline to attach to every query",
    )
    serve_bench.add_argument(
        "--max-concurrency", type=int, default=4, metavar="N",
        help="server-side concurrent query limit",
    )
    serve_bench.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="server-side admission queue cap",
    )
    serve_bench.add_argument(
        "--out", type=str, default=None, metavar="PATH",
        help="write the JSON report here",
    )
    serve_bench.add_argument(
        "--check-p99", type=float, default=None, metavar="MS",
        help="fail (exit 1) if p99 latency exceeds this many ms",
    )
    serve_bench.add_argument(
        "--max-error-rate", type=float, default=0.0, metavar="FRAC",
        help="fail if the 5xx/connection-error rate exceeds this",
    )

    sub.add_parser("schema", help="print the trace CSV schema")
    # --verbose is accepted before or after the subcommand; SUPPRESS
    # keeps a subparser without the flag from clobbering the root value.
    for subparser in sub.choices.values():
        subparser.add_argument(
            "--verbose", action="store_true", default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )
    for subparser in store_sub.choices.values():
        subparser.add_argument(
            "--verbose", action="store_true", default=argparse.SUPPRESS,
            help=argparse.SUPPRESS,
        )
    return parser


def _load_trace(args: argparse.Namespace):
    """Load the command's trace; returns ``(trace, degraded)``.

    ``degraded`` is a :class:`repro.store.DegradedReadReport` when the
    trace came from a columnar store opened with ``--on-damage skip``
    and shards were skipped, else ``None``.  A degraded load warns on
    stderr so piped stdout stays clean.
    """
    if args.synthetic:
        from repro.synth import TraceGenerator

        return TraceGenerator(seed=args.seed).generate(), None
    if not args.trace:
        raise SystemExit("error: provide a trace path or --synthetic")
    from pathlib import Path

    if Path(args.trace).is_dir():
        from repro.store import ColumnarStore

        store = ColumnarStore(
            args.trace, on_damage=getattr(args, "on_damage", "raise")
        )
        trace = store.to_trace()
        degraded = store.degraded if store.degraded else None
        if degraded is not None:
            print(
                f"warning: degraded read: skipped "
                f"{len(degraded.shards_skipped)} shard(s) "
                f"({degraded.rows_skipped} rows); run `repro store "
                f"scrub {args.trace}`",
                file=sys.stderr,
            )
        return trace, degraded
    from repro.io import detect_format, read_jsonl, read_lanl_csv

    if detect_format(args.trace) == "jsonl":
        return read_jsonl(args.trace), None
    return read_lanl_csv(args.trace), None


def _parse_chaos(spec: str, run_dir) -> "object":
    """Parse ``--chaos OP[:TIMES]`` into a ProcessChaos spec."""
    from repro.faults import make_chaos

    operator, _, times_text = spec.partition(":")
    times = int(times_text) if times_text else 1
    state_dir = str(run_dir / "chaos-state") if run_dir is not None else None
    return make_chaos(operator, times=times, state_dir=state_dir)


def _command_generate(args: argparse.Namespace) -> int:
    import contextlib
    from pathlib import Path

    from repro import obs
    from repro.io import write_jsonl, write_lanl_csv
    from repro.resilience import RetryPolicy, ShardJournal
    from repro.synth import SupervisionConfig, TraceGenerator

    system_ids = None
    if args.systems:
        system_ids = [int(part) for part in args.systems.split(",") if part]
    systems = None
    if args.scale != 1.0:
        from repro.synth.scenario import scaled_lanl_systems

        systems = scaled_lanl_systems(args.scale)
    generator = TraceGenerator(seed=args.seed, systems=systems)
    run_dir = Path(args.run_dir) if args.run_dir else None
    if args.resume and run_dir is None:
        raise SystemExit("error: --resume requires --run-dir")
    journal = None
    if run_dir is not None:
        journal = ShardJournal(
            run_dir,
            meta=generator.journal_meta(args.engine),
            resume=args.resume,
        )
    supervision = SupervisionConfig(
        policy=RetryPolicy(max_attempts=args.max_attempts, seed=args.seed),
        shard_timeout=args.shard_timeout,
    )
    chaos = contextlib.nullcontext()
    if args.chaos:
        from repro.faults import chaos_env

        if args.workers == 1:
            print(
                "warning: --chaos with --workers 1 injects into the main "
                "process; kill/hang operators will take down the run "
                "itself (use --run-dir so --resume can finish it)",
                file=sys.stderr,
            )
        chaos = chaos_env(_parse_chaos(args.chaos, run_dir))
    # Observability is opt-in (--trace / --metrics): a tracer + metrics
    # registry are installed for the whole command, and worker-process
    # tracing is armed through a spool directory (under --run-dir when
    # given, else a temp dir that outlives the worker pool).
    observability = bool(args.trace or args.metrics)
    tracer = None
    registry = None
    with contextlib.ExitStack() as stack:
        if observability:
            import tempfile

            tracer = obs.Tracer(run_id=f"generate:seed={args.seed}")
            registry = obs.MetricsRegistry()
            if run_dir is not None:
                spool = run_dir / "obs-spool"
            else:
                spool = Path(
                    stack.enter_context(
                        tempfile.TemporaryDirectory(prefix="repro-obs-")
                    )
                )
            stack.enter_context(obs.observing(tracer, registry, spool=spool))
            stack.enter_context(
                obs.span(
                    "repro.generate",
                    seed=args.seed,
                    workers=args.workers,
                    out=args.out,
                )
            )
        if args.store == "columnar":
            from repro.store.writer import DEFAULT_SHARD_ROWS

            with chaos:
                manifest = generator.generate_store(
                    args.out,
                    system_ids,
                    workers=args.workers,
                    engine=args.engine,
                    supervision=supervision,
                    journal=journal,
                    shard_rows=(
                        args.shard_rows
                        if args.shard_rows is not None
                        else DEFAULT_SHARD_ROWS
                    ),
                )
            count = manifest.row_count
            print(
                f"wrote {count} records in {len(manifest.shards)} "
                f"shard(s) to {args.out}"
            )
        else:
            with chaos:
                trace = generator.generate(
                    system_ids,
                    workers=args.workers,
                    engine=args.engine,
                    supervision=supervision,
                    journal=journal,
                )
            with obs.span("io.write", path=args.out, format=args.format):
                if args.format == "jsonl":
                    count = write_jsonl(trace, args.out)
                else:
                    count = write_lanl_csv(trace, args.out)
            print(f"wrote {count} records to {args.out}")
    if tracer is not None and args.trace:
        lines = tracer.write(args.trace, metrics=registry)
        print(f"wrote trace ({lines} events) to {args.trace}")
    if registry is not None and args.metrics:
        print(registry.describe())
    report = generator.last_run_report
    if report is not None:
        if tracer is not None:
            report.meta["observability"] = {
                "trace": args.trace,
                "spans": len(tracer.events),
                "metrics": len(registry) if registry is not None else 0,
            }
        if run_dir is not None:
            report.write(run_dir / "run_report.json")
            print(f"wrote {run_dir / 'run_report.json'}")
        if report.resumed_shards:
            print(f"resumed {len(report.resumed_shards)} shard(s) from the journal")
        if report.retried_shards or report.degraded_shards or report.skipped_shards:
            print(report.describe())
        if report.skipped_shards:
            # The run *completed*, but degraded past the last ladder
            # stage for some shards: the trace is missing systems.
            return 3
    return 0


def _report_from_store(args: argparse.Namespace) -> int:
    """``repro report <store-dir>``: the out-of-core streaming path.

    Renders straight from the columnar store through mergeable sketches
    — no trace is materialized, so peak memory stays bounded by one
    read chunk regardless of store size.
    """
    from repro.report.streaming import run_store_report
    from repro.store import ColumnarStore
    from repro.store.reader import DEFAULT_BATCH_ROWS

    store = ColumnarStore(
        args.trace, on_damage=getattr(args, "on_damage", "raise")
    )
    result = run_store_report(
        store,
        workers=args.workers,
        batch_rows=(
            args.batch_rows
            if args.batch_rows is not None
            else DEFAULT_BATCH_ROWS
        ),
    )
    if result.degraded is not None:
        print(
            f"warning: degraded read: skipped "
            f"{len(result.degraded['shards_skipped'])} shard(s) "
            f"({result.degraded['rows_skipped']} rows); run "
            f"`repro store scrub {args.trace}`",
            file=sys.stderr,
        )
    paper = result.report
    if args.artifact == "all":
        print(paper.render())
        print("\n" + "=" * 78 + "\n")
        print(paper.diagnostics())
        return 0 if paper.ok else 1
    section = next(s for s in paper.sections if s.name == args.artifact)
    if section.ok:
        print(section.text)
        return 0
    print(f"[{args.artifact} unavailable on this store: {section.error}]")
    return 1


def _command_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import report

    if args.trace and not args.synthetic and Path(args.trace).is_dir():
        return _report_from_store(args)
    trace, degraded = _load_trace(args)
    if args.artifact == "all":
        paper = report.run_paper_report(trace, degraded_read=degraded)
        print(paper.render())
        print("\n" + "=" * 78 + "\n")
        print(paper.diagnostics())
        return 0 if paper.ok else 1
    renderers = {
        "table1": lambda: report.render_table1(trace),
        "table2": lambda: report.render_table2(trace),
        "table3": report.render_table3,
        "fig1": lambda: report.render_figure1(trace),
        "fig2": lambda: report.render_figure2(trace),
        "fig3": lambda: report.render_figure3(trace),
        "fig4": lambda: report.render_figure4(trace),
        "fig5": lambda: report.render_figure5(trace),
        "fig6": lambda: report.render_figure6(trace.filter_systems([20])),
        "fig7": lambda: report.render_figure7(trace),
    }
    print(renderers[args.artifact]())
    return 0


def _command_summary(args: argparse.Namespace) -> int:
    from repro.analysis import summarize
    from repro.records.record import RootCause

    trace, _ = _load_trace(args)
    summary = summarize(trace)
    print(f"records: {summary.n_records}")
    low, high = summary.rate_range
    print(f"failure rates: {low:.0f} .. {high:.0f} per year")
    overall = summary.cause_breakdown["All systems"]
    causes = "  ".join(
        f"{cause.value}={overall.percent(cause):.0f}%" for cause in RootCause
    )
    print(f"root causes: {causes}")
    if summary.tbf_system_late is not None:
        tbf = summary.tbf_system_late
        print(
            f"TBF (system 20, late): best={tbf.best.name} "
            f"shape={tbf.weibull_shape:.2f} hazard={tbf.hazard}"
        )
    print(f"TTR: best={summary.repair_best_fit}; per-system mean "
          f"{summary.repair_system_range[0]:.0f}..{summary.repair_system_range[1]:.0f} min")
    print(
        f"periodicity: peak/trough={summary.periodicity.peak_trough_ratio:.2f} "
        f"weekday/weekend={summary.periodicity.weekday_weekend_ratio:.2f}"
    )
    shapes = ", ".join(
        f"{system_id}:{shape}" for system_id, shape in sorted(summary.lifecycle_shapes.items())
    )
    print(f"lifecycle shapes: {shapes}")
    return 0


def _command_availability(args: argparse.Namespace) -> int:
    from repro.analysis import availability_report
    from repro.report import format_table

    trace, _ = _load_trace(args)
    rows = [
        (
            system_id,
            availability.failures,
            f"{availability.mtbf_hours:.1f}",
            f"{availability.mttr_hours:.1f}",
            f"{100 * availability.node_availability:.3f}%",
            f"{100 * availability.any_node_down_fraction:.1f}%",
        )
        for system_id, availability in availability_report(trace).items()
    ]
    print(format_table(
        ("system", "failures", "MTBF (h)", "MTTR (h)", "node avail", "any node down"),
        rows, title="Availability report",
    ))
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    from repro.records.validation import validate_trace

    trace, _ = _load_trace(args)
    problems = validate_trace(trace)
    if problems:
        for problem in problems:
            print(problem)
        print(f"INVALID: {len(problems)} problem(s) in {len(trace)} records")
        return 1
    print(f"OK: {len(trace)} records valid")
    return 0


def _command_outliers(args: argparse.Namespace) -> int:
    from repro.analysis import find_node_outliers
    from repro.report import format_table

    trace, _ = _load_trace(args)
    outliers, bulk = find_node_outliers(trace, args.system, threshold=args.threshold)
    print(f"bulk model: {bulk.describe()} (median {bulk.median:.0f} failures/node)")
    if not outliers:
        print(f"system {args.system}: no outlier nodes at threshold {args.threshold}")
        return 0
    rows = [
        (o.node_id, o.count, f"{o.excess_ratio:.1f}x", f"{o.tail_probability:.1e}")
        for o in outliers
    ]
    print(format_table(
        ("node", "failures", "vs bulk median", "tail p"),
        rows, title=f"Outlier nodes of system {args.system}",
    ))
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.analysis import compare_traces
    from repro.io import read_jsonl, read_lanl_csv

    def load(path: str):
        return read_jsonl(path) if path.endswith(".jsonl") else read_lanl_csv(path)

    rows = compare_traces(load(args.trace_a), load(args.trace_b))
    print(f"{'metric':<36} {'A':>12} {'B':>12}")
    for row in rows:
        print(row.describe())
    worst = max(rows, key=lambda row: row.relative_difference)
    print(f"\nlargest relative difference: {worst.name} "
          f"({100 * worst.relative_difference:.1f}%)")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    import json as _json

    from repro.io import IngestPolicy, SchemaError, detect_format, ingest_trace

    policy = IngestPolicy(
        mode=args.mode,
        max_error_rate=args.max_error_rate,
        quarantine=args.quarantine,
    )
    try:
        result = ingest_trace(args.trace, policy=policy)
    except SchemaError as exc:
        print(f"error: {exc}")
        return 1
    if args.json:
        print(_json.dumps(result.report.to_dict(), indent=2, sort_keys=True))
    else:
        print(result.report.describe())
    if args.out:
        from repro.io import write_jsonl, write_lanl_csv

        if detect_format(args.out) == "jsonl":
            count = write_jsonl(result.trace, args.out)
        else:
            count = write_lanl_csv(result.trace, args.out)
        print(f"wrote {count} surviving records to {args.out}")
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    from repro.faults import chaos_roundtrip

    if args.synthetic:
        from repro.synth import TraceGenerator

        system_ids = None
        if args.systems:
            system_ids = [int(part) for part in args.systems.split(",") if part]
        trace = TraceGenerator(seed=args.seed).generate(system_ids)
    elif args.trace:
        from repro.io import detect_format, read_jsonl, read_lanl_csv

        if detect_format(args.trace) == "jsonl":
            trace = read_jsonl(args.trace)
        else:
            trace = read_lanl_csv(args.trace)
    else:
        raise SystemExit("error: provide a trace path or --synthetic")
    report = chaos_roundtrip(
        trace,
        seed=args.chaos_seed,
        rate=args.rate,
        mode=args.mode,
        run_report=not args.no_report,
    )
    print(report.describe())
    return 0 if report.survived else 1


def _command_chaos_campaign(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.faults.campaign import run_campaign

    result = run_campaign(
        preset=args.preset,
        seed=args.seed,
        root=Path(args.root) if args.root else None,
        scorecard_path=Path(args.out) if args.out else None,
    )
    if args.json:
        print(_json.dumps(result.scorecard(), indent=2, sort_keys=True))
    else:
        print(result.describe())
        total = sum(result.wall_times.values())
        print(f"({len(result.outcomes)} scenarios in {total:.1f}s)")
    return 0 if result.ok else 1


def _command_profile(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile
    from pathlib import Path

    from repro import obs
    from repro.obs import profile as profile_mod
    from repro.obs import schema as schema_mod

    registry = None
    if args.trace:
        events = schema_mod.read_trace_file(Path(args.trace))
    else:
        from repro.synth import TraceGenerator

        system_ids = None
        if args.systems:
            system_ids = [int(part) for part in args.systems.split(",") if part]
        tracer = obs.Tracer(run_id=f"profile:seed={args.seed}")
        registry = obs.MetricsRegistry()
        with contextlib.ExitStack() as stack:
            spool = Path(
                stack.enter_context(
                    tempfile.TemporaryDirectory(prefix="repro-obs-")
                )
            )
            stack.enter_context(obs.observing(tracer, registry, spool=spool))
            with obs.span(
                "repro.profile", seed=args.seed, workers=args.workers
            ):
                trace = TraceGenerator(seed=args.seed).generate(
                    system_ids, workers=args.workers, engine=args.engine
                )
                if args.report:
                    from repro.report import run_paper_report

                    run_paper_report(trace)
        events = tracer.to_events(registry)
        if args.out:
            tracer.write(args.out, metrics=registry)
            print(f"wrote {args.out}")
    if args.validate:
        problems = schema_mod.validate_events(events)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        print(f"schema OK: {len(events)} events")
    print(profile_mod.format_span_tree(events, max_depth=args.max_depth))
    print()
    print(profile_mod.format_hotspots(events, top=args.top))
    if registry is not None and len(registry):
        print()
        print(registry.describe())
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.benchmark import (
        check_against_baseline,
        format_report,
        measure_obs_overhead,
        run_benchmark,
        write_report,
    )

    if args.obs_guard or args.fsfaults_guard or args.serve_guard:
        code = 0
        if args.obs_guard:
            guard = measure_obs_overhead(seed=args.seed)
            print(
                "observability overhead guard: "
                f"{guard['spans_per_generate']} span sites x "
                f"{guard['noop_span_cost_ns']:.0f}ns disabled cost = "
                f"{100 * guard['overhead_fraction']:.3f}% of a "
                f"{guard['disabled_seconds']:.3f}s generate "
                f"(threshold {100 * guard['threshold']:.0f}%)"
            )
            if not guard["ok"]:
                print(
                    "REGRESSION: disabled observability overhead above "
                    "threshold"
                )
                code = 1
        if args.fsfaults_guard:
            from repro.benchmark import measure_fsfaults_overhead

            guard = measure_fsfaults_overhead(seed=args.seed)
            print(
                "fs-faults overhead guard: "
                f"{guard['sites_per_run']} hook sites x "
                f"{guard['noop_hook_cost_ns']:.0f}ns disabled cost = "
                f"{100 * guard['overhead_fraction']:.3f}% of a "
                f"{guard['disabled_seconds']:.3f}s generate+write "
                f"(threshold {100 * guard['threshold']:.0f}%)"
            )
            if not guard["ok"]:
                print(
                    "REGRESSION: disabled fs-faults shim overhead above "
                    "threshold"
                )
                code = 1
        if args.serve_guard:
            from repro.benchmark import measure_serve_overhead

            guard = measure_serve_overhead()
            print(
                "serve overhead guard: "
                f"{guard['sites_per_scan']} read hook sites x "
                f"{guard['noop_hook_cost_ns']:.0f}ns disabled cost = "
                f"{100 * guard['overhead_fraction']:.3f}% of a "
                f"{guard['disabled_seconds']:.3f}s store scan "
                f"(threshold {100 * guard['threshold']:.0f}%)"
            )
            if not guard["ok"]:
                print(
                    "REGRESSION: disabled read-path fault shim overhead "
                    "above threshold"
                )
                code = 1
        return code

    report = run_benchmark(
        seed=args.seed,
        quick=args.quick,
        workers=args.workers,
        repeats=args.repeats,
    )
    print(format_report(report))
    if args.out:
        write_report(report, args.out)
        print(f"wrote {args.out}")
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            baseline = _json.load(handle)
        problems = check_against_baseline(
            report, baseline, tolerance=args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}")
            return 1
        print(f"regression check vs {args.check}: OK")
    return 0


def _store_predicate(args: argparse.Namespace):
    from repro.store import Predicate

    systems = None
    if args.systems:
        systems = [int(part) for part in args.systems.split(",") if part]
    predicate = Predicate.build(
        t_min=args.since, t_max=args.until, systems=systems
    )
    return None if predicate.is_null() else predicate


def _command_store(args: argparse.Namespace) -> int:
    import json as _json

    if args.store_command == "info":
        from repro.store import ColumnarStore

        info = ColumnarStore(args.root).info()
        if args.json:
            print(_json.dumps(info, indent=2, sort_keys=True))
        else:
            print(f"columnar store at {info['root']}")
            print(
                f"  rows: {info['rows']} in {info['shards']} shard(s), "
                f"{info['bytes']} bytes"
            )
            print(f"  record ids: {info['record_ids']}")
            print(f"  systems: {','.join(str(s) for s in info['systems'])}")
            print(f"  schema: {info['schema_sha256'][:12]} "
                  f"(format v{info['format_version']})")
            print(
                f"  window: [{info['data_start']!r}, {info['data_end']!r}]"
            )
            healing = info["healing"]
            if healing["quarantined_shards"]:
                affected = ",".join(
                    str(s) for s in healing["affected_systems"]
                )
                print(
                    f"  healing: DEGRADED — "
                    f"{healing['quarantined_shards']} shard(s) "
                    f"({healing['quarantined_rows']} rows) quarantined; "
                    f"affected systems: {affected} "
                    "(run `repro store repair`)"
                )
            else:
                print("  healing: clean (no quarantined shards)")
            if healing["manifest_prev"]:
                print("  healing: manifest.prev.json rollback generation present")
            for key, value in info["meta"].items():
                print(f"  meta.{key}: {value}")
        return 0

    if args.store_command == "verify":
        from repro.store import verify_store

        problems = verify_store(args.root, deep=not args.shallow)
        mode = "shallow" if args.shallow else "deep"
        if args.json:
            # Exit codes are pinned for scripting: 0 clean, 1 problems.
            print(_json.dumps(
                {
                    "problems": problems,
                    "summary": {
                        "ok": not problems,
                        "count": len(problems),
                        "mode": mode,
                        "root": args.root,
                    },
                },
                indent=2, sort_keys=True,
            ))
            return 1 if problems else 0
        if problems:
            for problem in problems:
                print(problem)
            print(f"CORRUPT: {len(problems)} problem(s)")
            return 1
        print(f"OK: store verifies clean ({mode})")
        return 0

    if args.store_command == "scrub":
        from repro.store import scrub_store

        report = scrub_store(args.root, fix_stats=args.fix_stats)
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.describe())
        return 0 if report.ok else 1

    if args.store_command == "repair":
        from repro.store import repair_store

        report = repair_store(args.root, args.source)
        if args.json:
            print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.describe())
        return 0 if report.ok else 1

    if args.store_command == "append":
        from repro.store import append_trace

        manifest = append_trace(
            args.root, args.source, shard_rows=args.shard_rows
        )
        print(
            f"store now holds {manifest.row_count} records in "
            f"{len(manifest.shards)} shard(s) at {args.root}"
        )
        return 0

    if args.store_command == "merge":
        from repro.store import merge_stores
        from repro.store.writer import DEFAULT_SHARD_ROWS

        manifest = merge_stores(
            args.out,
            args.sources,
            shard_rows=(
                args.shard_rows
                if args.shard_rows is not None
                else DEFAULT_SHARD_ROWS
            ),
            on_damage=args.on_damage,
        )
        print(
            f"merged {len(args.sources)} source(s): {manifest.row_count} "
            f"records in {len(manifest.shards)} shard(s) at {args.out}"
        )
        return 0

    if args.store_command == "analyze":
        from repro.store import ColumnarStore, summarize_store
        from repro.store.reader import DEFAULT_BATCH_ROWS

        store = ColumnarStore(args.root, on_damage=args.on_damage)
        predicate = _store_predicate(args)
        if args.full:
            from repro.report.streaming import run_store_report

            if predicate is not None:
                raise SystemExit(
                    "error: --full renders the whole-store report and "
                    "does not compose with --since/--until/--systems"
                )
            result = run_store_report(
                store,
                workers=args.workers,
                batch_rows=(
                    args.batch_rows
                    if args.batch_rows is not None
                    else DEFAULT_BATCH_ROWS
                ),
            )
            if args.json:
                print(_json.dumps(
                    result.to_dict(), indent=2, sort_keys=True
                ))
            else:
                if result.degraded is not None:
                    print(
                        f"warning: degraded read: skipped "
                        f"{len(result.degraded['shards_skipped'])} "
                        f"shard(s); run `repro store scrub {args.root}`",
                        file=sys.stderr,
                    )
                print(result.report.render())
                print("\n" + "=" * 78 + "\n")
                print(result.report.diagnostics())
            return 0 if result.report.ok else 1
        summary = summarize_store(
            store,
            predicate=predicate,
            batch_rows=(
                args.batch_rows
                if args.batch_rows is not None
                else DEFAULT_BATCH_ROWS
            ),
        )
        if args.json:
            print(_json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        else:
            if predicate is not None:
                print(f"filter: {predicate.describe()}")
            print(summary.describe())
        return 0

    if args.store_command == "export":
        from repro.store import ColumnarStore, export_store

        store = ColumnarStore(args.root)
        count = export_store(
            store,
            args.out,
            fmt=args.format,
            predicate=_store_predicate(args),
        )
        print(f"exported {count} records to {args.out}")
        return 0

    if args.store_command == "import":
        from repro.store import store_from_file
        from repro.store.writer import DEFAULT_SHARD_ROWS

        manifest = store_from_file(
            args.trace,
            args.root,
            shard_rows=(
                args.shard_rows
                if args.shard_rows is not None
                else DEFAULT_SHARD_ROWS
            ),
        )
        print(
            f"imported {manifest.row_count} records in "
            f"{len(manifest.shards)} shard(s) to {args.root}"
        )
        return 0

    raise SystemExit(f"error: unknown store command {args.store_command!r}")


def _command_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import obs
    from repro.serve import AnalyticsServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        deadline_seconds=args.deadline_seconds,
        breaker_cooldown=args.breaker_cooldown,
        drain_grace=args.drain_grace,
        metrics_path=Path(args.metrics_out) if args.metrics_out else None,
    )
    server = AnalyticsServer(args.root, config)
    # Metrics-only observability: the span stack is single-threaded by
    # design and the serve executor is not (see repro/serve/server.py).
    with obs.observing(metrics_registry=obs.MetricsRegistry()):
        return server.run()


def _command_serve_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.serve import ServeConfig, check_serve_report, run_serve_bench

    report = run_serve_bench(
        args.root,
        requests=args.requests,
        clients=args.clients,
        deadline_ms=args.deadline_ms,
        config=ServeConfig(
            port=0,
            max_concurrency=args.max_concurrency,
            max_queue=args.max_queue,
        ),
    )
    latency = report["latency_ms"]
    print(
        f"serve-bench: {report['requests']} requests, "
        f"{report['clients']} clients -> "
        f"p50={latency['p50']:.1f}ms p90={latency['p90']:.1f}ms "
        f"p99={latency['p99']:.1f}ms "
        f"({report['throughput_rps']:.0f} req/s)"
    )
    print(
        f"  outcomes: {report['outcomes']}  "
        f"error_rate={report['error_rate']:.4f} "
        f"degraded_rate={report['degraded_rate']:.4f}"
    )
    if args.out:
        from repro.resilience.atomic import atomic_write_json

        atomic_write_json(args.out, report)
        print(f"wrote {args.out}")
    violations = check_serve_report(
        report, p99_ms=args.check_p99, max_error_rate=args.max_error_rate
    )
    for violation in violations:
        print(f"REGRESSION: {violation}")
    return 1 if violations else 0


def _command_schema(_args: argparse.Namespace) -> int:
    from repro.io import describe_schema

    print(describe_schema())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Every subcommand runs under a top-level error boundary: an uncaught
    exception prints a one-line ``error:`` message and exits 1 instead
    of dumping a traceback; ``--verbose`` re-raises.
    """
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    # "chaos campaign" is the documented spelling; the subparser is
    # registered as "chaos-campaign" because the legacy "chaos" command
    # takes a positional trace path that would swallow "campaign".
    if len(argv) >= 2 and argv[0] == "chaos" and argv[1] == "campaign":
        argv = ["chaos-campaign"] + list(argv[2:])
    args = parser.parse_args(argv)
    commands = {
        "generate": _command_generate,
        "report": _command_report,
        "summary": _command_summary,
        "availability": _command_availability,
        "validate": _command_validate,
        "outliers": _command_outliers,
        "compare": _command_compare,
        "ingest": _command_ingest,
        "chaos": _command_chaos,
        "chaos-campaign": _command_chaos_campaign,
        "bench": _command_bench,
        "profile": _command_profile,
        "store": _command_store,
        "serve": _command_serve,
        "serve-bench": _command_serve_bench,
        "schema": _command_schema,
    }
    try:
        return commands[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        if getattr(args, "verbose", False):
            raise
        message = str(exc) or type(exc).__name__
        print(f"error: {type(exc).__name__}: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
