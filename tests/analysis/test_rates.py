"""Tests for failure-rate analyses (Figure 2)."""

import pytest

from repro.analysis.rates import (
    failure_rates,
    normalized_variability,
    rate_size_correlation,
)
from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace


def record(start, system, node=0):
    return FailureRecord(
        start_time=start, end_time=start + 60.0, system_id=system, node_id=node,
        root_cause=RootCause.HARDWARE,
    )


class TestFailureRatesSmall:
    def test_rate_arithmetic(self):
        # 10 failures on system 22 (in production ~1.08 years).
        records = [record(3.0e8 + i * 1e5, system=22) for i in range(10)]
        trace = FailureTrace(records)
        rates = {r.system_id: r for r in failure_rates(trace)}
        sys22 = rates[22]
        assert sys22.failures == 10
        assert sys22.per_year == pytest.approx(10 / sys22.production_years)
        assert sys22.per_year_per_proc == pytest.approx(sys22.per_year / 256)

    def test_zero_rate_systems_included(self):
        trace = FailureTrace([record(3.0e8, system=22)])
        rates = failure_rates(trace)
        assert len(rates) == 22
        assert sum(1 for r in rates if r.failures > 0) == 1

    def test_sorted_by_system_id(self):
        trace = FailureTrace([record(3.0e8, system=22)])
        ids = [r.system_id for r in failure_rates(trace)]
        assert ids == sorted(ids)


class TestOnSyntheticTrace:
    def test_rate_range_wide(self, full_trace):
        # Paper: 17 to 1159 failures/year across systems — two orders
        # of magnitude.
        rates = [r.per_year for r in failure_rates(full_trace) if r.failures > 0]
        assert max(rates) / min(rates) > 50

    def test_normalization_shrinks_variability(self, full_trace):
        # Normalized rates are less variable overall; the single-node
        # type-C system stays an outlier, exactly as in Figure 2(b).
        cv = normalized_variability(full_trace)
        assert cv["normalized"] < cv["raw"]

    def test_within_type_consistency(self, full_trace):
        # Figure 2(b): systems of the same hardware type have similar
        # normalized rates.  Type E includes the deliberately boosted
        # first-deployment systems 5-6 (the paper's footnote 3), so its
        # spread is wider than type F's.
        cv = normalized_variability(full_trace)
        assert cv["normalized[F]"] < 0.30
        assert cv["normalized[E]"] < 0.60

    def test_rates_roughly_linear_in_size(self, full_trace):
        # Strong log-log correlation between failures/year and
        # processor count supports "not growing faster than linearly".
        assert rate_size_correlation(full_trace) > 0.8

    def test_system7_is_the_peak(self, full_trace):
        # System 7 (4096 procs, type E) is the paper's 1159/year peak.
        rates = {r.system_id: r.per_year for r in failure_rates(full_trace)}
        assert rates[7] == max(rates.values())
        assert 900 < rates[7] < 1900


class TestErrors:
    def test_variability_needs_two_systems(self):
        trace = FailureTrace([record(3.0e8, system=22)])
        with pytest.raises(ValueError):
            normalized_variability(trace)

    def test_correlation_needs_three_systems(self):
        trace = FailureTrace([record(3.0e8, system=22), record(3.0e8, system=2)])
        with pytest.raises(ValueError):
            rate_size_correlation(trace)
