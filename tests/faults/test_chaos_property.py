"""The chaos acceptance property, per corruption operator.

For every damaging operator: strict ingest raises ``SchemaError``
naming the offending row; lenient ingest quarantines only the damaged
rows and keeps every clean row byte-identical to ingesting the
uncorrupted trace; and the full paper report completes on a
5 %-corrupted trace with per-section diagnostics instead of an
exception.
"""

import re

import pytest

from repro.faults import (
    DEFAULT_OPERATORS,
    CorruptionInjector,
    NegativeDurationer,
    RowShuffler,
    chaos_roundtrip,
)
from repro.io import IngestPolicy, SchemaError, ingest_trace, write_lanl_csv
from repro.records.record import FailureRecord, RootCause, Workload
from repro.synth import TraceGenerator


def clean_records(n=60):
    """A handcrafted, fully in-window trace on system 20."""
    return [
        FailureRecord(
            start_time=150000000.0 + 1000.0 * i,
            end_time=150000000.0 + 1000.0 * i + 600.0,
            system_id=20,
            node_id=i % 40,
            workload=Workload.COMPUTE,
            root_cause=RootCause.HARDWARE,
            record_id=i,
        )
        for i in range(n)
    ]


@pytest.fixture()
def clean_path(tmp_path):
    path = tmp_path / "clean.csv"
    write_lanl_csv(clean_records(), path)
    return path


def serialize(trace, path):
    """CSV body lines of a trace — the byte-level view of its rows."""
    write_lanl_csv(trace, path)
    return path.read_text().splitlines()[1:]


LENIENT = IngestPolicy(mode="lenient", max_error_rate=0.5)


@pytest.mark.parametrize(
    "operator", DEFAULT_OPERATORS, ids=[op.name for op in DEFAULT_OPERATORS]
)
class TestPerOperatorProperty:
    def corrupt(self, clean_path, tmp_path, operator):
        dirty_path = tmp_path / "dirty.csv"
        injector = CorruptionInjector(seed=7, rate=0.1, operators=[operator])
        manifest = injector.corrupt_file(clean_path, dirty_path)
        assert manifest.n_corrupted > 0
        return dirty_path, manifest

    def test_strict_raises_naming_the_row(self, clean_path, tmp_path, operator):
        dirty_path, manifest = self.corrupt(clean_path, tmp_path, operator)
        with pytest.raises(SchemaError) as err:
            ingest_trace(dirty_path, IngestPolicy(mode="strict"))
        assert re.search(r"line \d+", str(err.value))
        # Strict fails on the first damaged row: data index i is file
        # line i + 2; a duplicate's rejected copy sits one line later.
        expected_line = min(manifest.corrupted_rows) + 2
        if operator.keeps_original:
            expected_line += 1
        assert err.value.line == expected_line

    def test_lenient_keeps_clean_rows_byte_identical(
        self, clean_path, tmp_path, operator
    ):
        dirty_path, manifest = self.corrupt(clean_path, tmp_path, operator)
        baseline = ingest_trace(clean_path, LENIENT)
        assert baseline.report.ok
        result = ingest_trace(dirty_path, LENIENT)

        clean_lines = serialize(baseline.trace, tmp_path / "base.csv")
        kept_lines = serialize(result.trace, tmp_path / "kept.csv")
        if operator.keeps_original:
            # Damage was additive (a duplicated copy): the original rows
            # all survive and the copies are quarantined.
            expected = clean_lines
        else:
            expected = [
                line
                for index, line in enumerate(clean_lines)
                if index not in manifest.corrupted_rows
            ]
        assert kept_lines == expected
        assert result.report.rows_quarantined == manifest.n_corrupted
        assert result.report.error_counts


class TestBenignReordering:
    def test_shuffle_is_invisible_after_ingest(self, clean_path, tmp_path):
        dirty_path = tmp_path / "dirty.csv"
        injector = CorruptionInjector(seed=7, rate=0.0, operators=[RowShuffler()])
        manifest = injector.corrupt_file(clean_path, dirty_path)
        assert manifest.shuffled
        # Strict mode accepts the reordered file...
        result = ingest_trace(dirty_path, IngestPolicy(mode="strict"))
        assert result.report.ok
        # ...and the sorted trace is byte-identical to the original.
        baseline = ingest_trace(clean_path, IngestPolicy(mode="strict"))
        assert serialize(result.trace, tmp_path / "a.csv") == serialize(
            baseline.trace, tmp_path / "b.csv"
        )


class TestRepairExactness:
    def test_swapped_times_restored_byte_identically(self, clean_path, tmp_path):
        dirty_path = tmp_path / "dirty.csv"
        injector = CorruptionInjector(
            seed=3, rate=0.3, operators=[NegativeDurationer()]
        )
        manifest = injector.corrupt_file(clean_path, dirty_path)
        result = ingest_trace(dirty_path, IngestPolicy(mode="repair"))
        assert result.report.rows_quarantined == 0
        assert result.report.rows_repaired == manifest.n_corrupted
        assert result.report.repair_counts == {
            "swapped-start-end": manifest.n_corrupted
        }
        # Every duration here is positive, so the swap repair restores
        # the file exactly.
        repaired = serialize(result.trace, tmp_path / "repaired.csv")
        assert repaired == clean_path.read_text().splitlines()[1:]


class TestChaosRoundtrip:
    @pytest.fixture(scope="class")
    def paper_trace(self):
        """Systems 19 + 20: big enough for every report section."""
        return TraceGenerator(seed=2).generate([19, 20])

    def test_paper_report_survives_five_percent_corruption(self, paper_trace):
        report = chaos_roundtrip(paper_trace, seed=1, rate=0.05)
        assert report.survived
        assert report.corruption.n_corrupted >= 0.04 * report.corruption.n_rows
        assert report.ingest.rows_quarantined == report.corruption.n_corrupted
        paper = report.paper
        assert paper is not None
        # Every section reports a status; none escaped as an exception.
        assert all(section.status in ("ok", "failed") for section in paper.sections)
        assert all(section.ok for section in paper.sections)
        assert "SURVIVED" in report.describe()

    def test_report_isolates_missing_system_sections(self, small_trace):
        # Systems 2 + 13 lack system 20: Figures 3/6 degrade, the rest
        # of the report still completes.
        report = chaos_roundtrip(small_trace, seed=1, rate=0.05, run_report=True)
        assert report.survived
        paper = report.paper
        assert paper is not None
        failed = [section.name for section in paper.sections if not section.ok]
        assert all(section.error for section in paper.sections if not section.ok)
        ok = [section.name for section in paper.sections if section.ok]
        assert ok  # most sections still render
        assert paper.diagnostics()

    def test_blown_budget_means_not_survived(self, tmp_path):
        records = clean_records(30)
        from repro.records.trace import FailureTrace

        trace = FailureTrace(records)
        report = chaos_roundtrip(
            trace, seed=1, rate=0.5, max_error_rate=0.05, run_report=False
        )
        assert not report.survived
        assert "ingest-failed" in report.ingest.error_counts
