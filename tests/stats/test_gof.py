"""Tests for goodness-of-fit measures."""

import math

import numpy as np
import pytest

from repro.stats.distributions import Exponential, Normal, Weibull
from repro.stats.gof import aic, bic, ks_statistic, log_likelihood, qq_points


class TestInformationCriteria:
    def test_aic(self):
        assert aic(100.0, 2) == 204.0

    def test_bic(self):
        assert bic(100.0, 2, 50) == pytest.approx(2 * math.log(50) + 200.0)

    def test_bic_requires_positive_n(self):
        with pytest.raises(ValueError):
            bic(1.0, 1, 0)

    def test_bic_penalizes_harder_than_aic_for_large_n(self):
        assert bic(0.0, 3, 1000) > aic(0.0, 3)


class TestLogLikelihood:
    def test_matches_distribution_nll(self):
        dist = Exponential(scale=10.0)
        data = np.array([1.0, 5.0, 20.0])
        assert log_likelihood(data, dist) == pytest.approx(-dist.nll(data))


class TestKsStatistic:
    def test_bounds(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = generator.exponential(10.0, 100)
        ks = ks_statistic(data, Exponential(scale=10.0))
        assert 0.0 <= ks <= 1.0

    def test_small_for_true_model(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = generator.exponential(10.0, 10_000)
        assert ks_statistic(data, Exponential(scale=10.0)) < 0.02

    def test_large_for_wrong_model(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = generator.exponential(10.0, 10_000)
        assert ks_statistic(data, Exponential(scale=1000.0)) > 0.5

    def test_single_point(self):
        # ECDF jumps 0 -> 1 at the point; KS = max(cdf, 1 - cdf).
        dist = Exponential(scale=1.0)
        expected = max(dist.cdf(0.5), 1.0 - dist.cdf(0.5))
        assert ks_statistic([0.5], dist) == pytest.approx(float(expected))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_statistic([], Exponential(scale=1.0))


class TestQqPoints:
    def test_identity_for_true_model(self):
        generator = np.random.Generator(np.random.PCG64(7))
        dist = Weibull(shape=0.8, scale=100.0)
        data = dist.sample(generator, 50_000)
        model_q, sample_q = qq_points(data, dist, points=20)
        # Central quantiles should match within a few percent.
        middle = slice(3, 17)
        assert np.allclose(model_q[middle], sample_q[middle], rtol=0.1)

    def test_monotone(self):
        generator = np.random.Generator(np.random.PCG64(7))
        data = generator.normal(0.0, 1.0, 1000)
        model_q, sample_q = qq_points(data, Normal(mu=0.0, sigma=1.0), points=30)
        assert np.all(np.diff(model_q) >= -1e-9)
        assert np.all(np.diff(sample_q) >= -1e-9)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            qq_points([1.0], Exponential(scale=1.0))
