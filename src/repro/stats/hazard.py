"""Hazard-rate analysis.

A central question of the paper (Section 5.3): does the time since the
last failure predict the time to the next one?  An increasing hazard
says "long quiet spell => failure imminent", a decreasing hazard says
the reverse.  The paper finds *decreasing* hazard (Weibull shape
0.7-0.8) for time between failures.

This module estimates the empirical hazard from a sample and
classifies a fitted distribution's hazard direction.
"""

from __future__ import annotations

import enum
from typing import Sequence, Tuple, Union

import numpy as np

from repro.stats.distributions import Distribution, Exponential, Gamma, LogNormal, Weibull

__all__ = ["HazardDirection", "hazard_direction", "empirical_hazard"]

ArrayLike = Union[Sequence[float], np.ndarray]


class HazardDirection(enum.Enum):
    """Qualitative direction of a hazard-rate function."""

    DECREASING = "decreasing"
    CONSTANT = "constant"
    INCREASING = "increasing"
    NON_MONOTONE = "non-monotone"

    def __str__(self) -> str:
        return self.value


def hazard_direction(distribution: Distribution, shape_tolerance: float = 0.02) -> HazardDirection:
    """Classify the hazard direction of a fitted distribution.

    * Exponential: constant, by definition.
    * Weibull / gamma: decreasing iff shape < 1, increasing iff > 1
      (constant within ``shape_tolerance`` of 1).
    * Lognormal: non-monotone (rises then falls) — which is why a good
      lognormal fit does not imply a simple hazard story.
    """
    if isinstance(distribution, Exponential):
        return HazardDirection.CONSTANT
    if isinstance(distribution, (Weibull, Gamma)):
        shape = distribution.shape
        if abs(shape - 1.0) <= shape_tolerance:
            return HazardDirection.CONSTANT
        return HazardDirection.DECREASING if shape < 1.0 else HazardDirection.INCREASING
    if isinstance(distribution, LogNormal):
        return HazardDirection.NON_MONOTONE
    raise TypeError(f"no hazard classification for {type(distribution).__name__}")


def empirical_hazard(
    data: ArrayLike, bins: int = 20
) -> Tuple[np.ndarray, np.ndarray]:
    """Estimate the hazard rate from an iid duration sample.

    Log-spaced bins (heavy-tailed failure durations need them) with the
    constant-hazard-within-bin estimator::

        q = deaths / at_risk          (conditional death probability)
        h = -ln(1 - q) / bin width

    Unlike the naive life-table rate ``deaths / (at_risk * width)``,
    this is unbiased for an exponential sample even on wide bins, where
    the at-risk population decays substantially within a bin.  Bins
    where everything at risk dies (q = 1, usually the last) are
    dropped — their hazard is unbounded below by the data.

    Returns
    -------
    (midpoints, hazard):
        Geometric bin midpoints and estimated hazard rates.
    """
    values = np.sort(np.asarray(data, dtype=float))
    if values.size < 4:
        raise ValueError("empirical_hazard requires at least 4 observations")
    if np.any(values <= 0):
        raise ValueError("durations must be strictly positive")
    edges = np.geomspace(values[0], values[-1] * (1.0 + 1e-12), bins + 1)
    midpoints = []
    hazards = []
    for left, right in zip(edges[:-1], edges[1:]):
        at_risk = int(np.sum(values >= left))
        deaths = int(np.sum((values >= left) & (values < right)))
        if at_risk == 0 or deaths >= at_risk:
            continue
        width = right - left
        q = deaths / at_risk
        midpoints.append(math_sqrt_mid(left, right))
        hazards.append(-np.log1p(-q) / width)
    return np.asarray(midpoints), np.asarray(hazards)


def math_sqrt_mid(left: float, right: float) -> float:
    """Geometric midpoint of a (log-spaced) bin."""
    return float(np.sqrt(left * right))
