"""The store manifest: shard index, pushdown statistics, identity.

``manifest.json`` is the store's single source of truth: the schema
digest, the shard list with per-shard row counts, per-column min/max
statistics and content checksums, the record-id mode, and the
serialized system inventory.  It is written *last*, atomically — a
directory without a readable manifest is not a store, so a crashed
write can never present a partial store as complete.

The manifest is deliberately free of wall-clock timestamps and
absolute paths: the same trace written twice produces byte-identical
manifests, which is what lets the chaos campaign and CI ``cmp`` them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.records.node import NodeCategory
from repro.records.record import Workload
from repro.records.system import (
    HardwareArchitecture,
    HardwareType,
    SystemConfig,
)
from repro.resilience.atomic import (
    atomic_write_json,
    atomic_write_text,
    fs_fault_hook,
)
from repro.store.schema import STAT_COLUMNS, ColumnBatch

__all__ = [
    "MANIFEST_NAME",
    "PREV_MANIFEST_NAME",
    "QUARANTINE_DIR",
    "STAGING_DIR",
    "LEDGER_NAME",
    "ShardInfo",
    "Predicate",
    "Manifest",
    "StoreError",
    "systems_to_payload",
    "systems_from_payload",
    "load_ledger",
    "write_ledger",
    "publish_manifest",
]

#: File name of the manifest inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Rollback generation kept by :func:`publish_manifest` — the previous
#: ``manifest.json``, so a bad publish can be undone by hand.
PREV_MANIFEST_NAME = "manifest.prev.json"

#: Subdirectory holding the per-shard column files.
SHARDS_DIR = "shards"

#: Subdirectory where the scrub engine moves damaged shard files.
QUARANTINE_DIR = "quarantine"

#: Subdirectory where federation (append/merge) stages new shard files
#: before the atomic manifest publish makes them live.
STAGING_DIR = "staging"

#: JSONL ledger inside ``quarantine/`` recording what was quarantined
#: and why (one JSON object per line, sorted by key, written atomically).
LEDGER_NAME = "ledger.jsonl"


class StoreError(Exception):
    """A store directory is missing, inconsistent, or unreadable."""


@dataclass(frozen=True)
class ShardInfo:
    """One shard's entry in the manifest.

    ``stats`` maps each :data:`~repro.store.schema.STAT_COLUMNS` name
    to its inclusive ``(min, max)`` over the shard's rows; the store's
    shards each hold a single system, so ``system_id`` min == max.
    ``checksums`` maps every column name to the sha256 of its ``.npy``
    file bytes.
    """

    name: str
    rows: int
    stats: Mapping[str, Tuple[float, float]]
    checksums: Mapping[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "rows": self.rows,
            "stats": {
                column: [low, high]
                for column, (low, high) in sorted(self.stats.items())
            },
            "checksums": dict(sorted(self.checksums.items())),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ShardInfo":
        return cls(
            name=str(payload["name"]),
            rows=int(payload["rows"]),
            stats={
                column: (bounds[0], bounds[1])
                for column, bounds in payload["stats"].items()
            },
            checksums=dict(payload.get("checksums", {})),
        )


@dataclass(frozen=True)
class Predicate:
    """A pushdown filter over ``start_time`` and ``system_id``.

    Semantics match :meth:`repro.records.trace.FailureTrace.between`
    and ``filter_systems``: the time window is half-open —
    ``t_min <= start_time < t_max`` — and ``systems`` is an inclusive
    membership set.  ``None`` fields are unconstrained.

    :meth:`admits_shard` is the *pruning* side: it may only return
    ``False`` when no row of the shard can satisfy :meth:`mask` (the
    property-test invariant).  Boundary care: a shard whose
    ``max(start_time)`` equals ``t_min`` still has matching rows
    (inclusive lower bound), while one whose ``min(start_time)``
    equals ``t_max`` has none (exclusive upper bound).
    """

    t_min: Optional[float] = None
    t_max: Optional[float] = None
    systems: Optional[frozenset] = None

    @classmethod
    def build(
        cls,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
        systems=None,
    ) -> "Predicate":
        """Normalize raw filter values into a predicate."""
        return cls(
            t_min=None if t_min is None else float(t_min),
            t_max=None if t_max is None else float(t_max),
            systems=(
                None if systems is None
                else frozenset(int(s) for s in systems)
            ),
        )

    def is_null(self) -> bool:
        """True when the predicate constrains nothing."""
        return self.t_min is None and self.t_max is None and (
            self.systems is None
        )

    def admits_shard(self, shard: ShardInfo) -> bool:
        """Whether the shard may contain a matching row (never a false
        negative: pruning only on disjoint bounds)."""
        start_lo, start_hi = shard.stats["start_time"]
        if self.t_min is not None and start_hi < self.t_min:
            return False
        if self.t_max is not None and start_lo >= self.t_max:
            return False
        if self.systems is not None:
            sys_lo, sys_hi = shard.stats["system_id"]
            if not any(sys_lo <= s <= sys_hi for s in self.systems):
                return False
        return True

    def mask(self, batch: ColumnBatch) -> np.ndarray:
        """Boolean row mask of the predicate over a batch."""
        keep = np.ones(len(batch), dtype=bool)
        if self.t_min is not None:
            keep &= batch["start_time"] >= self.t_min
        if self.t_max is not None:
            keep &= batch["start_time"] < self.t_max
        if self.systems is not None:
            keep &= np.isin(
                batch["system_id"],
                np.fromiter(self.systems, dtype=np.int64, count=len(self.systems)),
            )
        return keep

    def describe(self) -> str:
        parts = []
        if self.t_min is not None or self.t_max is not None:
            lo = "-inf" if self.t_min is None else repr(self.t_min)
            hi = "+inf" if self.t_max is None else repr(self.t_max)
            parts.append(f"start_time in [{lo}, {hi})")
        if self.systems is not None:
            parts.append(f"system_id in {sorted(self.systems)}")
        return " and ".join(parts) if parts else "(no filter)"


# ----------------------------------------------------------------------
# Inventory serialization
# ----------------------------------------------------------------------


def systems_to_payload(
    systems: Mapping[int, SystemConfig]
) -> Dict[str, dict]:
    """Serialize an inventory to a JSON-able payload (sorted keys)."""
    payload: Dict[str, dict] = {}
    for system_id in sorted(systems):
        config = systems[system_id]
        payload[str(system_id)] = {
            "hardware_type": config.hardware_type.value,
            "architecture": config.architecture.value,
            "categories": [
                {
                    "node_count": category.node_count,
                    "procs_per_node": category.procs_per_node,
                    # Canonical: integral values serialize as ints, so a
                    # load -> save round trip is byte-stable regardless
                    # of whether the inventory carried 16 or 16.0.
                    "memory_gb": (
                        int(category.memory_gb)
                        if float(category.memory_gb).is_integer()
                        else float(category.memory_gb)
                    ),
                    "nics": category.nics,
                    "production_start": category.production_start,
                    "production_end": category.production_end,
                    "workload": category.workload.value,
                }
                for category in config.categories
            ],
        }
    return payload


def systems_from_payload(payload: Mapping[str, Mapping]) -> Dict[int, SystemConfig]:
    """Inverse of :func:`systems_to_payload`."""
    systems: Dict[int, SystemConfig] = {}
    for key, entry in payload.items():
        system_id = int(key)
        systems[system_id] = SystemConfig(
            system_id=system_id,
            hardware_type=HardwareType(entry["hardware_type"]),
            architecture=HardwareArchitecture(entry["architecture"]),
            categories=tuple(
                NodeCategory(
                    node_count=int(category["node_count"]),
                    procs_per_node=int(category["procs_per_node"]),
                    memory_gb=float(category["memory_gb"]),
                    nics=int(category["nics"]),
                    production_start=str(category["production_start"]),
                    production_end=str(category["production_end"]),
                    workload=Workload(category["workload"]),
                )
                for category in entry["categories"]
            ),
        )
    return systems


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Manifest:
    """The parsed ``manifest.json`` of one store directory."""

    schema_sha256: str
    format_version: int
    columns: Tuple[str, ...]
    record_ids: str                      # "implicit" or "explicit"
    row_count: int
    shards: Tuple[ShardInfo, ...]
    data_start: float
    data_end: float
    systems: Dict[int, SystemConfig] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "kind": "repro-columnar-store",
            "format_version": self.format_version,
            "schema_sha256": self.schema_sha256,
            "columns": list(self.columns),
            "record_ids": self.record_ids,
            "row_count": self.row_count,
            "data_start": self.data_start,
            "data_end": self.data_end,
            "shards": [shard.to_dict() for shard in self.shards],
            "systems": systems_to_payload(self.systems),
            "meta": dict(sorted(self.meta.items())),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Manifest":
        if payload.get("kind") != "repro-columnar-store":
            raise StoreError(
                f"not a store manifest (kind={payload.get('kind')!r})"
            )
        return cls(
            schema_sha256=str(payload["schema_sha256"]),
            format_version=int(payload["format_version"]),
            columns=tuple(payload["columns"]),
            record_ids=str(payload["record_ids"]),
            row_count=int(payload["row_count"]),
            shards=tuple(
                ShardInfo.from_dict(entry) for entry in payload["shards"]
            ),
            data_start=float(payload["data_start"]),
            data_end=float(payload["data_end"]),
            systems=systems_from_payload(payload.get("systems", {})),
            meta=dict(payload.get("meta", {})),
        )

    def save(self, path, site: str = "store.manifest") -> None:
        """Atomically write the manifest (fault site ``site``)."""
        path = Path(path)
        fs_fault_hook(site, path)
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path) -> "Manifest":
        path = Path(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise StoreError(
                f"{path.parent} is not a columnar store (no {MANIFEST_NAME})"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"{path}: corrupt manifest: {exc}") from exc
        return cls.from_dict(payload)

    def shard_stats(self, shard: ShardInfo, column: str) -> Tuple[float, float]:
        """Convenience accessor for a shard's (min, max) of ``column``."""
        return shard.stats[column]


# ----------------------------------------------------------------------
# Quarantine ledger and manifest publishing
# ----------------------------------------------------------------------


def load_ledger(root) -> Dict[str, dict]:
    """Read the quarantine ledger, keyed by shard (or orphan file) name.

    Tolerates a torn trailing line — the ledger is rewritten whole on
    every scrub, so a partial last line only loses that one entry, and
    the files it described are still sitting in ``quarantine/`` where
    the next scrub re-discovers them.  Returns ``{}`` when no ledger
    exists.
    """
    path = Path(root) / QUARANTINE_DIR / LEDGER_NAME
    entries: Dict[str, dict] = {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue                     # torn tail
                if isinstance(entry, dict) and "shard" in entry:
                    entries[str(entry["shard"])] = entry
    except FileNotFoundError:
        pass
    return entries


def write_ledger(root, entries: Mapping[str, dict]) -> None:
    """Atomically rewrite the quarantine ledger (site ``store.scrub.ledger``).

    An empty mapping removes the ledger — and the ``quarantine/``
    directory itself when nothing else is left in it — so a fully
    repaired store's tree is indistinguishable from one that was never
    damaged.
    """
    root = Path(root)
    quarantine = root / QUARANTINE_DIR
    path = quarantine / LEDGER_NAME
    if not entries:
        try:
            path.unlink()
        except FileNotFoundError:
            pass
        try:
            quarantine.rmdir()
        except OSError:
            pass                                  # non-empty or absent
        return
    quarantine.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(entries[key], sort_keys=True)
        for key in sorted(entries)
    ]
    text = "\n".join(lines) + "\n"
    fs_fault_hook("store.scrub.ledger", path)
    atomic_write_text(path, text)


def publish_manifest(root, manifest: Manifest,
                     site: str = "store.merge.manifest") -> None:
    """Replace the store's manifest, keeping a rollback generation.

    The current ``manifest.json`` (if any) is first copied to
    ``manifest.prev.json``, then the new manifest atomically replaces
    it.  A crash at any point leaves either the old manifest or the
    new one in place — never a missing or partial ``manifest.json`` —
    so readers always see a complete store generation.
    """
    root = Path(root)
    current = root / MANIFEST_NAME
    try:
        previous_text = current.read_text(encoding="utf-8")
    except FileNotFoundError:
        previous_text = None
    if previous_text is not None:
        atomic_write_text(root / PREV_MANIFEST_NAME, previous_text)
    manifest.save(current, site=site)


def shard_stats_from_batch(batch: ColumnBatch) -> Dict[str, Tuple[float, float]]:
    """Compute a shard's manifest statistics from its batch.

    Values are converted to Python scalars — ``json`` serializes floats
    with ``repr``, so the stored bounds round-trip bit-exactly.
    """
    stats: Dict[str, Tuple[float, float]] = {}
    for column in STAT_COLUMNS:
        array = batch[column]
        low, high = array.min(), array.max()
        if array.dtype.kind == "f":
            stats[column] = (float(low), float(high))
        else:
            stats[column] = (int(low), int(high))
    return stats
