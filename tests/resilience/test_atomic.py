"""Atomic artifact writes: all-or-nothing, even under failure."""

from __future__ import annotations

import gzip
import json
import os

import pytest

from repro.resilience import (
    atomic_open_text,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


def _no_tmp_litter(directory):
    return [name for name in os.listdir(directory) if ".tmp" in name] == []


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"
        assert _no_tmp_litter(tmp_path)

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("previous complete artifact")
        with pytest.raises(RuntimeError, match="mid-write"):
            with atomic_open_text(target) as handle:
                handle.write("partial garbage")
                raise RuntimeError("mid-write crash")
        assert target.read_text() == "previous complete artifact"
        assert _no_tmp_litter(tmp_path)

    def test_failure_with_no_preexisting_file_creates_nothing(self, tmp_path):
        target = tmp_path / "never.txt"
        with pytest.raises(RuntimeError):
            with atomic_open_text(target) as handle:
                handle.write("x")
                raise RuntimeError("boom")
        assert not target.exists()
        assert _no_tmp_litter(tmp_path)

    def test_gzip_suffix_compresses(self, tmp_path):
        target = tmp_path / "out.txt.gz"
        atomic_write_text(target, "compressed body\n")
        with gzip.open(target, "rt") as handle:
            assert handle.read() == "compressed body\n"

    def test_write_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"
        assert _no_tmp_litter(tmp_path)

    def test_write_bytes_survives_partial_os_write(self, tmp_path, monkeypatch):
        # os.write may consume fewer bytes than offered; the helper must
        # loop, not fsync-and-publish a truncated temp file.
        real_write = os.write
        monkeypatch.setattr(
            os, "write", lambda fd, data: real_write(fd, bytes(data)[:3])
        )
        target = tmp_path / "blob.bin"
        payload = bytes(range(64))
        atomic_write_bytes(target, payload)
        assert target.read_bytes() == payload

    def test_write_json_stable(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write_json(target, {"b": 2, "a": 1})
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}
        # sort_keys: stable, diff-friendly output.
        assert text.index('"a"') < text.index('"b"')
