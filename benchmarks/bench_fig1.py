"""Figure 1: breakdown of failures (a) and downtime (b) by root cause.

Paper shape claims asserted:

* hardware is the single largest category in every group, 30-60%+;
* software is second, 5-24%;
* unknown is 20-30% except type E (< 5%);
* type D has hardware ~ software;
* unknown downtime share is < 5% except for types D and G.
"""

from repro.analysis.rootcause import (
    breakdown_by_hardware_type,
    downtime_breakdown_by_hardware_type,
)
from repro.records.record import RootCause
from repro.report import render_figure1


def test_figure1(benchmark, trace):
    counts = benchmark(breakdown_by_hardware_type, trace)
    downtime = downtime_breakdown_by_hardware_type(trace)
    print("\n" + render_figure1(trace))

    for label, breakdown in counts.items():
        hardware = breakdown.percent(RootCause.HARDWARE)
        software = breakdown.percent(RootCause.SOFTWARE)
        unknown = breakdown.percent(RootCause.UNKNOWN)
        # Hardware the single largest component, 30% to > 60%.
        assert hardware == max(breakdown.percentages.values()), label
        assert 25 <= hardware <= 70, label
        # Software the second largest contributor, 5-30%.
        assert 5 <= software <= 35, label
        # Hardware always exceeds the undetermined fraction.
        assert hardware > unknown, label

    # Type E: fewer than ~5% unknown root causes.
    assert counts["E"].percent(RootCause.UNKNOWN) < 6
    # Other multi-system types: 15-35% unknown.
    for label in ("D", "F", "G"):
        assert 15 <= counts[label].percent(RootCause.UNKNOWN) <= 35, label
    # Type D: hardware and software almost equally frequent.
    d = counts["D"]
    assert abs(d.percent(RootCause.HARDWARE) - d.percent(RootCause.SOFTWARE)) < 8

    # Figure 1(b): unknown downtime < 5% except types D and G.
    for label in ("E", "F", "H"):
        assert downtime[label].percent(RootCause.UNKNOWN) < 5, label
    for label in ("D", "G"):
        assert downtime[label].percent(RootCause.UNKNOWN) > 5, label
