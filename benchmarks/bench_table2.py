"""Table 2: statistical properties of time to repair by root cause.

Paper reference values (minutes):

    cause        mean  median  C^2
    unknown       398      32  234
    human         163      44    6
    environment   572     269    2
    network       247      70    8
    software      369      33  293
    hardware      342      64  151
    all           355      54  187

We assert the *shape*: ordering of medians, the mean >> median skew,
extreme C^2 everywhere except environment/human, and the aggregate
mean within the hours range the paper reports.
"""

from repro.analysis.repair import repair_statistics_by_cause
from repro.report import render_table2


def test_table2(benchmark, trace):
    rows = benchmark(repair_statistics_by_cause, trace)
    print("\n" + render_table2(trace))
    by_label = {row.label: row for row in rows}

    # Environment repairs are the longest by median (paper: 269 min)...
    per_cause = [row for row in rows if row.cause is not None]
    assert by_label["environment"].median == max(row.median for row in per_cause)
    # ...and the least variable (paper: C^2 = 2 vs up to ~300).
    assert by_label["environment"].squared_cv == min(
        row.squared_cv for row in per_cause
    )
    # Human error is the quickest to repair by mean (paper: 163 min ~ 3 h).
    assert by_label["human"].mean == min(row.mean for row in per_cause)
    # Software: median ~10x below the mean (paper: 33 vs 369).
    assert by_label["software"].mean / by_label["software"].median > 5
    # Hardware/software dominate counts and have extreme variability.
    assert by_label["hardware"].squared_cv > 20
    assert by_label["software"].squared_cv > 20
    # Aggregate mean near six hours (paper: 355 min).
    assert 150 < by_label["All"].mean < 900
    assert 30 < by_label["All"].median < 120
