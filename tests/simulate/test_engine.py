"""Tests for the DES kernel (repro.simulate.engine)."""

import pytest

from repro.simulate.engine import EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda s: None)
        queue.push(2.0, lambda s: None)
        queue.push(8.0, lambda s: None)
        times = [queue.pop().time for _ in range(3)]
        assert times == [2.0, 5.0, 8.0]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda s: None)
        second = queue.push(1.0, lambda s: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda s: None)
        queue.push(2.0, lambda s: None)
        event.cancel()
        assert queue.pop().time == 2.0

    def test_len_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda s: None)
        queue.push(2.0, lambda s: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        event = queue.push(3.0, lambda s: None)
        assert queue.peek_time() == 3.0
        event.cancel()
        assert queue.peek_time() is None

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None


class TestSimulator:
    def test_runs_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda s: fired.append(("b", s.now)))
        sim.schedule(2.0, lambda s: fired.append(("a", s.now)))
        sim.run()
        assert fired == [("a", 2.0), ("b", 5.0)]

    def test_clock_monotone(self):
        sim = Simulator()
        observed = []
        for t in (4.0, 1.0, 9.0, 9.0):
            sim.schedule(t, lambda s: observed.append(s.now))
        sim.run()
        assert observed == sorted(observed)

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule(5.0, lambda s: None)

    def test_schedule_nonfinite_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("inf"), lambda s: None)

    def test_schedule_after_negative_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_after(-1.0, lambda s: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(s):
            fired.append(s.now)
            if s.now < 3.0:
                s.schedule_after(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda s: fired.append(1))
        sim.schedule(10.0, lambda s: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_step(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda s: None)
        sim.run()
        assert sim.events_fired == 5

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda s: fired.append(1))
        event.cancel()
        sim.run()
        assert fired == []

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def reenter(s):
            with pytest.raises(SimulationError):
                s.run()

        sim.schedule(1.0, reenter)
        sim.run()
