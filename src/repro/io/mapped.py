"""Import arbitrary failure logs via a column mapping.

Real failure logs rarely match our schema: the LANL/CFDR release, Blue
Gene RAS logs and site-specific remedy exports all use different column
names, date formats and cause vocabularies.  :func:`read_mapped_csv`
converts any row-per-failure CSV to a :class:`FailureTrace` given a
:class:`ColumnMapping` describing where each field lives and how to
parse it.

Example
-------
>>> mapping = ColumnMapping(
...     system_id="System",
...     node_id="nodenum",
...     start_time="Prob Started",
...     end_time="Prob Fixed",
...     time_format="%m/%d/%Y %H:%M",
...     cause_column="Facilities",
...     cause_map={"Hardware": RootCause.HARDWARE},
... )                                              # doctest: +SKIP
>>> trace = read_mapped_csv("lanl_raw.csv", mapping)   # doctest: +SKIP
"""

from __future__ import annotations

import csv
import datetime as _dt
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.io.common import PathLike, open_text
from repro.io.policy import IngestPolicy, IngestReport, RowPipeline
from repro.io.schema import SchemaError
from repro.records.inventory import DATA_END, DATA_START, LANL_SYSTEMS
from repro.records.record import RootCause, Workload
from repro.records.system import SystemConfig
from repro.records.timeutils import from_datetime
from repro.records.trace import FailureTrace

__all__ = ["ColumnMapping", "read_mapped_csv"]


@dataclass(frozen=True)
class ColumnMapping:
    """Describes how to read one site's failure-log CSV.

    Attributes
    ----------
    system_id / node_id / start_time / end_time:
        Source column names for the required fields.
    time_format:
        ``datetime.strptime`` format for the time columns; None means
        the columns already hold float seconds since the toolkit epoch.
    duration_column / duration_unit:
        Alternative to ``end_time``: a downtime column plus its unit
        ("seconds", "minutes" or "hours").  Used when ``end_time`` is
        None.
    cause_column / cause_map:
        Optional root-cause column and a source-value -> RootCause
        mapping; unmapped values become UNKNOWN.
    workload_column / workload_map:
        Same for workloads; unmapped values become COMPUTE.
    system_id_map:
        Optional mapping of source system labels to integer IDs (for
        logs keyed by hostname or machine name).
    """

    system_id: str
    node_id: str
    start_time: str
    end_time: Optional[str] = None
    time_format: Optional[str] = None
    duration_column: Optional[str] = None
    duration_unit: str = "minutes"
    cause_column: Optional[str] = None
    cause_map: Dict[str, RootCause] = field(default_factory=dict)
    workload_column: Optional[str] = None
    workload_map: Dict[str, Workload] = field(default_factory=dict)
    system_id_map: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_time is None and self.duration_column is None:
            raise ValueError("need either end_time or duration_column")
        if self.duration_unit not in ("seconds", "minutes", "hours"):
            raise ValueError(f"unknown duration unit {self.duration_unit!r}")


_DURATION_SECONDS = {"seconds": 1.0, "minutes": 60.0, "hours": 3600.0}


def _parse_time(text: str, time_format: Optional[str], line: int) -> float:
    text = text.strip()
    try:
        if time_format is None:
            return float(text)
        return from_datetime(_dt.datetime.strptime(text, time_format))
    except (ValueError, TypeError) as exc:
        raise SchemaError(f"line {line}: bad timestamp {text!r}: {exc}") from exc


def _parse_fields(
    row: Mapping[str, str], mapping: ColumnMapping, line: int
) -> Dict[str, Any]:
    """Parse one foreign row into FailureRecord field values."""
    system_text = (row[mapping.system_id] or "").strip()
    if system_text in mapping.system_id_map:
        system_id = mapping.system_id_map[system_text]
    else:
        try:
            system_id = int(system_text)
        except ValueError as exc:
            raise SchemaError(
                f"line {line}: system {system_text!r} is neither an "
                "integer nor in system_id_map",
                error_class="unmapped-system",
                line=line,
            ) from exc
    try:
        node_id = int(row[mapping.node_id])
    except (ValueError, TypeError) as exc:
        raise SchemaError(
            f"line {line}: bad node id: {exc}",
            error_class="malformed-value",
            line=line,
        ) from exc
    start = _parse_time(row[mapping.start_time], mapping.time_format, line)
    if mapping.end_time is not None:
        end = _parse_time(row[mapping.end_time], mapping.time_format, line)
    else:
        try:
            duration = float(row[mapping.duration_column])
        except (ValueError, TypeError) as exc:
            raise SchemaError(
                f"line {line}: bad duration: {exc}",
                error_class="malformed-value",
                line=line,
            ) from exc
        end = start + duration * _DURATION_SECONDS[mapping.duration_unit]
    cause = RootCause.UNKNOWN
    if mapping.cause_column is not None:
        cause = mapping.cause_map.get(
            (row.get(mapping.cause_column) or "").strip(), RootCause.UNKNOWN
        )
    workload = Workload.COMPUTE
    if mapping.workload_column is not None:
        workload = mapping.workload_map.get(
            (row.get(mapping.workload_column) or "").strip(), Workload.COMPUTE
        )
    return dict(
        start_time=start,
        end_time=end,
        system_id=system_id,
        node_id=node_id,
        root_cause=cause,
        workload=workload,
    )


def read_mapped_csv(
    path: PathLike,
    mapping: ColumnMapping,
    systems: Optional[Mapping[int, SystemConfig]] = None,
    data_start: Optional[float] = None,
    data_end: Optional[float] = None,
    policy: Optional[IngestPolicy] = None,
    report: Optional[IngestReport] = None,
) -> FailureTrace:
    """Load a foreign failure log as a :class:`FailureTrace`.

    ``policy`` and ``report`` behave exactly as in
    :func:`~repro.io.csv_format.read_lanl_csv`.

    Raises
    ------
    SchemaError
        On a missing column or an unparseable row (with line number).
    """
    path = Path(path)
    pipeline = RowPipeline(
        policy,
        source=str(path),
        systems=dict(systems) if systems is not None else LANL_SYSTEMS,
        data_start=data_start if data_start is not None else DATA_START,
        data_end=data_end if data_end is not None else DATA_END,
        report=report,
    )
    records = []
    try:
        with open_text(path, "r") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise SchemaError(
                    f"{path}: empty file (no header)", error_class="empty-file"
                )
            required = {mapping.system_id, mapping.node_id, mapping.start_time}
            if mapping.end_time:
                required.add(mapping.end_time)
            if mapping.duration_column:
                required.add(mapping.duration_column)
            missing = required - set(reader.fieldnames)
            if missing:
                raise SchemaError(
                    f"{path}: header missing columns {sorted(missing)}",
                    error_class="bad-header",
                )
            for line, row in enumerate(reader, start=2):
                record = pipeline.submit(
                    line,
                    row,
                    lambda row=row, line=line: _parse_fields(row, mapping, line),
                )
                if record is not None:
                    records.append(record)
    finally:
        pipeline.close()
    pipeline.finish()
    kwargs = {}
    if systems is not None:
        kwargs["systems"] = systems
    if data_start is not None:
        kwargs["data_start"] = data_start
    if data_end is not None:
        kwargs["data_end"] = data_end
    return FailureTrace(records, **kwargs)
