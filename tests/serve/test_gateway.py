"""StoreGateway: the degradation ladder, breaker wiring, generations."""

from __future__ import annotations

import shutil

import pytest

from repro.resilience import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.serve import Query, StoreGateway, StoreUnavailable
from repro.store import ColumnarStore, store_from_trace, summarize_store
from repro.store.manifest import MANIFEST_NAME

DAMAGED_COLUMN = "00000-node_id.npy"


@pytest.fixture()
def store_dir(tmp_path, small_trace):
    root = tmp_path / "store"
    store_from_trace(small_trace, root, shard_rows=100)
    return root


def make_gateway(root, threshold=3, cooldown=60.0):
    clock = {"now": 0.0}
    gateway = StoreGateway(
        root=root,
        breaker=CircuitBreaker(
            stages=("primary",),
            failure_threshold=threshold,
            cooldown_seconds=cooldown,
            clock=lambda: clock["now"],
        ),
    )
    return gateway, clock


class TestPrimaryPath:
    def test_result_matches_direct_summary(self, store_dir):
        gateway, _ = make_gateway(store_dir)
        result = gateway.query(Query.build())
        expected = summarize_store(ColumnarStore(store_dir)).to_dict()
        assert result.data == expected
        assert result.status() == "ok"
        assert not result.degraded and not result.stale and not result.partial
        assert result.coverage == 1.0
        assert result.cache == "miss"
        assert result.breaker == "closed"

    def test_second_query_hits_cache(self, store_dir):
        gateway, _ = make_gateway(store_dir)
        first = gateway.query(Query.build())
        second = gateway.query(Query.build())
        assert second.cache == "hit"
        assert second.data == first.data
        assert gateway.primary_reads == 1

    def test_filtered_query(self, store_dir, small_trace):
        gateway, _ = make_gateway(store_dir)
        query = Query.build(kind="analyze", systems=[13])
        result = gateway.query(query)
        expected = summarize_store(
            ColumnarStore(store_dir), predicate=query.predicate()
        ).to_dict()
        assert result.data == expected

    def test_partial_result_not_cached(self, store_dir):
        gateway, _ = make_gateway(store_dir)
        ticks = {"n": 0}

        def clock():
            ticks["n"] += 1
            return float(ticks["n"])

        partial = gateway.query(
            Query.build(), deadline=Deadline(2.0, clock=clock)
        )
        assert partial.partial
        assert partial.status() == "partial"
        # The truncated answer must not poison the cache.
        complete = gateway.query(Query.build())
        assert complete.cache == "miss"
        assert not complete.partial


class TestDegradedPath:
    def test_damage_serves_degraded_with_coverage(self, store_dir):
        (store_dir / "shards" / DAMAGED_COLUMN).unlink()
        gateway, _ = make_gateway(store_dir)
        result = gateway.query(Query.build())
        assert result.status() == "degraded"
        assert result.degraded and not result.stale
        assert isinstance(result.coverage, dict)
        assert any(
            fraction < 1.0 for fraction in result.coverage.values()
        )
        assert gateway.degraded_reads == 1
        assert gateway.failures == 1

    def test_breaker_opens_after_repeated_failures(self, store_dir):
        (store_dir / "shards" / DAMAGED_COLUMN).unlink()
        gateway, _ = make_gateway(store_dir, threshold=2)
        gateway.query(Query.build())
        gateway.query(Query.build())
        assert gateway.breaker_state() == "open"
        # Open breaker: the primary rung is skipped entirely.
        before = gateway.failures
        result = gateway.query(Query.build())
        assert result.degraded
        assert result.breaker == "open"
        assert gateway.failures == before

    def test_breaker_recovers_after_repair(self, store_dir, tmp_path):
        backup = tmp_path / "backup.npy"
        shutil.copyfile(store_dir / "shards" / DAMAGED_COLUMN, backup)
        (store_dir / "shards" / DAMAGED_COLUMN).unlink()
        gateway, clock = make_gateway(store_dir, threshold=1, cooldown=30.0)
        gateway.query(Query.build())
        assert gateway.breaker_state() == "open"
        # Repair the store; once the cooldown admits a half-open probe
        # the primary read succeeds and the breaker closes.
        shutil.copyfile(backup, store_dir / "shards" / DAMAGED_COLUMN)
        clock["now"] = 31.0
        result = gateway.query(Query.build())
        assert result.status() == "ok"
        assert not result.degraded
        assert gateway.breaker_state() == "closed"


class TestStalePath:
    def test_stale_answer_when_store_gone(self, store_dir):
        gateway, _ = make_gateway(store_dir)
        warm = gateway.query(Query.build())
        (store_dir / MANIFEST_NAME).unlink()
        result = gateway.query(Query.build())
        assert result.status() == "stale"
        assert result.stale
        assert result.cache == "stale"
        assert result.coverage is None
        assert result.data == warm.data
        assert gateway.stale_reads == 1

    def test_unavailable_when_cold_and_gone(self, store_dir):
        gateway, _ = make_gateway(store_dir)
        (store_dir / MANIFEST_NAME).unlink()
        with pytest.raises(StoreUnavailable, match="no cached result"):
            gateway.query(Query.build())


class TestGeneration:
    def test_quarantine_changes_generation(self, store_dir, small_trace):
        from repro.store import scrub_store

        gateway, _ = make_gateway(store_dir)
        before = gateway.generation()
        (store_dir / "shards" / DAMAGED_COLUMN).unlink()
        scrub_store(store_dir)
        assert gateway.generation() != before

    def test_cache_missed_after_generation_change(self, store_dir):
        from repro.store import scrub_store

        gateway, _ = make_gateway(store_dir)
        gateway.query(Query.build())
        (store_dir / "shards" / DAMAGED_COLUMN).unlink()
        scrub_store(store_dir)
        result = gateway.query(Query.build())
        # Not a cache hit: the store changed, so the answer was
        # recomputed (degraded now that a shard is quarantined).
        assert result.cache != "hit"
        assert result.degraded


class TestManifestViews:
    def test_systems_listing(self, store_dir, small_trace):
        gateway, _ = make_gateway(store_dir)
        listing = gateway.systems()
        systems = {entry["system"] for entry in listing["systems"]}
        assert systems == {record.system_id for record in small_trace.records}
        assert listing["row_count"] == len(small_trace.records)
        assert sum(e["rows"] for e in listing["systems"]) == listing["row_count"]

    def test_readiness_reports_healing(self, store_dir):
        gateway, _ = make_gateway(store_dir)
        healing = gateway.readiness()
        assert healing["quarantined_shards"] == 0
        assert healing["affected_systems"] == []
