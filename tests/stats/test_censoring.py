"""Tests for right-censored MLE fitting."""

import numpy as np
import pytest

from repro.stats.censoring import (
    censored_nll,
    fit_all_censored,
    fit_exponential_censored,
    fit_gamma_censored,
    fit_lognormal_censored,
    fit_weibull_censored,
)
from repro.stats.distributions import Exponential, Gamma, LogNormal, Weibull
from repro.stats.fitting import (
    FitError,
    fit_exponential,
    fit_gamma,
    fit_lognormal,
    fit_weibull,
)


def censor_at(sample, cutoff):
    """Type-I censoring: observations above cutoff become censored."""
    sample = np.asarray(sample)
    return sample[sample <= cutoff], np.full(int(np.sum(sample > cutoff)), cutoff)


def draw(dist, n=20_000, seed=0):
    generator = np.random.Generator(np.random.PCG64(seed))
    return dist.sample(generator, n)


class TestAgreesWithUncensored:
    """With no censored observations the fits match the plain MLEs."""

    def test_exponential(self):
        data = draw(Exponential(scale=100.0), n=5000)
        censored = fit_exponential_censored(data)
        plain = fit_exponential(data)
        assert censored.distribution.scale == pytest.approx(plain.distribution.scale)

    def test_weibull(self):
        data = draw(Weibull(shape=0.7, scale=50.0), n=5000)
        censored = fit_weibull_censored(data)
        plain = fit_weibull(data)
        assert censored.distribution.shape == pytest.approx(
            plain.distribution.shape, rel=1e-6
        )
        assert censored.distribution.scale == pytest.approx(
            plain.distribution.scale, rel=1e-6
        )

    def test_gamma(self):
        data = draw(Gamma(shape=2.0, scale=10.0), n=3000)
        censored = fit_gamma_censored(data)
        plain = fit_gamma(data)
        assert censored.distribution.shape == pytest.approx(
            plain.distribution.shape, rel=1e-3
        )

    def test_lognormal(self):
        data = draw(LogNormal(mu=2.0, sigma=1.0), n=3000)
        censored = fit_lognormal_censored(data)
        plain = fit_lognormal(data)
        assert censored.distribution.mu == pytest.approx(plain.distribution.mu, abs=1e-3)
        assert censored.distribution.sigma == pytest.approx(
            plain.distribution.sigma, rel=1e-3
        )


class TestParameterRecoveryUnderCensoring:
    """Heavy type-I censoring: the censored fit recovers the truth,
    while the naive fit on uncensored values alone is badly biased."""

    def test_exponential(self):
        true = Exponential(scale=100.0)
        observed, censored = censor_at(draw(true, seed=1), cutoff=80.0)
        fit = fit_exponential_censored(observed, censored)
        naive = fit_exponential(observed)
        assert fit.distribution.scale == pytest.approx(100.0, rel=0.05)
        assert naive.distribution.scale < 0.6 * fit.distribution.scale

    def test_weibull(self):
        true = Weibull(shape=0.7, scale=100.0)
        observed, censored = censor_at(draw(true, seed=2), cutoff=150.0)
        fit = fit_weibull_censored(observed, censored)
        assert fit.distribution.shape == pytest.approx(0.7, rel=0.05)
        assert fit.distribution.scale == pytest.approx(100.0, rel=0.10)
        naive = fit_weibull(observed)
        assert naive.distribution.scale < 0.8 * fit.distribution.scale

    def test_gamma(self):
        true = Gamma(shape=2.0, scale=50.0)
        observed, censored = censor_at(draw(true, seed=3), cutoff=200.0)
        fit = fit_gamma_censored(observed, censored)
        assert fit.distribution.shape == pytest.approx(2.0, rel=0.10)
        assert fit.distribution.scale == pytest.approx(50.0, rel=0.15)

    def test_lognormal(self):
        true = LogNormal(mu=3.0, sigma=1.2)
        observed, censored = censor_at(draw(true, seed=4), cutoff=60.0)
        fit = fit_lognormal_censored(observed, censored)
        assert fit.distribution.mu == pytest.approx(3.0, abs=0.08)
        assert fit.distribution.sigma == pytest.approx(1.2, rel=0.08)


class TestRankingAndNll:
    def test_censored_nll_formula(self):
        dist = Exponential(scale=10.0)
        observed = np.array([5.0, 15.0])
        censored = np.array([20.0])
        expected = -np.sum(dist.logpdf(observed)) - np.log(dist.survival(20.0))
        assert censored_nll(dist, observed, censored) == pytest.approx(float(expected))

    def test_true_family_wins_under_censoring(self):
        true = Weibull(shape=0.6, scale=100.0)
        observed, censored = censor_at(draw(true, seed=5), cutoff=300.0)
        fits = fit_all_censored(observed, censored)
        assert fits[0].name in ("weibull", "gamma")
        shapes = {fit.name: fit for fit in fits}
        assert shapes["weibull"].distribution.shape == pytest.approx(0.6, rel=0.06)

    def test_n_counts_censored_observations(self):
        fit = fit_exponential_censored([1.0, 2.0, 3.0], [5.0, 5.0])
        assert fit.n == 5


class TestValidation:
    def test_too_few_observed(self):
        with pytest.raises(FitError):
            fit_exponential_censored([1.0], [2.0, 3.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(FitError):
            fit_weibull_censored([1.0, 0.0], [2.0])
        with pytest.raises(FitError):
            fit_weibull_censored([1.0, 2.0], [-1.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(FitError):
            fit_gamma_censored([1.0, float("nan")], [])
