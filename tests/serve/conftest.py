"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import pytest

from repro.store import store_from_trace


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, small_trace):
    """A pristine multi-shard store shared by read-only tests."""
    root = tmp_path_factory.mktemp("serve-store") / "store"
    store_from_trace(small_trace, root, shard_rows=100)
    return root
