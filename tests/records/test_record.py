"""Tests for FailureRecord and its vocabulary."""

import pytest

from repro.records.record import (
    HIGH_LEVEL_CAUSES,
    LOW_LEVEL_PARENT,
    FailureRecord,
    LowLevelCause,
    RootCause,
    Workload,
)


def make(**overrides):
    defaults = dict(
        start_time=1000.0, end_time=2000.0, system_id=20, node_id=3,
        root_cause=RootCause.HARDWARE, low_level_cause=LowLevelCause.MEMORY,
    )
    defaults.update(overrides)
    return FailureRecord(**defaults)


class TestInvariants:
    def test_valid_record(self):
        record = make()
        assert record.repair_time == 1000.0
        assert record.repair_minutes == pytest.approx(1000.0 / 60.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            make(end_time=500.0)

    def test_zero_duration_allowed(self):
        assert make(end_time=1000.0).repair_time == 0.0

    def test_bad_system_rejected(self):
        with pytest.raises(ValueError):
            make(system_id=0)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            make(node_id=-1)

    def test_low_level_must_match_parent(self):
        with pytest.raises(ValueError):
            make(root_cause=RootCause.SOFTWARE, low_level_cause=LowLevelCause.MEMORY)

    def test_unknown_with_detail_rejected(self):
        with pytest.raises(ValueError):
            make(root_cause=RootCause.UNKNOWN, low_level_cause=LowLevelCause.MEMORY)

    def test_no_detail_allowed_for_any_cause(self):
        for cause in RootCause:
            record = make(root_cause=cause, low_level_cause=None)
            assert record.root_cause is cause


class TestVocabulary:
    def test_six_high_level_causes(self):
        assert len(HIGH_LEVEL_CAUSES) == 6
        assert set(HIGH_LEVEL_CAUSES) == set(RootCause)

    def test_every_low_level_cause_has_parent(self):
        for cause in LowLevelCause:
            assert cause in LOW_LEVEL_PARENT
            assert LOW_LEVEL_PARENT[cause] is not RootCause.UNKNOWN

    def test_environment_has_exactly_two_details(self):
        # Section 6: only power outage and A/C failure.
        details = [c for c, p in LOW_LEVEL_PARENT.items() if p is RootCause.ENVIRONMENT]
        assert len(details) == 2

    def test_workload_values_match_paper(self):
        assert Workload.FRONTEND.value == "fe"
        assert {w.value for w in Workload} == {"compute", "graphics", "fe"}


class TestOrderingAndCopies:
    def test_sorts_by_start_time(self):
        early = make(start_time=10.0, end_time=20.0)
        late = make(start_time=30.0, end_time=40.0)
        assert sorted([late, early]) == [early, late]

    def test_with_end_time(self):
        record = make().with_end_time(5000.0)
        assert record.end_time == 5000.0
        assert record.start_time == 1000.0

    def test_with_cause_amendment(self):
        # The remedy-DB follow-up flow: unknown cause amended later.
        record = make(root_cause=RootCause.UNKNOWN, low_level_cause=None)
        amended = record.with_cause(RootCause.NETWORK, LowLevelCause.SWITCH)
        assert amended.root_cause is RootCause.NETWORK
        assert amended.low_level_cause is LowLevelCause.SWITCH

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make().start_time = 0.0
