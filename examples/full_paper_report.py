#!/usr/bin/env python3
"""Render every table and figure of the paper from one trace.

Produces the complete text-mode reproduction — Table 1-3 and Figures
1-7 — either from the synthetic trace or from a real CFDR-format CSV.

Usage::

    python examples/full_paper_report.py                 # synthetic
    python examples/full_paper_report.py lanl.csv        # real data
"""

import sys

from repro import generate_lanl_trace, report
from repro.io import read_lanl_csv


def main() -> int:
    if len(sys.argv) > 1:
        print(f"Loading {sys.argv[1]} ...")
        trace = read_lanl_csv(sys.argv[1])
    else:
        print("Generating the synthetic LANL trace (pass a CSV path to use real data)")
        trace = generate_lanl_trace(seed=1)
    print(f"{len(trace)} failure records\n")

    sections = (
        report.render_table1(trace),
        report.render_figure1(trace),
        report.render_figure2(trace),
        report.render_figure3(trace),
        report.render_figure4(trace),
        report.render_figure5(trace),
        report.render_figure6(trace.filter_systems([20])),
        report.render_table2(trace),
        report.render_figure7(trace),
        report.render_table3(),
    )
    divider = "\n\n" + "=" * 78 + "\n\n"
    print(divider.join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
