"""``repro serve-bench`` — a load generator for the analytics service.

Boots an in-process :class:`~repro.serve.server.ServerThread` on an
ephemeral port, drives ``requests`` GETs from ``clients`` concurrent
asyncio workers, and reports latency percentiles plus the error and
degraded rates the serve-smoke CI job gates on.  Percentiles use
nearest-rank on the full sample — no reservoir, the sample sizes here
are small.

The request mix mirrors real probe traffic: mostly ``/v1/analyze``
cycling through per-system filters (discovered via ``/v1/systems``),
with a full ``/v1/summary`` every ``summary_every``-th request.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from repro.serve.client import aget, get
from repro.serve.server import ServeConfig, ServerThread

__all__ = ["run_serve_bench", "check_serve_report", "percentile"]


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty sample."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered))))
    return ordered[rank]


def _build_paths(
    systems: List[int],
    requests: int,
    summary_every: int,
    deadline_ms: Optional[float],
) -> List[str]:
    suffix = "" if deadline_ms is None else f"deadline_ms={deadline_ms:g}"
    paths: List[str] = []
    for index in range(requests):
        if summary_every and index % summary_every == 0:
            path, joiner = "/v1/summary", "?"
        elif systems:
            system = systems[index % len(systems)]
            path, joiner = f"/v1/analyze?system={system}", "&"
        else:
            path, joiner = "/v1/analyze", "?"
        if suffix:
            path = f"{path}{joiner}{suffix}"
        paths.append(path)
    return paths


async def _drive(
    host: str, port: int, paths: List[str], clients: int
) -> List[dict]:
    results: List[dict] = []
    cursor = iter(list(enumerate(paths)))

    async def worker() -> None:
        for _, path in cursor:
            start = time.perf_counter()
            try:
                response = await aget(host, port, path, timeout=60.0)
            except (OSError, asyncio.TimeoutError) as error:
                results.append({
                    "ms": (time.perf_counter() - start) * 1000.0,
                    "status": 0,
                    "outcome": "connection_error",
                    "error": str(error),
                })
                continue
            meta = response.meta()
            if response.status == 200:
                outcome = meta.get("status", "ok")
            elif response.status == 429:
                outcome = "shed"
            else:
                outcome = "error"
            results.append({
                "ms": (time.perf_counter() - start) * 1000.0,
                "status": response.status,
                "outcome": outcome,
            })

    await asyncio.gather(*(worker() for _ in range(max(1, clients))))
    return results


def run_serve_bench(
    root,
    requests: int = 200,
    clients: int = 8,
    deadline_ms: Optional[float] = None,
    summary_every: int = 5,
    config: Optional[ServeConfig] = None,
) -> dict:
    """Boot the service over ``root`` and measure a concurrent load."""
    config = config or ServeConfig(port=0)
    with ServerThread(root, config) as handle:
        discovered = get(handle.host, handle.port, "/v1/systems", timeout=30.0)
        systems = [
            entry["system"]
            for entry in discovered.body.get("data", {}).get("systems", [])
        ]
        paths = _build_paths(systems, requests, summary_every, deadline_ms)
        wall_start = time.perf_counter()
        results = asyncio.run(
            _drive(handle.host, handle.port, paths, clients)
        )
        wall = time.perf_counter() - wall_start
        stats = get(handle.host, handle.port, "/v1/stats", timeout=30.0).body
    latencies = [entry["ms"] for entry in results]
    status_counts: Dict[str, int] = {}
    outcomes: Dict[str, int] = {}
    for entry in results:
        status_counts[str(entry["status"])] = (
            status_counts.get(str(entry["status"]), 0) + 1
        )
        outcomes[entry["outcome"]] = outcomes.get(entry["outcome"], 0) + 1
    total = len(results)
    errors = sum(
        count for status, count in status_counts.items()
        if status == "0" or status.startswith("5")
    )
    degraded = sum(
        outcomes.get(kind, 0) for kind in ("degraded", "stale", "partial")
    )
    return {
        "requests": total,
        "clients": clients,
        "deadline_ms": deadline_ms,
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(total / wall, 2) if wall > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50), 3),
            "p90": round(percentile(latencies, 0.90), 3),
            "p99": round(percentile(latencies, 0.99), 3),
            "max": round(max(latencies), 3) if latencies else 0.0,
            "mean": (
                round(sum(latencies) / total, 3) if total else 0.0
            ),
        },
        "status_counts": dict(sorted(status_counts.items())),
        "outcomes": dict(sorted(outcomes.items())),
        "error_rate": round(errors / total, 6) if total else 0.0,
        "degraded_rate": round(degraded / total, 6) if total else 0.0,
        "server_stats": stats,
    }


def check_serve_report(
    report: dict,
    p99_ms: Optional[float] = None,
    max_error_rate: float = 0.0,
) -> List[str]:
    """Gate violations for the CI job; empty list means pass."""
    violations: List[str] = []
    if p99_ms is not None and report["latency_ms"]["p99"] > p99_ms:
        violations.append(
            f"p99 latency {report['latency_ms']['p99']:.1f}ms "
            f"exceeds gate {p99_ms:.1f}ms"
        )
    if report["error_rate"] > max_error_rate:
        violations.append(
            f"error rate {report['error_rate']:.4f} exceeds "
            f"gate {max_error_rate:.4f} "
            f"(status counts: {report['status_counts']})"
        )
    return violations
