"""ShardJournal recovery drills: torn payloads, stale meta, deep verify.

Corruption that a resume cannot safely absorb must fail *loudly*
(:class:`JournalError`), never silently return damaged shard data.
"""

from __future__ import annotations

import json

import pytest

from repro.resilience import JournalError, ShardJournal

META = {"kind": "trace", "seed": 7, "engine": "vectorized"}


def _payload_path(journal, key):
    return journal.shards_dir / journal.completed[key]["file"]


class TestTornPayloadRecovery:
    def test_torn_payload_fails_loudly_on_load(self, tmp_path):
        # The crash signature the journal's write ordering should make
        # impossible (payload is atomic, journal line comes second) —
        # but if a disk tears the payload *after* the fact, the sha256
        # in the journal line must catch it.
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", {"rows": list(range(100))})
        payload = _payload_path(journal, "system-2")
        blob = payload.read_bytes()
        payload.write_bytes(blob[: len(blob) // 2])

        resumed = ShardJournal(tmp_path / "run", meta=META, resume=True)
        assert resumed.has("system-2")  # the journal line is intact...
        with pytest.raises(JournalError, match="corrupt"):
            resumed.load("system-2")  # ...but the payload must not lie

    def test_missing_payload_fails_loudly(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1, 2, 3])
        _payload_path(journal, "system-2").unlink()
        resumed = ShardJournal(tmp_path / "run", meta=META, resume=True)
        with pytest.raises(JournalError, match="unreadable"):
            resumed.load("system-2")

    def test_bitflipped_payload_fails_loudly(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1, 2, 3])
        payload = _payload_path(journal, "system-2")
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))
        resumed = ShardJournal(tmp_path / "run", meta=META, resume=True)
        with pytest.raises(JournalError, match="corrupt"):
            resumed.load("system-2")

    def test_truncated_final_journal_line_is_dropped(self, tmp_path):
        # A crash mid-append leaves a torn trailing line; resume must
        # drop that entry (the shard regenerates) and keep the rest.
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1])
        journal.record("system-13", [2])
        text = journal.journal_path.read_text()
        lines = text.splitlines(keepends=True)
        journal.journal_path.write_text(lines[0] + lines[1][: len(lines[1]) // 2])

        resumed = ShardJournal(tmp_path / "run", meta=META, resume=True)
        assert resumed.has("system-2")
        assert not resumed.has("system-13")
        assert resumed.load("system-2") == [1]

    def test_append_after_torn_tail_self_heals(self, tmp_path):
        # Appending after a torn tail must not glue the new entry onto
        # the garbage half-line and lose both records.
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1])
        with journal.journal_path.open("a") as handle:
            handle.write('{"shard": "system-9", "file":')  # torn, no newline
        journal.record("system-13", [2])

        resumed = ShardJournal(tmp_path / "run", meta=META, resume=True)
        assert resumed.has("system-2")
        assert resumed.has("system-13")
        assert resumed.load("system-13") == [2]


class TestStaleMetaRecovery:
    def test_resume_with_changed_identity_fails_loudly(self, tmp_path):
        ShardJournal(tmp_path / "run", meta=META).record("system-2", [1])
        with pytest.raises(JournalError, match="identity changed"):
            ShardJournal(tmp_path / "run", meta=dict(META, seed=8), resume=True)

    def test_identity_error_names_the_changed_fields(self, tmp_path):
        ShardJournal(tmp_path / "run", meta=META)
        changed = dict(META, seed=8, engine="scalar")
        with pytest.raises(JournalError, match="engine, seed"):
            ShardJournal(tmp_path / "run", meta=changed, resume=True)

    def test_resume_without_meta_fails_loudly(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "journal.jsonl").write_text("")
        with pytest.raises(JournalError, match="cannot resume"):
            ShardJournal(run_dir, meta=META, resume=True)

    def test_stale_meta_beside_newer_journal_detected_by_verify(self, tmp_path):
        # Simulate meta.json reverting to an older identity (restored
        # from backup, say) under a journal recorded with a newer one.
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1])
        journal.meta_path.write_text(json.dumps(dict(META, seed=99)))
        resumed = ShardJournal(tmp_path / "run", meta=None, resume=True)
        resumed.meta = dict(META)
        problems = resumed.verify()
        assert any("does not match" in problem for problem in problems)


class TestVerify:
    def test_clean_journal_verifies_empty(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1])
        journal.record("system-13", [2])
        assert journal.verify() == []

    def test_verify_reports_torn_payload(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1, 2, 3])
        payload = _payload_path(journal, "system-2")
        payload.write_bytes(payload.read_bytes()[:-4])
        problems = journal.verify()
        assert len(problems) == 1
        assert "sha256 mismatch" in problems[0]

    def test_verify_reports_missing_payload(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1])
        _payload_path(journal, "system-2").unlink()
        problems = journal.verify()
        assert any("payload missing" in problem for problem in problems)

    def test_verify_flags_orphan_payload_as_recoverable(self, tmp_path):
        # Crash between the payload write and the journal append: the
        # payload exists, no journal line.  Recoverable — the resume
        # regenerates the shard — so it is prefixed, not fatal.
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.record("system-2", [1])
        (journal.shards_dir / "system-9-deadbeef.pkl").write_bytes(b"stray")
        problems = journal.verify()
        assert len(problems) == 1
        assert problems[0].startswith("orphan:")

    def test_verify_reports_unreadable_meta(self, tmp_path):
        journal = ShardJournal(tmp_path / "run", meta=META)
        journal.meta_path.write_text("{not json")
        problems = journal.verify()
        assert any("meta.json unreadable" in problem for problem in problems)
