"""The whole paper in one call.

:func:`summarize` runs every analysis of Sections 4-6 on a trace and
returns a :class:`PaperSummary` with the headline findings of the
paper's Section 8 summary, each as a checkable quantity.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.errors import DegenerateSampleError
from repro.analysis.interarrival import (
    InterarrivalStudy,
    interarrival_study,
    split_eras,
    system_interarrivals,
)
from repro.analysis.lifecycle import classify_lifecycle, monthly_failures
from repro.analysis.periodicity import PeriodicityStudy, periodicity_study
from repro.analysis.rates import SystemRate, failure_rates, normalized_variability
from repro.analysis.repair import (
    RepairByCauseRow,
    repair_by_system,
    repair_fit_study,
    repair_statistics_by_cause,
)
from repro.analysis.rootcause import (
    CauseBreakdown,
    breakdown_by_hardware_type,
    downtime_breakdown_by_hardware_type,
)
from repro.records.timeutils import from_datetime
from repro.records.trace import FailureTrace
from repro.stats.fitting import FitResult
from repro.synth.lifecycle import LifecycleShape

__all__ = ["PaperSummary", "summarize"]

#: The paper's era boundary for the Figure 6 early/late split.
ERA_BOUNDARY = from_datetime(_dt.datetime(2000, 1, 1))


@dataclass(frozen=True)
class PaperSummary:
    """Headline results of the paper, computed from a trace.

    Attributes map to the bullet list of the paper's Section 8.
    """

    n_records: int
    # Failure rates vary widely, 20 to > 1000 per year.
    rates: Tuple[SystemRate, ...]
    rate_range: Tuple[float, float]
    # Rates ~ proportional to processor count.
    variability: Dict[str, float]
    # Root-cause breakdowns.
    cause_breakdown: Dict[str, CauseBreakdown]
    downtime_breakdown: Dict[str, CauseBreakdown]
    # Lifecycle shapes per long-lived system.
    lifecycle_shapes: Dict[int, LifecycleShape]
    # Workload correlation (Figure 5).
    periodicity: PeriodicityStudy
    # TBF: Weibull/gamma with decreasing hazard, shape 0.7-0.8.
    tbf_system_late: Optional[InterarrivalStudy]
    tbf_all: InterarrivalStudy
    # Repair times.
    repair_rows: Tuple[RepairByCauseRow, ...]
    repair_fits: Tuple[FitResult, ...]
    repair_system_range: Tuple[float, float]

    @property
    def repair_best_fit(self) -> str:
        """Name of the winning repair-time distribution (lognormal)."""
        return self.repair_fits[0].name


def summarize(
    trace: FailureTrace,
    reference_system: int = 20,
    era_boundary: float = ERA_BOUNDARY,
    min_lifecycle_months: int = 30,
) -> PaperSummary:
    """Run the paper's full analysis suite on a trace.

    Parameters
    ----------
    trace:
        The trace to analyze.
    reference_system:
        System used for the Figure 6 interarrival studies (20 in the
        paper).
    era_boundary:
        Early/late split timestamp (2000-01-01 in the paper).
    min_lifecycle_months:
        Only classify lifecycle shapes of systems at least this old.
    """
    rates = tuple(failure_rates(trace))
    nonzero = [rate.per_year for rate in rates if rate.failures > 0]
    if not nonzero:
        raise DegenerateSampleError("trace has no failures")
    lifecycle_shapes: Dict[int, LifecycleShape] = {}
    for system_id in sorted(trace.systems.keys()):
        curve = monthly_failures(trace, system_id)
        if curve.months >= min_lifecycle_months and sum(curve.totals) >= 100:
            lifecycle_shapes[system_id] = classify_lifecycle(curve)
    tbf_system_late: Optional[InterarrivalStudy] = None
    if reference_system in trace.by_system():
        reference = trace.filter_systems([reference_system])
        _early, late = split_eras(reference, era_boundary)
        if len(late) >= 10:
            tbf_system_late = system_interarrivals(
                late, reference_system, label=f"system {reference_system} late era"
            )
    per_system_repair = repair_by_system(trace)
    repair_means = [row.mean for row in per_system_repair.values()]
    return PaperSummary(
        n_records=len(trace),
        rates=rates,
        rate_range=(min(nonzero), max(nonzero)),
        variability=normalized_variability(trace),
        cause_breakdown=breakdown_by_hardware_type(trace),
        downtime_breakdown=downtime_breakdown_by_hardware_type(trace),
        lifecycle_shapes=lifecycle_shapes,
        periodicity=periodicity_study(trace),
        tbf_system_late=tbf_system_late,
        tbf_all=interarrival_study(trace, label="all systems pooled"),
        repair_rows=tuple(repair_statistics_by_cause(trace)),
        repair_fits=repair_fit_study(trace),
        repair_system_range=(min(repair_means), max(repair_means)),
    )
