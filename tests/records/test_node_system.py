"""Tests for NodeCategory/NodeConfig/SystemConfig."""

import pytest

from repro.records.inventory import DATA_END, DATA_START
from repro.records.node import NodeCategory, NodeConfig
from repro.records.system import HardwareArchitecture, HardwareType, SystemConfig


def category(**overrides):
    defaults = dict(node_count=4, procs_per_node=2, memory_gb=8.0, nics=1)
    defaults.update(overrides)
    return NodeCategory(**defaults)


class TestNodeCategory:
    def test_total_processors(self):
        assert category(node_count=4, procs_per_node=2).total_processors == 8

    @pytest.mark.parametrize(
        "field,value",
        [("node_count", 0), ("procs_per_node", 0), ("memory_gb", 0.0), ("nics", -1)],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            category(**{field: value})


class TestSystemConfig:
    def make_system(self):
        return SystemConfig(
            system_id=9,
            hardware_type=HardwareType.E,
            architecture=HardwareArchitecture.SMP,
            categories=(
                category(node_count=2, production_start="04/01", production_end="now"),
                category(node_count=3, production_start="12/02", production_end="now"),
            ),
        )

    def test_counts(self):
        system = self.make_system()
        assert system.node_count == 5
        assert system.processor_count == 10

    def test_expand_nodes_assigns_sequential_ids(self):
        nodes = self.make_system().expand_nodes(DATA_START, DATA_END)
        assert [node.node_id for node in nodes] == [0, 1, 2, 3, 4]

    def test_expand_nodes_category_windows(self):
        nodes = self.make_system().expand_nodes(DATA_START, DATA_END)
        # First category starts 04/01; second starts 12/02 (later).
        assert nodes[0].production_start < nodes[2].production_start
        assert all(node.production_end == DATA_END for node in nodes)

    def test_production_window_is_union(self):
        system = self.make_system()
        start, end = system.production_window(DATA_START, DATA_END)
        nodes = system.expand_nodes(DATA_START, DATA_END)
        assert start == min(node.production_start for node in nodes)
        assert end == max(node.production_end for node in nodes)

    def test_production_years_positive(self):
        assert self.make_system().production_years(DATA_START, DATA_END) > 3.0

    def test_no_categories_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(
                system_id=1,
                hardware_type=HardwareType.A,
                architecture=HardwareArchitecture.SMP,
                categories=(),
            )

    def test_bad_system_id_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(
                system_id=23,
                hardware_type=HardwareType.A,
                architecture=HardwareArchitecture.SMP,
                categories=(category(),),
            )


class TestNodeConfig:
    def test_in_production(self):
        node = NodeConfig(
            system_id=1, node_id=0, category=category(),
            production_start=100.0, production_end=200.0,
        )
        assert node.in_production(100.0)
        assert node.in_production(150.0)
        assert not node.in_production(200.0)
        assert not node.in_production(50.0)
        assert node.production_seconds == 100.0
        assert node.procs == 2

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            NodeConfig(
                system_id=1, node_id=0, category=category(),
                production_start=200.0, production_end=100.0,
            )
