"""Figure 2: failures per year per system, raw (a) and per processor (b).

Paper shape claims asserted:

* yearly rates span roughly 17 to ~1159 across systems (two orders of
  magnitude), with system 7 the peak;
* normalizing by processors collapses the variability, especially
  within hardware types E and F;
* rates grow roughly linearly with system size (high log-log
  correlation).
"""

from repro.analysis.rates import (
    failure_rates,
    normalized_variability,
    rate_size_correlation,
)
from repro.report import render_figure2


def test_figure2(benchmark, trace):
    rates = benchmark(failure_rates, trace)
    print("\n" + render_figure2(trace))

    nonzero = [r for r in rates if r.failures > 0]
    per_year = {r.system_id: r.per_year for r in nonzero}
    # Wide raw range: smallest vs largest differ by > 50x
    # (paper: 17 vs 1159).
    assert max(per_year.values()) / min(per_year.values()) > 50
    # System 7 is the tallest bar, near the paper's 1159/year.
    assert per_year[7] == max(per_year.values())
    assert 900 < per_year[7] < 2200

    # Normalized rates are tighter, especially within a type.
    cv = normalized_variability(trace)
    assert cv["normalized"] < cv["raw"]
    assert cv["normalized[F]"] < 0.3
    # Type E systems span 128-1024 nodes yet stay comparable.
    e_rates = [r.per_year_per_proc for r in nonzero
               if r.hardware_type.value == "E" and r.system_id not in (5, 6)]
    assert max(e_rates) / min(e_rates) < 2.0

    # Roughly linear growth with size.
    assert rate_size_correlation(trace) > 0.8
