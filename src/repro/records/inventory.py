"""Table 1 of the paper, encoded as data: the 22 LANL systems.

The print of Table 1 in the available text interleaves its columns, so
this encoding is a careful reconstruction.  What it preserves exactly:

* system IDs 1-22, hardware types A-H, SMP/NUMA architecture,
* node and (within 0.3%) processor totals per system,
* production windows per node category,
* the documented multi-category systems: system 4 (two deployment
  waves), system 7 (8/16/32/352 GB memory tiers), system 8 (8/16/32 GB),
  system 12 (4 vs 16 GB), system 18 (a short-lived 03/05-06/05 slice),
  system 19 (32/64 GB), system 20 (node 0 is a late-production 80-proc
  node, per the paper's footnote 4), system 21 (4x128-proc + 1x32-proc).

Known deviations (see DESIGN.md section 6): system 20's three category
rows cannot be combined into exactly 6152 processors with integer node
counts, so we encode 48x128 + 1x80 = 6224; and two ambiguous category
rows that could not be attributed to a system are dropped.  Encoded
totals: 4750 nodes (exact), 24164 processors vs 24101 published.
"""

from __future__ import annotations

from typing import Dict

from repro.records.node import NodeCategory
from repro.records.system import HardwareArchitecture, HardwareType, SystemConfig
from repro.records.timeutils import from_datetime
import datetime as _dt

__all__ = [
    "DATA_START",
    "DATA_END",
    "LANL_SYSTEMS",
    "lanl_system",
    "total_nodes",
    "total_processors",
]

#: Opening of the remedy database (June 1996): "N/A" production starts
#: clamp here, since no earlier failures exist in the data.
DATA_START = from_datetime(_dt.datetime(1996, 6, 1))

#: End of the released data (through November 2005).
DATA_END = from_datetime(_dt.datetime(2005, 12, 1))

_SMP = HardwareArchitecture.SMP
_NUMA = HardwareArchitecture.NUMA


def _system(
    system_id: int,
    hw: str,
    arch: HardwareArchitecture,
    *categories: NodeCategory,
) -> SystemConfig:
    return SystemConfig(
        system_id=system_id,
        hardware_type=HardwareType(hw),
        architecture=arch,
        categories=tuple(categories),
    )


def _cat(
    nodes: int,
    procs: int,
    mem: float,
    nics: int,
    start: str = "N/A",
    end: str = "now",
) -> NodeCategory:
    return NodeCategory(
        node_count=nodes,
        procs_per_node=procs,
        memory_gb=mem,
        nics=nics,
        production_start=start,
        production_end=end,
    )


#: Table 1, keyed by system ID.
LANL_SYSTEMS: Dict[int, SystemConfig] = {
    config.system_id: config
    for config in (
        # -- Small single-node SMP systems (types A-C) ---------------------
        _system(1, "A", _SMP, _cat(1, 8, 16, 0, "N/A", "12/99")),
        _system(2, "B", _SMP, _cat(1, 32, 8, 1, "N/A", "12/03")),
        _system(3, "C", _SMP, _cat(1, 4, 1, 0, "N/A", "04/03")),
        # -- Type D: the first large-scale SMP cluster at LANL -------------
        _system(
            4, "D", _SMP,
            _cat(82, 2, 1, 1, "04/01", "now"),
            _cat(82, 2, 1, 1, "12/02", "now"),
        ),
        # -- Type E: 2-way/4-way SMP clusters (systems 5-12) ---------------
        _system(5, "E", _SMP, _cat(256, 4, 16, 2, "12/01", "now")),
        _system(6, "E", _SMP, _cat(128, 4, 16, 2, "09/01", "01/02")),
        _system(
            7, "E", _SMP,
            _cat(632, 4, 8, 2, "05/02", "now"),
            _cat(256, 4, 16, 2, "05/02", "now"),
            _cat(128, 4, 32, 2, "05/02", "now"),
            _cat(8, 4, 352, 2, "05/02", "now"),
        ),
        _system(
            8, "E", _SMP,
            _cat(512, 4, 8, 2, "10/02", "now"),
            _cat(256, 4, 16, 2, "10/02", "now"),
            _cat(256, 4, 32, 2, "10/02", "now"),
        ),
        _system(9, "E", _SMP, _cat(128, 4, 4, 1, "09/03", "now")),
        _system(10, "E", _SMP, _cat(128, 4, 4, 1, "09/03", "now")),
        _system(11, "E", _SMP, _cat(128, 4, 4, 1, "09/03", "now")),
        _system(
            12, "E", _SMP,
            _cat(16, 4, 4, 1, "09/03", "now"),
            _cat(16, 4, 16, 1, "09/03", "now"),
        ),
        # -- Type F: 2-way SMP clusters (systems 13-18) ---------------------
        _system(13, "F", _SMP, _cat(128, 2, 4, 1, "09/03", "now")),
        _system(14, "F", _SMP, _cat(256, 2, 4, 1, "09/03", "now")),
        _system(15, "F", _SMP, _cat(256, 2, 4, 1, "09/03", "now")),
        _system(16, "F", _SMP, _cat(256, 2, 4, 1, "09/03", "now")),
        _system(17, "F", _SMP, _cat(256, 2, 4, 1, "09/03", "now")),
        _system(
            18, "F", _SMP,
            _cat(448, 2, 4, 1, "09/03", "now"),
            _cat(64, 2, 4, 1, "03/05", "06/05"),
        ),
        # -- Type G: the first NUMA-era clusters (systems 19-21) ------------
        _system(
            19, "G", _NUMA,
            _cat(8, 128, 32, 4, "12/96", "09/02"),
            _cat(8, 128, 64, 4, "12/96", "09/02"),
        ),
        # System 20: node 0 is the late-production 80-processor node of
        # footnote 4; nodes 21-23 are its graphics/visualization nodes
        # (workload assignment happens in repro.synth.nodes).
        _system(
            20, "G", _NUMA,
            _cat(1, 80, 80, 0, "06/05", "now"),
            _cat(23, 128, 128, 12, "01/97", "now"),
            _cat(25, 128, 32, 12, "01/97", "11/05"),
        ),
        _system(
            21, "G", _NUMA,
            _cat(4, 128, 128, 4, "10/98", "12/04"),
            _cat(1, 32, 16, 4, "01/98", "12/04"),
        ),
        # -- Type H: a single large NUMA node (system 22) -------------------
        _system(22, "H", _NUMA, _cat(1, 256, 1024, 0, "11/04", "now")),
    )
}


def lanl_system(system_id: int) -> SystemConfig:
    """Return the :class:`SystemConfig` for a paper system ID (1-22)."""
    try:
        return LANL_SYSTEMS[system_id]
    except KeyError:
        raise KeyError(
            f"unknown system id {system_id}; valid ids are 1..22"
        ) from None


def total_nodes() -> int:
    """Total nodes across all 22 systems (paper: 4750)."""
    return sum(config.node_count for config in LANL_SYSTEMS.values())


def total_processors() -> int:
    """Total processors across all 22 systems (paper: 24101)."""
    return sum(config.processor_count for config in LANL_SYSTEMS.values())
