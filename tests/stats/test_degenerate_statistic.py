"""Regression: zero-denominator summary stats raise the typed error.

``EmpiricalDistribution.mean_to_median`` on a zero-median sample (and
``squared_cv`` on a zero-mean one) used to escape as a bare
``ZeroDivisionError``, which the report layer's per-section isolation
classified as a CRASH instead of thin data.  They must now raise
:class:`DegenerateStatisticError` — catchable as *both*
``DegenerateSampleError`` (so sections degrade) and
``ZeroDivisionError`` (so legacy handlers keep working).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.empirical import EmpiricalDistribution
from repro.stats.errors import DegenerateSampleError, DegenerateStatisticError


@pytest.fixture
def zero_median():
    # Median 0: more than half the sample at zero, but non-zero mean.
    return EmpiricalDistribution.from_data(np.asarray([0.0, 0.0, 0.0, 4.0]))


@pytest.fixture
def zero_mean():
    return EmpiricalDistribution.from_data(np.asarray([-1.0, 1.0]))


class TestMeanToMedian:
    def test_raises_typed_error(self, zero_median):
        with pytest.raises(DegenerateStatisticError, match="zero median"):
            zero_median.mean_to_median

    def test_catchable_as_degenerate_sample(self, zero_median):
        with pytest.raises(DegenerateSampleError):
            zero_median.mean_to_median

    def test_catchable_as_zero_division(self, zero_median):
        with pytest.raises(ZeroDivisionError):
            zero_median.mean_to_median

    def test_fine_on_nonzero_median(self):
        summary = EmpiricalDistribution.from_data(
            np.asarray([1.0, 2.0, 3.0, 4.0])
        )
        assert summary.mean_to_median == pytest.approx(1.0)


class TestSquaredCV:
    def test_raises_typed_error(self, zero_mean):
        with pytest.raises(DegenerateStatisticError, match="zero-mean"):
            zero_mean.squared_cv

    def test_catchable_as_both_parents(self, zero_mean):
        with pytest.raises(DegenerateSampleError):
            zero_mean.squared_cv
        with pytest.raises(ZeroDivisionError):
            zero_mean.squared_cv


class TestHierarchy:
    def test_dual_parentage(self):
        """Both parents, so sections degrade and legacy handlers work."""
        assert issubclass(DegenerateStatisticError, DegenerateSampleError)
        assert issubclass(DegenerateStatisticError, ZeroDivisionError)
        assert issubclass(DegenerateStatisticError, ValueError)
