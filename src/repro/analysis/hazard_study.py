"""Hazard-rate study: is the decreasing hazard real?

Section 5.3's headline: the time since the last failure predicts the
time to the next one — a *decreasing* hazard (Weibull shape 0.7-0.8),
so "not seeing a failure for a long time decreases the chance of seeing
one in the near future."  This module packages the full argument for
any interarrival sample:

* the empirical (life-table) hazard on log-spaced bins,
* the fitted Weibull's parametric hazard on the same bins,
* a likelihood-ratio test of shape = 1 (exponential) vs free shape,
* a monotonicity summary of the empirical hazard.

Used by the quickstart-adjacent workflows and tested against both
constructed samples and the synthetic trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.records.trace import FailureTrace
from repro.stats.distributions import Weibull
from repro.stats.fitting import fit_exponential, fit_weibull, prepare_positive
from repro.stats.gof import likelihood_ratio_pvalue
from repro.stats.hazard import empirical_hazard

__all__ = ["HazardStudy", "hazard_study"]


@dataclass(frozen=True)
class HazardStudy:
    """The decreasing-hazard argument for one interarrival sample.

    Attributes
    ----------
    n:
        Sample size (positive gaps only).
    weibull:
        The fitted Weibull.
    bin_midpoints / empirical / fitted:
        Life-table hazard estimates and the Weibull hazard at the same
        points.
    lr_pvalue:
        P-value of the exponential-vs-Weibull likelihood-ratio test;
        small means the non-constant hazard is statistically real.
    spearman:
        Rank correlation between bin midpoint and empirical hazard;
        negative means the hazard falls with time since failure.
    """

    n: int
    weibull: Weibull
    bin_midpoints: Tuple[float, ...]
    empirical: Tuple[float, ...]
    fitted: Tuple[float, ...]
    lr_pvalue: float
    spearman: float

    @property
    def decreasing(self) -> bool:
        """Whether shape < 1 *and* the LR test rejects constant hazard."""
        return self.weibull.shape < 1.0 and self.lr_pvalue < 0.05

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        direction = "decreasing" if self.weibull.shape < 1 else "increasing"
        lines = [
            f"n = {self.n} interarrivals",
            f"fitted {self.weibull.describe()} => {direction} hazard",
            f"LR test vs exponential: p = {self.lr_pvalue:.2e}",
            f"empirical hazard trend (Spearman): {self.spearman:+.2f}",
        ]
        return "\n".join(lines)


def _spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (no scipy.stats dependency)."""
    def ranks(values: np.ndarray) -> np.ndarray:
        order = np.argsort(values)
        result = np.empty(len(values))
        result[order] = np.arange(len(values), dtype=float)
        return result

    rx, ry = ranks(x), ranks(y)
    rx -= rx.mean()
    ry -= ry.mean()
    denominator = float(np.sqrt(np.sum(rx**2) * np.sum(ry**2)))
    if denominator == 0:
        return 0.0
    return float(np.sum(rx * ry) / denominator)


def hazard_study(
    data, bins: int = 15, label: str = ""
) -> HazardStudy:
    """Run the hazard analysis on an interarrival sample or trace.

    Parameters
    ----------
    data:
        Either a :class:`FailureTrace` (its interarrivals are used) or
        an array of durations.  Zeros are dropped (a zero gap carries
        no hazard information at positive times).
    bins:
        Life-table bins (log-spaced).
    label:
        Cosmetic label.
    """
    if isinstance(data, FailureTrace):
        durations = data.interarrival_times()
    else:
        durations = np.asarray(data, dtype=float)
    durations = prepare_positive(durations, zero_policy="drop")
    if durations.size < 50:
        raise ValueError(
            f"hazard study needs >= 50 positive gaps, got {durations.size}"
        )
    weibull_fit = fit_weibull(durations)
    exponential_fit = fit_exponential(durations)
    midpoints, hazards = empirical_hazard(durations, bins=bins)
    keep = hazards > 0
    midpoints, hazards = midpoints[keep], hazards[keep]
    weibull = weibull_fit.distribution
    fitted = np.asarray(weibull.hazard(midpoints), dtype=float)
    return HazardStudy(
        n=int(durations.size),
        weibull=weibull,
        bin_midpoints=tuple(float(v) for v in midpoints),
        empirical=tuple(float(v) for v in hazards),
        fitted=tuple(float(v) for v in fitted),
        lr_pvalue=likelihood_ratio_pvalue(exponential_fit.nll, weibull_fit.nll),
        spearman=_spearman(midpoints, hazards),
    )
