"""Reliability-aware job scheduling on a failure trace.

The paper's introduction cites resource allocation using failure
characteristics [5, 25], and Section 5.1 suggests assigning critical
or long jobs to more reliable nodes.  This package quantifies that:

* :mod:`~repro.sched.jobs` — synthetic job workloads.
* :mod:`~repro.sched.cluster` — node up/down timelines derived from a
  failure trace.
* :mod:`~repro.sched.policies` — placement policies: random,
  least-loaded, and reliability-aware (estimated per-node failure
  rates from a training window).
* :mod:`~repro.sched.simulator` — an event-driven scheduler simulation
  measuring completion times and work lost to failures under each
  policy.
"""

from repro.sched.jobs import DiurnalJobGenerator, Job, JobGenerator
from repro.sched.cluster import ClusterTimeline, NodeOutage
from repro.sched.policies import (
    LeastFailuresPolicy,
    PlacementPolicy,
    RandomPolicy,
    ReliabilityAwarePolicy,
)
from repro.sched.simulator import SchedulerResult, SchedulerSimulation
from repro.sched.backfill import (
    BackfillSchedulerSimulation,
    earliest_start,
    pick_backfill_job,
)

__all__ = [
    "BackfillSchedulerSimulation",
    "earliest_start",
    "pick_backfill_job",
    "Job",
    "JobGenerator",
    "DiurnalJobGenerator",
    "ClusterTimeline",
    "NodeOutage",
    "PlacementPolicy",
    "RandomPolicy",
    "LeastFailuresPolicy",
    "ReliabilityAwarePolicy",
    "SchedulerResult",
    "SchedulerSimulation",
]
