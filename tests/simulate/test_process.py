"""Tests for generator-based processes (repro.simulate.process)."""

import pytest

from repro.simulate.engine import SimulationError, Simulator
from repro.simulate.process import Interrupt, Process


def test_process_runs_segments():
    sim = Simulator()
    log = []

    def worker():
        log.append(("start", sim.now))
        yield 10.0
        log.append(("mid", sim.now))
        yield 5.0
        log.append(("end", sim.now))

    Process(sim, worker())
    sim.run()
    assert log == [("start", 0.0), ("mid", 10.0), ("end", 15.0)]


def test_process_alive_transitions():
    sim = Simulator()

    def worker():
        yield 1.0

    process = Process(sim, worker())
    assert process.alive
    sim.run()
    assert not process.alive


def test_interrupt_delivers_cause():
    sim = Simulator()
    seen = []

    def worker():
        try:
            yield 100.0
        except Interrupt as interrupt:
            seen.append((sim.now, interrupt.cause))

    process = Process(sim, worker())
    sim.schedule(30.0, lambda s: process.interrupt("disk died"))
    sim.run()
    assert seen == [(30.0, "disk died")]


def test_interrupt_and_resume():
    sim = Simulator()
    log = []

    def worker():
        remaining = 100.0
        while remaining > 0:
            started = sim.now
            try:
                yield remaining
                remaining = 0.0
            except Interrupt:
                remaining -= sim.now - started
                log.append(("hit", sim.now, remaining))
                yield 10.0  # repair
        log.append(("done", sim.now))

    process = Process(sim, worker())
    sim.schedule(40.0, lambda s: process.interrupt())
    sim.run()
    # 40 elapsed, 60 remaining, 10 repair, finish at 110.
    assert log == [("hit", 40.0, 60.0), ("done", 110.0)]


def test_unhandled_interrupt_kills_process():
    sim = Simulator()

    def worker():
        yield 100.0

    process = Process(sim, worker())
    sim.schedule(10.0, lambda s: process.interrupt())
    sim.run()
    assert not process.alive


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def worker():
        yield 1.0

    process = Process(sim, worker())
    sim.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_negative_delay_rejected():
    sim = Simulator()

    def worker():
        yield -1.0

    Process(sim, worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def worker(name, period):
        for _ in range(2):
            yield period
            log.append((name, sim.now))

    Process(sim, worker("fast", 1.0))
    Process(sim, worker("slow", 3.0))
    sim.run()
    assert log == [("fast", 1.0), ("fast", 2.0), ("slow", 3.0), ("slow", 6.0)]
