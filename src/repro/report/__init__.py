"""Text-mode rendering of tables and figures.

The toolkit has no plotting dependency; every bench prints the paper's
artifacts using these renderers, and every analysis returns plain data
a user can hand to matplotlib instead.

* :mod:`~repro.report.tables` — aligned ASCII tables.
* :mod:`~repro.report.charts` — horizontal bar charts, CDF comparison
  plots, and stacked-percentage bars, all as strings.
* :mod:`~repro.report.paper` — one renderer per paper artifact
  (Table 1/2/3, Figures 1-7).
"""

from repro.report.tables import format_table
from repro.report.markdown import markdown_summary, markdown_table
from repro.report.charts import (
    bar_chart,
    cdf_plot,
    cdf_plot_weighted,
    series_plot,
    stacked_bars,
)
from repro.report.paper import (
    PaperReport,
    SectionResult,
    run_paper_report,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_table1,
    render_table2,
    render_table3,
)
from repro.report.streaming import StoreReport, run_store_report

__all__ = [
    "format_table",
    "markdown_table",
    "markdown_summary",
    "bar_chart",
    "cdf_plot",
    "cdf_plot_weighted",
    "series_plot",
    "stacked_bars",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_figure7",
    "PaperReport",
    "SectionResult",
    "run_paper_report",
    "StoreReport",
    "run_store_report",
]
