"""Tests for checkpoint strategies and the trace-driven simulator."""

import numpy as np
import pytest

from repro.checkpoint.simulator import CheckpointSimulation
from repro.checkpoint.strategies import (
    DistributionAwareStrategy,
    FixedIntervalStrategy,
    YoungStrategy,
)
from repro.stats.distributions import Weibull


class TestStrategies:
    INTERARRIVALS = [3600.0 * k for k in (1, 2, 5, 10, 3, 8, 2, 1, 6, 4)]

    def test_fixed(self):
        strategy = FixedIntervalStrategy(1234.0)
        assert strategy.interval(self.INTERARRIVALS, 600.0) == 1234.0
        with pytest.raises(ValueError):
            FixedIntervalStrategy(0.0)

    def test_young_uses_empirical_mtbf(self):
        strategy = YoungStrategy()
        mtbf = float(np.mean(self.INTERARRIVALS))
        expected = np.sqrt(2 * 600.0 * mtbf)
        assert strategy.interval(self.INTERARRIVALS, 600.0) == pytest.approx(expected)

    def test_young_empty_rejected(self):
        with pytest.raises(ValueError):
            YoungStrategy().interval([], 600.0)

    def test_distribution_aware_fits_weibull(self):
        generator = np.random.Generator(np.random.PCG64(0))
        gaps = Weibull(shape=0.7, scale=40_000.0).sample(generator, 3000)
        strategy = DistributionAwareStrategy()
        fitted = strategy.fitted(gaps)
        assert fitted.name == "weibull"
        interval = strategy.interval(gaps, 600.0)
        assert interval > 0

    def test_distribution_aware_restart_cost_validation(self):
        with pytest.raises(ValueError):
            DistributionAwareStrategy(restart_cost=-1.0)


class TestCheckpointSimulation:
    def test_no_failures_exact_makespan(self):
        sim = CheckpointSimulation(
            work=10_000.0, interval=1000.0, checkpoint_cost=50.0, restart_cost=0.0
        )
        result = sim.run([])
        assert result.completed
        # 10 segments, 9 checkpoints (none after the last segment).
        assert result.makespan == pytest.approx(10_000.0 + 9 * 50.0)
        assert result.checkpoints_written == 9
        assert result.failures_hit == 0
        assert result.lost_work == 0.0

    def test_single_failure_rollback_arithmetic(self):
        sim = CheckpointSimulation(
            work=3000.0, interval=1000.0, checkpoint_cost=100.0, restart_cost=200.0
        )
        # Failure at t=1500: one checkpoint done (work 1000 banked at
        # t=1100), 400 s of segment 2 lost, restart 200 s, then segments
        # 2 and 3 rerun: 1000 + 100 + 1000 = finish.
        result = sim.run([1500.0])
        assert result.completed
        assert result.failures_hit == 1
        assert result.lost_work == pytest.approx(400.0)
        assert result.makespan == pytest.approx(1500.0 + 200.0 + 1000.0 + 100.0 + 1000.0)

    def test_failure_during_checkpoint_loses_segment(self):
        sim = CheckpointSimulation(
            work=2000.0, interval=1000.0, checkpoint_cost=100.0, restart_cost=0.0
        )
        # Failure at t=1050, mid-checkpoint: the whole 1000 s segment is
        # lost (roll back to zero banked work).
        result = sim.run([1050.0])
        assert result.completed
        assert result.lost_work == pytest.approx(1000.0)
        assert result.makespan == pytest.approx(1050.0 + 1000.0 + 100.0 + 1000.0)

    def test_failure_during_restart_restarts_again(self):
        sim = CheckpointSimulation(
            work=1000.0, interval=1000.0, checkpoint_cost=0.0, restart_cost=500.0
        )
        # First failure at 100; restart runs 100-600; second failure at
        # 300 interrupts the restart; restart again 300-800; then the
        # full 1000 s segment reruns.
        result = sim.run([100.0, 300.0])
        assert result.completed
        assert result.failures_hit == 2
        assert result.makespan == pytest.approx(300.0 + 500.0 + 1000.0)

    def test_incomplete_when_failures_too_dense(self):
        sim = CheckpointSimulation(
            work=10_000.0, interval=1000.0, checkpoint_cost=100.0, restart_cost=0.0
        )
        # A failure every 500 s up to the horizon: a segment plus its
        # checkpoint needs 1100 s of quiet, so nothing ever banks.
        failures = [500.0 * k for k in range(1, 1000)]
        result = sim.run(failures, horizon=400_000.0)
        assert not result.completed
        assert result.useful_work == 0.0
        assert result.efficiency == 0.0
        assert result.makespan == pytest.approx(400_000.0)

    def test_horizon_cuts_off_slow_job(self):
        sim = CheckpointSimulation(work=10_000.0, interval=1000.0, checkpoint_cost=100.0)
        result = sim.run([], horizon=5000.0)
        assert not result.completed
        # 4 full segments banked by t=4400; the 5th is in flight.
        assert result.useful_work == pytest.approx(4000.0)

    def test_horizon_validation(self):
        sim = CheckpointSimulation(work=100.0, interval=50.0, checkpoint_cost=1.0)
        with pytest.raises(ValueError):
            sim.run([], horizon=0.0)

    def test_efficiency_definition(self):
        sim = CheckpointSimulation(work=1000.0, interval=500.0, checkpoint_cost=0.0)
        result = sim.run([])
        assert result.efficiency == pytest.approx(1.0)

    def test_negative_failure_time_rejected(self):
        sim = CheckpointSimulation(work=100.0, interval=50.0, checkpoint_cost=1.0)
        with pytest.raises(ValueError):
            sim.run([-5.0])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CheckpointSimulation(work=0.0, interval=1.0, checkpoint_cost=1.0)
        with pytest.raises(ValueError):
            CheckpointSimulation(work=1.0, interval=0.0, checkpoint_cost=1.0)
        with pytest.raises(ValueError):
            CheckpointSimulation(work=1.0, interval=1.0, checkpoint_cost=-1.0)

    def test_simulation_tracks_analytic_efficiency(self):
        # Long-run simulated efficiency ~ the renewal-reward model.
        from repro.checkpoint.models import expected_efficiency
        from repro.stats.distributions import Exponential

        mtbf, tau, cost = 50_000.0, 7000.0, 300.0
        dist = Exponential(scale=mtbf)
        generator = np.random.Generator(np.random.PCG64(4))
        failures = np.cumsum(dist.sample(generator, 5000))
        sim = CheckpointSimulation(
            work=30 * 86400.0, interval=tau, checkpoint_cost=cost
        )
        result = sim.run(failures)
        assert result.completed
        analytic = expected_efficiency(dist, tau, cost)
        assert result.efficiency == pytest.approx(analytic, rel=0.05)
