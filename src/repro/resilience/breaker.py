"""Per-shard circuit breaker with a degradation ladder.

After ``failure_threshold`` failures in a stage, a shard is *degraded*
to the next stage (for trace generation: ``vectorized`` → ``scalar``)
rather than retried forever; when the last stage is exhausted, the
breaker *opens* and the shard is skipped — recorded as a structured
skip in the :class:`~repro.resilience.report.RunReport` instead of
failing the whole run.  This mirrors the graceful-degradation posture
the paper observes in production HPC tooling: lose a component, not
the job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["CircuitBreaker"]

#: Failure-handling actions returned by :meth:`CircuitBreaker.record_failure`.
RETRY = "retry"
DEGRADE = "degrade"
OPEN = "open"


@dataclass
class _ShardState:
    stage_index: int = 0
    failures: int = 0


@dataclass
class CircuitBreaker:
    """Track per-shard failures and walk the degradation ladder.

    Parameters
    ----------
    stages:
        Ordered degradation ladder; a shard starts in ``stages[0]`` and
        moves right after ``failure_threshold`` failures per stage.
    failure_threshold:
        Failures tolerated in one stage before degrading.
    """

    stages: Tuple[str, ...] = ("primary",)
    failure_threshold: int = 3
    _shards: Dict[str, _ShardState] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.stages = tuple(self.stages)
        if not self.stages:
            raise ValueError("stages must be non-empty")
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )

    def _state(self, key: str) -> _ShardState:
        return self._shards.setdefault(key, _ShardState())

    def stage(self, key: str) -> Optional[str]:
        """The shard's current stage, or None when the breaker is open."""
        state = self._state(key)
        if state.stage_index >= len(self.stages):
            return None
        return self.stages[state.stage_index]

    def is_open(self, key: str) -> bool:
        return self.stage(key) is None

    def record_success(self, key: str) -> None:
        """A completed attempt closes the shard's failure streak."""
        self._state(key).failures = 0

    def record_failure(self, key: str) -> str:
        """Count a failure; returns ``"retry"``, ``"degrade"`` or ``"open"``."""
        state = self._state(key)
        if state.stage_index >= len(self.stages):
            return OPEN
        state.failures += 1
        if state.failures < self.failure_threshold:
            return RETRY
        state.stage_index += 1
        state.failures = 0
        if state.stage_index >= len(self.stages):
            return OPEN
        return DEGRADE

    def failures(self, key: str) -> int:
        return self._state(key).failures
