"""Tests for repair-time analyses (Table 2, Figure 7) and correlations."""

import numpy as np
import pytest

from repro.analysis.correlation import simultaneous_fraction, workload_rates
from repro.analysis.repair import (
    repair_by_system,
    repair_fit_study,
    repair_statistics_by_cause,
)
from repro.records.record import FailureRecord, RootCause, Workload
from repro.records.trace import FailureTrace


def record(start, duration, cause=RootCause.HARDWARE, system=20, node=0,
           workload=Workload.COMPUTE):
    return FailureRecord(
        start_time=start, end_time=start + duration, system_id=system,
        node_id=node, root_cause=cause, workload=workload,
    )


class TestTable2Small:
    def test_row_statistics(self):
        trace = FailureTrace(
            [
                record(1e8, 600.0),        # 10 min
                record(1.1e8, 1800.0),     # 30 min
                record(1.2e8, 606.0, cause=RootCause.HUMAN),
                record(1.3e8, 1200.0, cause=RootCause.HUMAN),
            ]
        )
        rows = {row.label: row for row in repair_statistics_by_cause(trace)}
        assert rows["hardware"].mean == pytest.approx(20.0)
        assert rows["hardware"].median == pytest.approx(20.0)
        assert rows["All"].n == 4

    def test_causes_without_records_omitted(self):
        trace = FailureTrace([record(1e8, 60.0), record(1.1e8, 60.0)])
        labels = [row.label for row in repair_statistics_by_cause(trace)]
        assert labels == ["hardware", "All"]

    def test_aggregate_always_last(self, small_trace):
        rows = repair_statistics_by_cause(small_trace)
        assert rows[-1].label == "All"
        assert rows[-1].n == len(small_trace)


class TestTable2OnSynthetic:
    def test_means_match_paper_order_of_magnitude(self, full_trace):
        rows = {row.label: row for row in repair_statistics_by_cause(full_trace)}
        # Paper Table 2 reference values (minutes).
        paper = {"human": 163, "environment": 572, "network": 247,
                 "software": 369, "hardware": 342}
        for cause, expected in paper.items():
            assert rows[cause].mean == pytest.approx(expected, rel=1.0)

    def test_environment_longest_median(self, full_trace):
        rows = {row.label: row for row in repair_statistics_by_cause(full_trace)}
        non_aggregate = [row for row in repair_statistics_by_cause(full_trace)
                         if row.cause is not None]
        assert rows["environment"].median == max(row.median for row in non_aggregate)

    def test_software_mean_far_above_median(self, full_trace):
        # Paper: software mean ~10x its median.
        rows = {row.label: row for row in repair_statistics_by_cause(full_trace)}
        assert rows["software"].mean / rows["software"].median > 5.0

    def test_extreme_variability_except_environment(self, full_trace):
        rows = {row.label: row for row in repair_statistics_by_cause(full_trace)}
        assert rows["environment"].squared_cv < 10.0
        assert rows["hardware"].squared_cv > 20.0
        assert rows["software"].squared_cv > 20.0

    def test_mean_near_six_hours_overall(self, full_trace):
        rows = {row.label: row for row in repair_statistics_by_cause(full_trace)}
        # Paper: ~355 min. Allow generous slack: heavy tails move means.
        assert 150 < rows["All"].mean < 900


class TestFigure7:
    def test_lognormal_best_exponential_worst(self, full_trace):
        fits = repair_fit_study(full_trace)
        assert fits[0].name == "lognormal"
        assert fits[-1].name == "exponential"

    def test_minimum_sample(self):
        trace = FailureTrace([record(1e8, 60.0)])
        with pytest.raises(ValueError):
            repair_fit_study(trace)

    def test_per_system_type_effect(self, full_trace):
        per_system = repair_by_system(full_trace)
        # Type F (systems 13-18) repairs much shorter than type G (19-21).
        f_means = [per_system[s].mean for s in range(13, 19)]
        g_means = [per_system[s].mean for s in (19, 20, 21)]
        assert max(f_means) < min(g_means)

    def test_per_system_size_insensitivity(self, full_trace):
        # Type E spans 128-1024 nodes; median repairs stay similar.
        per_system = repair_by_system(full_trace)
        e_medians = [per_system[s].median for s in range(5, 12)]
        assert max(e_medians) / min(e_medians) < 3.0

    def test_minimum_records_filter(self, full_trace):
        assert 1 not in repair_by_system(full_trace, minimum_records=100)


class TestCorrelation:
    def test_simultaneous_fraction_constructed(self):
        trace = FailureTrace(
            [record(1e8, 60.0, node=0), record(1e8, 60.0, node=1),
             record(1.1e8, 60.0, node=2)]
        )
        assert simultaneous_fraction(trace) == pytest.approx(0.5)

    def test_simultaneous_fraction_empty(self):
        with pytest.raises(ValueError):
            simultaneous_fraction(FailureTrace([record(1e8, 60.0)]))

    def test_workload_rates_per_node(self, system20_trace):
        rates = workload_rates(system20_trace, 20)
        assert rates[Workload.GRAPHICS].nodes == 3
        # Graphics nodes fail several times more per node than compute.
        ratio = (
            rates[Workload.GRAPHICS].failures_per_node
            / rates[Workload.COMPUTE].failures_per_node
        )
        assert ratio > 2.0

    def test_workload_rates_count_all_nodes(self, system20_trace):
        rates = workload_rates(system20_trace, 20)
        assert sum(r.nodes for r in rates.values()) == 49
