"""Failure rate over a system's lifetime (Figure 4, Section 5.2).

Figure 4 plots failures per month (stacked by root cause) against
system age and finds two shapes: infant-mortality decay (types E/F)
and a ramp peaking near 20 months (types D/G).  The paper notes both
differ from the textbook hardware "bathtub" and software
"drop-with-release-spikes" lifecycle curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.records.record import HIGH_LEVEL_CAUSES, RootCause
from repro.records.timeutils import SECONDS_PER_MONTH, month_index
from repro.records.trace import FailureTrace
from repro.synth.lifecycle import LifecycleShape

__all__ = ["LifecycleCurve", "monthly_failures", "classify_lifecycle"]


@dataclass(frozen=True)
class LifecycleCurve:
    """Failures per month for one system, stacked by root cause.

    Attributes
    ----------
    system_id:
        The system.
    months:
        Number of monthly bins (fixed-width, 30.4375 days).
    totals:
        Failures per month, length ``months``.
    by_cause:
        Root cause -> per-month counts (same length).
    """

    system_id: int
    months: int
    totals: Tuple[int, ...]
    by_cause: Dict[RootCause, Tuple[int, ...]]

    def smoothed(self, window: int = 6) -> np.ndarray:
        """Moving average of the totals (for shape classification)."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        values = np.asarray(self.totals, dtype=float)
        if len(values) < window:
            return values
        kernel = np.ones(window) / window
        return np.convolve(values, kernel, mode="valid")


def monthly_failures(trace: FailureTrace, system_id: int) -> LifecycleCurve:
    """Figure 4: failures per month of production age, by root cause."""
    config = trace.systems[system_id]
    start, end = config.production_window(trace.data_start, trace.data_end)
    n_months = int((end - start) // SECONDS_PER_MONTH) + 1
    totals = np.zeros(n_months, dtype=int)
    by_cause = {cause: np.zeros(n_months, dtype=int) for cause in HIGH_LEVEL_CAUSES}
    for record in trace.filter_systems([system_id]):
        month = month_index(record.start_time, start)
        if month >= n_months:  # end-of-window records land in the last bin
            month = n_months - 1
        totals[month] += 1
        by_cause[record.root_cause][month] += 1
    return LifecycleCurve(
        system_id=system_id,
        months=n_months,
        totals=tuple(int(v) for v in totals),
        by_cause={cause: tuple(int(v) for v in values) for cause, values in by_cause.items()},
    )


def classify_lifecycle(
    curve: LifecycleCurve,
    early_months: int = 8,
    peak_window: Tuple[int, int] = (12, 36),
    smoothing: int = 6,
) -> LifecycleShape:
    """Classify a lifecycle curve as infant-decay or ramp-peak.

    Heuristic matching the paper's visual classification: if the
    smoothed rate in the candidate peak window (months 12-36) exceeds
    the initial months' rate by at least 50%, the system ramped;
    otherwise it decayed from an early high.

    Raises
    ------
    ValueError
        If the curve is too short to classify (< ~2 years).
    """
    smoothed = curve.smoothed(smoothing)
    if len(smoothed) < peak_window[0] + smoothing:
        raise ValueError(
            f"system {curve.system_id}: {curve.months} months is too short to classify"
        )
    early = float(np.mean(smoothed[:early_months]))
    window_end = min(peak_window[1], len(smoothed))
    mid = float(np.max(smoothed[peak_window[0]:window_end]))
    if early <= 0:
        return LifecycleShape.RAMP_PEAK
    if mid >= 1.5 * early:
        return LifecycleShape.RAMP_PEAK
    return LifecycleShape.INFANT_DECAY
