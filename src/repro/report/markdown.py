"""GitHub-flavored markdown rendering.

Mirrors :mod:`repro.report.tables` for pipelines that publish results
as markdown (CI summaries, READMEs, experiment logs).  Includes a
one-call markdown report of the whole-paper summary.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.records.record import HIGH_LEVEL_CAUSES
from repro.records.trace import FailureTrace

__all__ = ["markdown_table", "markdown_summary"]


def markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    align: Optional[str] = None,
) -> str:
    """Render rows as a GitHub-flavored markdown table.

    Parameters mirror :func:`repro.report.tables.format_table`:
    ``align`` is a string of ``"l"``/``"r"`` per column (default:
    first left, rest right).
    """
    if not headers:
        raise ValueError("need at least one column")
    n_columns = len(headers)
    if align is None:
        align = "l" + "r" * (n_columns - 1)
    if len(align) != n_columns or any(c not in "lr" for c in align):
        raise ValueError(f"align must be {n_columns} 'l'/'r' characters, got {align!r}")

    def escape(cell: object) -> str:
        return str(cell).replace("|", "\\|")

    lines = ["| " + " | ".join(escape(h) for h in headers) + " |"]
    separators = []
    for column in range(n_columns):
        separators.append(":---" if align[column] == "l" else "---:")
    lines.append("| " + " | ".join(separators) + " |")
    for row in rows:
        if len(row) != n_columns:
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {n_columns}")
        lines.append("| " + " | ".join(escape(cell) for cell in row) + " |")
    return "\n".join(lines)


def markdown_summary(trace: FailureTrace, title: str = "Failure-trace summary") -> str:
    """A compact markdown report of the headline statistics."""
    from repro.analysis.rates import failure_rates
    from repro.analysis.repair import repair_statistics_by_cause

    sections = [f"# {title}", "", f"**Records:** {len(trace)}", ""]

    rates = [r for r in failure_rates(trace) if r.failures > 0]
    sections.append("## Failure rates")
    sections.append("")
    sections.append(markdown_table(
        ("System", "HW", "Failures/yr", "Failures/yr/proc"),
        [
            (r.system_id, r.hardware_type.value, f"{r.per_year:.1f}",
             f"{r.per_year_per_proc:.3f}")
            for r in rates
        ],
    ))
    sections.append("")

    sections.append("## Root causes")
    sections.append("")
    counts = trace.counts_by_cause()
    sections.append(markdown_table(
        ("Cause", "Failures", "Share"),
        [
            (cause.value, counts.get(cause, 0),
             f"{100 * counts.get(cause, 0) / len(trace):.1f}%")
            for cause in HIGH_LEVEL_CAUSES
        ],
    ))
    sections.append("")

    sections.append("## Repair times (minutes)")
    sections.append("")
    sections.append(markdown_table(
        ("Cause", "n", "Mean", "Median", "C^2"),
        [
            (row.label, row.n, f"{row.mean:.0f}", f"{row.median:.0f}",
             f"{row.squared_cv:.0f}")
            for row in repair_statistics_by_cause(trace)
        ],
    ))
    return "\n".join(sections)
