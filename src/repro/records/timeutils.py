"""Time representation and calendar helpers.

All timestamps in the toolkit are **seconds since the epoch origin**
``1996-01-01 00:00:00 UTC`` (:data:`EPOCH`), stored as floats.  The LANL
remedy database opened in June 1996 and the released data ends in
November 2005, so every timestamp of interest is a comfortable positive
number.

The paper's periodicity analysis (Figure 5) needs hour-of-day and
day-of-week; the lifecycle analysis (Figure 4) needs months-in-
production.  Helpers below compute these **without consulting the host
timezone**: every conversion is plain arithmetic against the fixed
:data:`EPOCH` origin, so results are byte-identical no matter what
``TZ`` the process runs under and never shift across DST transitions.
The trace's wall-clock labels are interpreted as a single fixed clock
(call it UTC), matching how the remedy database recorded times at
LANL; timezone-*aware* datetimes passed to :func:`from_datetime` are
first converted to UTC so mixed-zone inputs land on the same axis.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional, Tuple

__all__ = [
    "EPOCH",
    "SECONDS_PER_MINUTE",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_DAY",
    "SECONDS_PER_WEEK",
    "SECONDS_PER_MONTH",
    "SECONDS_PER_YEAR",
    "to_datetime",
    "from_datetime",
    "hour_of_day",
    "day_of_week",
    "month_index",
    "parse_month_year",
    "format_timestamp",
]

#: The origin of toolkit time: 1996-01-01 00:00:00 UTC, stored naive.
#: All arithmetic against it is timezone-free by construction.
EPOCH = _dt.datetime(1996, 1, 1, 0, 0, 0)

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
#: Average month length; used only for binning failures-per-month curves.
SECONDS_PER_MONTH = 30.4375 * SECONDS_PER_DAY
#: Average Gregorian year (365.25 days); used for failures-per-year rates.
SECONDS_PER_YEAR = 365.25 * SECONDS_PER_DAY

#: EPOCH was a Monday; weekday index of the origin (Monday=0 ... Sunday=6).
_EPOCH_WEEKDAY = EPOCH.weekday()


def to_datetime(timestamp: float) -> _dt.datetime:
    """Convert a toolkit timestamp to a naive (UTC) :class:`datetime.datetime`.

    The result carries no ``tzinfo``; interpret it on the toolkit's
    fixed UTC axis.  Pure timedelta arithmetic — the host timezone is
    never consulted.
    """
    return EPOCH + _dt.timedelta(seconds=float(timestamp))


def from_datetime(when: _dt.datetime) -> float:
    """Convert a :class:`datetime.datetime` to a toolkit timestamp.

    Naive datetimes are taken as already being on the toolkit's fixed
    UTC axis.  Timezone-aware datetimes are converted to UTC first, so
    ``2004-06-01 14:00 -0600`` and ``2004-06-01 20:00 UTC`` map to the
    same timestamp.
    """
    if when.tzinfo is not None:
        when = when.astimezone(_dt.timezone.utc).replace(tzinfo=None)
    return (when - EPOCH).total_seconds()


def hour_of_day(timestamp: float) -> int:
    """The UTC hour (0-23) into which ``timestamp`` falls.

    Computed by modular arithmetic on the timestamp itself — no
    ``localtime``/DST involvement, so the answer is independent of the
    host ``TZ`` environment.
    """
    seconds_into_day = float(timestamp) % SECONDS_PER_DAY
    return int(seconds_into_day // SECONDS_PER_HOUR)


def day_of_week(timestamp: float) -> int:
    """UTC weekday index of ``timestamp``: Monday=0 ... Sunday=6.

    Like :func:`hour_of_day`, derived purely from the timestamp and
    the fixed epoch weekday — independent of the host timezone.
    """
    days = int(float(timestamp) // SECONDS_PER_DAY)
    return (days + _EPOCH_WEEKDAY) % 7


def month_index(timestamp: float, origin: float = 0.0) -> int:
    """Zero-based month bin of ``timestamp`` counted from ``origin``.

    Months are fixed-width bins of :data:`SECONDS_PER_MONTH`; this is
    the binning used for failures-per-month lifecycle curves (Figure 4),
    where calendar-exact month boundaries are irrelevant.
    """
    delta = float(timestamp) - float(origin)
    if delta < 0:
        raise ValueError(f"timestamp {timestamp} precedes origin {origin}")
    return int(delta // SECONDS_PER_MONTH)


def parse_month_year(text: str, end_of_month: bool = False) -> Optional[float]:
    """Parse Table 1 production-date strings like ``"04/01"``.

    LANL's Table 1 gives production windows as MM/YY.  Years 90-99 map
    to 199x, years 00-89 to 20xx.  ``"N/A"`` and ``"now"`` return None —
    the inventory substitutes the data-collection window boundaries.

    Parameters
    ----------
    text:
        A ``MM/YY`` string, ``"N/A"`` or ``"now"`` (case-insensitive).
    end_of_month:
        If True, return the first instant of the *following* month, so
        the window ``[start, end)`` includes the whole end month.
    """
    cleaned = text.strip().lower()
    if cleaned in ("n/a", "na", "now", ""):
        return None
    month_text, _, year_text = cleaned.partition("/")
    month = int(month_text)
    year_two = int(year_text)
    year = 1900 + year_two if year_two >= 90 else 2000 + year_two
    if not 1 <= month <= 12:
        raise ValueError(f"invalid month in date string {text!r}")
    if end_of_month:
        month += 1
        if month == 13:
            month = 1
            year += 1
    return from_datetime(_dt.datetime(year, month, 1))


def format_timestamp(timestamp: float) -> str:
    """Human-readable ``YYYY-MM-DD HH:MM:SS`` rendering of a timestamp."""
    return to_datetime(timestamp).strftime("%Y-%m-%d %H:%M:%S")


def production_window(
    start_text: str, end_text: str, data_start: float, data_end: float
) -> Tuple[float, float]:
    """Resolve a Table 1 production window against the data window.

    ``"N/A"`` starts clamp to ``data_start`` (the remedy database
    opening); ``"now"`` ends clamp to ``data_end`` (November 2005).
    """
    start = parse_month_year(start_text)
    end = parse_month_year(end_text, end_of_month=True)
    resolved_start = data_start if start is None else max(start, data_start)
    resolved_end = data_end if end is None else min(end, data_end)
    if resolved_end <= resolved_start:
        raise ValueError(
            f"empty production window: {start_text!r} .. {end_text!r} "
            f"resolves to [{resolved_start}, {resolved_end})"
        )
    return resolved_start, resolved_end
