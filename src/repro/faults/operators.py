"""Seeded, composable corruption operators for chaos-testing ingest.

The injector damages a toolkit-format CSV *textually* — the same kind
of damage real exports exhibit (truncated lines, vocabulary drift,
skewed clocks, duplicated remedy tickets) — so the full parse +
policy pipeline is exercised, not just record-level validation.

Every operator is deterministic given the injector's seed, and declares
two properties the chaos tests rely on:

* ``damages_row`` — whether a strict ingest must reject the touched
  row (``RowShuffler`` is the benign counterexample: reordering is
  invisible to the sorted :class:`~repro.records.trace.FailureTrace`);
* ``keeps_original`` — whether the original row survives untouched
  (``RowDuplicator`` adds a damaged *copy*; the original stays clean).

Operators act on one CSV data line (``apply``), except the
``row_level=False`` shuffler which permutes the whole body.  The text
model assumes toolkit-written CSVs (no quoted commas), which is what
:func:`~repro.io.csv_format.write_lanl_csv` produces.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

__all__ = [
    "CorruptionOperator",
    "FieldDropper",
    "FieldGarbler",
    "EnumUnknowner",
    "ClockSkewer",
    "NegativeDurationer",
    "RowDuplicator",
    "RowTruncator",
    "UnknownSystemer",
    "UnknownNoder",
    "RowShuffler",
    "DEFAULT_OPERATORS",
    "ALL_OPERATORS",
]

#: Required numeric columns whose loss must break a strict parse.
_REQUIRED_FIELDS = ("system_id", "node_id", "start_time", "end_time")


class CorruptionOperator:
    """Base class: one way of damaging a CSV row.

    Subclasses override :meth:`apply`, which receives the split fields
    of one data line plus the header's column index map and returns the
    replacement *lines* (usually one; duplication returns two).
    """

    name: str = "corruption"
    #: Strict ingest must reject a row touched by this operator.
    damages_row: bool = True
    #: The original row survives (the damage is additive/positional).
    keeps_original: bool = False
    #: Applied per-row (True) or to the whole file body (False).
    row_level: bool = True

    def apply(
        self,
        fields: List[str],
        columns: Dict[str, int],
        rng: random.Random,
    ) -> List[str]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _join(fields: Sequence[str]) -> str:
    return ",".join(fields)


class FieldDropper(CorruptionOperator):
    """Blank out one required field (export wrote an empty cell)."""

    name = "drop-field"

    def apply(self, fields, columns, rng):
        field = rng.choice(_REQUIRED_FIELDS)
        fields[columns[field]] = ""
        return [_join(fields)]


class FieldGarbler(CorruptionOperator):
    """Replace one required field with unparseable bytes."""

    name = "garble-field"

    GARBAGE = ("#REF!", "NaN?", "??", "0x7f$", "<err>")

    def apply(self, fields, columns, rng):
        field = rng.choice(_REQUIRED_FIELDS)
        fields[columns[field]] = rng.choice(self.GARBAGE)
        return [_join(fields)]


class EnumUnknowner(CorruptionOperator):
    """Out-of-vocabulary workload or root cause (site renamed a category)."""

    name = "unknown-enum"

    VALUES = ("gremlins", "quantum", "cosmic ray", "dst error")

    def apply(self, fields, columns, rng):
        field = rng.choice(("workload", "root_cause"))
        fields[columns[field]] = rng.choice(self.VALUES)
        return [_join(fields)]


class ClockSkewer(CorruptionOperator):
    """Shift start and end far outside the observation window."""

    name = "clock-skew"

    def __init__(self, skew_seconds: float = 20 * 365.25 * 86400.0) -> None:
        self.skew_seconds = float(skew_seconds)

    def apply(self, fields, columns, rng):
        for field in ("start_time", "end_time"):
            index = columns[field]
            fields[index] = repr(float(fields[index]) + self.skew_seconds)
        return [_join(fields)]


class NegativeDurationer(CorruptionOperator):
    """Swap start and end so the repair ends before it begins."""

    name = "negative-duration"

    def apply(self, fields, columns, rng):
        start_index, end_index = columns["start_time"], columns["end_time"]
        start, end = float(fields[start_index]), float(fields[end_index])
        if end > start:
            fields[start_index], fields[end_index] = (
                fields[end_index],
                fields[start_index],
            )
        else:
            # Zero-duration rows cannot be damaged by a swap; push the
            # end backwards instead.
            fields[end_index] = repr(start - 3600.0)
        return [_join(fields)]


class RowDuplicator(CorruptionOperator):
    """Emit the row twice (a re-filed remedy ticket, same record ID)."""

    name = "duplicate-row"
    keeps_original = True

    def apply(self, fields, columns, rng):
        line = _join(fields)
        return [line, line]


class RowTruncator(CorruptionOperator):
    """Cut the line mid-row, losing the trailing required fields."""

    name = "truncate-row"

    def apply(self, fields, columns, rng):
        # Keep at most the columns before start_time, plus a partial
        # timestamp, so the required end_time can never survive.
        cut = min(columns["start_time"], columns["end_time"])
        kept = fields[:cut]
        partial = fields[cut][: max(1, len(fields[cut]) // 2)]
        return [_join(kept + [partial])]


class UnknownSystemer(CorruptionOperator):
    """Point the row at a system missing from the inventory."""

    name = "unknown-system"

    def __init__(self, system_id: int = 99) -> None:
        self.system_id = int(system_id)

    def apply(self, fields, columns, rng):
        fields[columns["system_id"]] = str(self.system_id)
        return [_join(fields)]


class UnknownNoder(CorruptionOperator):
    """Point the row at a node index beyond the system's node count."""

    name = "unknown-node"

    def __init__(self, node_id: int = 10**6) -> None:
        self.node_id = int(node_id)

    def apply(self, fields, columns, rng):
        fields[columns["node_id"]] = str(self.node_id)
        return [_join(fields)]


class RowShuffler(CorruptionOperator):
    """Permute the data lines (benign: traces sort on ingest)."""

    name = "out-of-order"
    damages_row = False
    keeps_original = True
    row_level = False

    def apply_body(self, lines: List[str], rng: random.Random) -> List[str]:
        shuffled = list(lines)
        rng.shuffle(shuffled)
        return shuffled


#: The row-damaging operators, one of each kind.
DEFAULT_OPERATORS = (
    FieldDropper(),
    FieldGarbler(),
    EnumUnknowner(),
    ClockSkewer(),
    NegativeDurationer(),
    RowDuplicator(),
    RowTruncator(),
    UnknownSystemer(),
    UnknownNoder(),
)

#: Everything, including the benign reordering.
ALL_OPERATORS = DEFAULT_OPERATORS + (RowShuffler(),)
