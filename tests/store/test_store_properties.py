"""Property-based tests for the columnar store's core invariants.

Three contracts, hunted with adversarial inputs:

1. records -> columns -> records is ``repr``-identical (including the
   ``None`` sentinels and float bit patterns);
2. every shard's manifest min/max bounds cover its rows exactly;
3. predicate pushdown never prunes a shard containing a matching row —
   with boundary values drawn *from the stored timestamps themselves*,
   so the inclusive-min/exclusive-max edges are hit constantly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.records.record import (
    FailureRecord,
    LOW_LEVEL_PARENT,
    LowLevelCause,
    RootCause,
    Workload,
)
from repro.store.manifest import Predicate, shard_stats_from_batch
from repro.store.schema import (
    STAT_COLUMNS,
    batch_from_records,
    records_from_batch,
)

CAUSES = list(RootCause)
WORKLOADS = list(Workload)
DETAILS_BY_CAUSE = {
    cause: [d for d, parent in LOW_LEVEL_PARENT.items() if parent is cause]
    for cause in RootCause
}


@st.composite
def records(draw):
    start = draw(
        st.floats(
            min_value=0.0, max_value=3.0e8, allow_nan=False,
            allow_infinity=False,
        )
    )
    duration = draw(st.floats(min_value=0.0, max_value=1e6))
    cause = draw(st.sampled_from(CAUSES))
    details = DETAILS_BY_CAUSE[cause]
    detail = (
        draw(st.sampled_from(details + [None])) if details else None
    )
    return FailureRecord(
        start_time=start,
        end_time=start + duration,
        system_id=draw(st.integers(min_value=1, max_value=22)),
        node_id=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        root_cause=cause,
        low_level_cause=detail,
        workload=draw(st.sampled_from(WORKLOADS)),
        record_id=draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=2**40))
        ),
    )


record_lists = st.lists(records(), min_size=1, max_size=50)


@settings(max_examples=80, deadline=None)
@given(record_lists)
def test_columns_round_trip_is_repr_identical(items):
    decoded = list(records_from_batch(batch_from_records(items)))
    assert [repr(r) for r in decoded] == [repr(r) for r in items]


@settings(max_examples=80, deadline=None)
@given(record_lists)
def test_shard_stats_bound_every_row(items):
    batch = batch_from_records(items)
    stats = shard_stats_from_batch(batch)
    for column in STAT_COLUMNS:
        low, high = stats[column]
        values = batch[column]
        assert low <= values.min() and values.max() <= high
        # exact, not merely covering: bounds come from the data
        assert low == values.min() and high == values.max()


@st.composite
def shard_and_predicate(draw):
    """A shard's rows plus a predicate biased toward its exact bounds."""
    items = draw(record_lists)
    starts = sorted(r.start_time for r in items)
    # Boundary hunting: draw window edges from the stored timestamps
    # themselves (plus arbitrary floats), so t_min == max(start) and
    # t_max == min(start) cases occur constantly.
    edge = st.one_of(
        st.sampled_from(starts),
        st.floats(
            min_value=0.0, max_value=4.0e8, allow_nan=False,
            allow_infinity=False,
        ),
        st.none(),
    )
    t_min = draw(edge)
    t_max = draw(edge)
    if t_min is not None and t_max is not None and t_max < t_min:
        t_min, t_max = t_max, t_min
    systems = draw(
        st.one_of(
            st.none(),
            st.sets(st.integers(min_value=1, max_value=22), min_size=1),
        )
    )
    return items, Predicate.build(t_min=t_min, t_max=t_max, systems=systems)


@settings(max_examples=120, deadline=None)
@given(shard_and_predicate())
def test_pushdown_never_prunes_a_matching_row(case):
    items, predicate = case
    batch = batch_from_records(items)
    from repro.store.manifest import ShardInfo

    shard = ShardInfo(
        name="00000", rows=len(batch), stats=shard_stats_from_batch(batch)
    )
    mask = predicate.mask(batch)
    if mask.any():
        # a shard with at least one matching row must be admitted
        assert predicate.admits_shard(shard)


@settings(max_examples=120, deadline=None)
@given(shard_and_predicate())
def test_mask_agrees_with_per_record_semantics(case):
    items, predicate = case
    batch = batch_from_records(items)
    mask = predicate.mask(batch)
    for keep, record in zip(mask.tolist(), items):
        expected = True
        if predicate.t_min is not None:
            expected &= record.start_time >= predicate.t_min
        if predicate.t_max is not None:
            expected &= record.start_time < predicate.t_max
        if predicate.systems is not None:
            expected &= record.system_id in predicate.systems
        assert keep == expected


@settings(max_examples=60, deadline=None)
@given(record_lists)
def test_exact_boundary_shards(items):
    """Half-open edges: a shard ending at t_min stays, one starting at
    t_max goes."""
    batch = batch_from_records(items)
    from repro.store.manifest import ShardInfo

    stats = shard_stats_from_batch(batch)
    shard = ShardInfo(name="00000", rows=len(batch), stats=stats)
    start_lo, start_hi = stats["start_time"]
    # t_min exactly at the shard's max start: the max row matches
    # (inclusive lower bound) -> must be admitted.
    assert Predicate.build(t_min=start_hi).admits_shard(shard)
    # t_max exactly at the shard's min start: no row can match
    # (exclusive upper bound) -> must be pruned.
    assert not Predicate.build(t_max=start_lo).admits_shard(shard)
    # One ULP above min start admits the min row again.
    bumped = np.nextafter(start_lo, np.inf)
    assert Predicate.build(t_max=float(bumped)).admits_shard(shard)
