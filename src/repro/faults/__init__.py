"""Fault injection: chaos-testing the ingest and analysis pipeline.

Related log-analytics work (Park et al.; Sîrbu & Babaoglu) treats
noisy, partially corrupt logs as the normal case.  This subpackage
provides the offense for that defense:

* :mod:`~repro.faults.operators` — composable, seeded corruption
  operators (dropped/garbled fields, unknown vocabulary, clock skew,
  duplicates, reordering, truncation, negative durations, unknown
  node/system IDs);
* :class:`~repro.faults.injector.CorruptionInjector` — applies a mix
  of operators to a trace CSV at a configurable rate, deterministically
  per seed, with a manifest of what it damaged;
* :func:`~repro.faults.chaos.chaos_roundtrip` — the end-to-end drill:
  corrupt, ingest leniently, run the full paper report, report
  survival;
* :mod:`~repro.faults.process_ops` — *process-level* chaos (kill,
  hang, slow, fail worker processes) for drilling the supervised
  generation path in :mod:`repro.resilience`.
"""

from repro.faults.chaos import ChaosReport, chaos_roundtrip
from repro.faults.injector import CorruptionInjector, CorruptionResult
from repro.faults.process_ops import (
    CHAOS_ENV_VAR,
    PROCESS_OPERATORS,
    ChaosError,
    ProcessChaos,
    chaos_env,
    make_chaos,
    maybe_inject,
)
from repro.faults.operators import (
    ALL_OPERATORS,
    DEFAULT_OPERATORS,
    ClockSkewer,
    CorruptionOperator,
    EnumUnknowner,
    FieldDropper,
    FieldGarbler,
    NegativeDurationer,
    RowDuplicator,
    RowShuffler,
    RowTruncator,
    UnknownNoder,
    UnknownSystemer,
)

__all__ = [
    "ChaosReport",
    "chaos_roundtrip",
    "CorruptionInjector",
    "CorruptionResult",
    "CorruptionOperator",
    "FieldDropper",
    "FieldGarbler",
    "EnumUnknowner",
    "ClockSkewer",
    "NegativeDurationer",
    "RowDuplicator",
    "RowShuffler",
    "RowTruncator",
    "UnknownSystemer",
    "UnknownNoder",
    "DEFAULT_OPERATORS",
    "ALL_OPERATORS",
    "CHAOS_ENV_VAR",
    "PROCESS_OPERATORS",
    "ChaosError",
    "ProcessChaos",
    "chaos_env",
    "make_chaos",
    "maybe_inject",
]
