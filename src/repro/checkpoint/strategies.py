"""Checkpoint-interval selection strategies.

A strategy maps what is known about the failure process to a
checkpoint interval.  The ablation bench compares:

* :class:`FixedIntervalStrategy` — a hand-picked interval;
* :class:`YoungStrategy` — Young's formula from the observed MTBF
  (implicitly assumes Poisson failures);
* :class:`DistributionAwareStrategy` — numerically optimal interval
  for a *fitted* failure distribution (e.g. the Weibull the paper
  finds), via the exact renewal-reward model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.checkpoint.models import daly_interval, optimal_interval, young_interval
from repro.stats.distributions import Distribution
from repro.stats.fitting import fit_all

__all__ = [
    "CheckpointStrategy",
    "FixedIntervalStrategy",
    "YoungStrategy",
    "DalyStrategy",
    "DistributionAwareStrategy",
]


class CheckpointStrategy(ABC):
    """Maps observed interarrival data to a checkpoint interval."""

    #: Short name for result tables.
    name: str = "strategy"

    @abstractmethod
    def interval(self, interarrivals: Sequence[float], checkpoint_cost: float) -> float:
        """The checkpoint interval (seconds) for the observed failures."""


class FixedIntervalStrategy(CheckpointStrategy):
    """Always the same interval, regardless of the data."""

    def __init__(self, fixed_interval: float) -> None:
        if fixed_interval <= 0:
            raise ValueError(f"interval must be positive, got {fixed_interval}")
        self._interval = fixed_interval
        self.name = f"fixed({fixed_interval:g}s)"

    def interval(self, interarrivals: Sequence[float], checkpoint_cost: float) -> float:
        return self._interval


class YoungStrategy(CheckpointStrategy):
    """Young's formula on the empirical MTBF (Poisson assumption)."""

    name = "young"

    def interval(self, interarrivals: Sequence[float], checkpoint_cost: float) -> float:
        values = np.asarray(interarrivals, dtype=float)
        if values.size == 0:
            raise ValueError("no interarrival observations")
        return young_interval(checkpoint_cost, float(np.mean(values)))


class DalyStrategy(CheckpointStrategy):
    """Daly's higher-order formula on the empirical MTBF."""

    name = "daly"

    def interval(self, interarrivals: Sequence[float], checkpoint_cost: float) -> float:
        values = np.asarray(interarrivals, dtype=float)
        if values.size == 0:
            raise ValueError("no interarrival observations")
        return daly_interval(checkpoint_cost, float(np.mean(values)))


class DistributionAwareStrategy(CheckpointStrategy):
    """Numerically optimal interval for the best-fitting distribution.

    Fits the paper's four candidates to the interarrival data, takes
    the NLL winner, and optimizes the renewal-reward efficiency under
    it.  With Weibull-shaped (decreasing-hazard) failures this selects
    noticeably shorter intervals than Young's formula and wastes less
    work — the quantitative version of the paper's warning that the
    Poisson assumption "is suspect".
    """

    name = "distribution-aware"

    def __init__(self, restart_cost: float = 0.0) -> None:
        if restart_cost < 0:
            raise ValueError(f"restart_cost must be >= 0, got {restart_cost}")
        self._restart_cost = restart_cost

    def fitted(self, interarrivals: Sequence[float]) -> Distribution:
        """The best-fitting distribution for the observations."""
        return fit_all(interarrivals, zero_policy="clamp")[0].distribution

    def interval(self, interarrivals: Sequence[float], checkpoint_cost: float) -> float:
        distribution = self.fitted(interarrivals)
        return optimal_interval(distribution, checkpoint_cost, self._restart_cost)
