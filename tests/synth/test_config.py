"""Tests for GeneratorConfig validation and normalization."""

import pytest

from repro.records.record import RootCause
from repro.records.system import HardwareType
from repro.synth.config import GeneratorConfig


class TestValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tbf_shape", 0.0),
            ("tbf_shape", 3.0),
            ("diurnal_amplitude", 1.0),
            ("diurnal_amplitude", -0.1),
            ("weekend_factor", 0.0),
            ("weekend_factor", 1.5),
            ("node_sigma", -1.0),
            ("burst_prob", 1.0),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ValueError):
            GeneratorConfig(**{field: value})


class TestNormalization:
    def test_cause_mix_normalized(self):
        config = GeneratorConfig()
        for hardware_type, mix in config.cause_mix.items():
            assert sum(mix.values()) == pytest.approx(1.0)

    def test_detail_tables_normalized(self):
        config = GeneratorConfig()
        for table in config.hardware_detail.values():
            assert sum(table.values()) == pytest.approx(1.0)
        for table in config.software_detail.values():
            assert sum(table.values()) == pytest.approx(1.0)
        assert sum(config.network_detail.values()) == pytest.approx(1.0)
        assert sum(config.environment_detail.values()) == pytest.approx(1.0)
        assert sum(config.human_detail.values()) == pytest.approx(1.0)

    def test_raw_weights_accepted(self):
        # Users can pass unnormalized weights.
        mix = {hw: dict(m) for hw, m in GeneratorConfig().cause_mix.items()}
        mix[HardwareType.E] = {RootCause.HARDWARE: 3.0, RootCause.SOFTWARE: 1.0}
        config = GeneratorConfig(cause_mix=mix)
        assert config.cause_mix[HardwareType.E][RootCause.HARDWARE] == pytest.approx(0.75)

    def test_every_hardware_type_covered(self):
        config = GeneratorConfig()
        for hardware_type in HardwareType:
            assert hardware_type in config.cause_mix
            assert hardware_type in config.rate_per_proc_year
            assert hardware_type in config.repair_type_factor


class TestPaperCalibration:
    """The defaults encode specific statements of the paper."""

    def test_type_e_unknown_below_5_percent(self):
        config = GeneratorConfig()
        assert config.cause_mix[HardwareType.E][RootCause.UNKNOWN] < 0.05

    def test_type_d_hardware_software_nearly_equal(self):
        config = GeneratorConfig()
        mix = config.cause_mix[HardwareType.D]
        assert abs(mix[RootCause.HARDWARE] - mix[RootCause.SOFTWARE]) < 0.05

    def test_hardware_is_largest_everywhere(self):
        config = GeneratorConfig()
        for mix in config.cause_mix.values():
            assert mix[RootCause.HARDWARE] == max(mix.values())

    def test_system2_rate_near_17_per_year(self):
        config = GeneratorConfig()
        assert config.rate_per_proc_year[HardwareType.B] * 32 == pytest.approx(17.6, abs=2)

    def test_system7_rate_near_1159_per_year(self):
        config = GeneratorConfig()
        assert config.rate_per_proc_year[HardwareType.E] * 4096 == pytest.approx(1150, rel=0.1)

    def test_repair_mean_median_pairs_are_table2(self):
        config = GeneratorConfig()
        assert config.repair_mean_median_min[RootCause.ENVIRONMENT] == (572.0, 269.0)
        assert config.repair_mean_median_min[RootCause.HARDWARE] == (342.0, 64.0)
