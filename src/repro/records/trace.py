"""The :class:`FailureTrace` container.

A trace is an immutable, chronologically sorted sequence of
:class:`~repro.records.record.FailureRecord` plus the system inventory
it refers to.  Every analysis in :mod:`repro.analysis` consumes a trace;
the synthetic generator and the CSV loader both produce one.

Filtering methods return new traces sharing the same inventory, so
analysis code composes naturally::

    early = trace.filter_systems([20]).between(t0, t1)
    node_view = early.filter_nodes([22])
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.records.inventory import DATA_END, DATA_START, LANL_SYSTEMS
from repro.records.record import FailureRecord, RootCause, Workload
from repro.records.system import HardwareType, SystemConfig

__all__ = ["FailureTrace"]


class FailureTrace:
    """An immutable, sorted collection of failure records.

    Parameters
    ----------
    records:
        Failure records in any order; they are sorted by start time.
    systems:
        Inventory mapping system ID to :class:`SystemConfig`.  Defaults
        to the LANL Table 1 inventory.
    data_start / data_end:
        The observation window in toolkit seconds.  Defaults to the
        LANL data-collection window (June 1996 - November 2005).
    """

    def __init__(
        self,
        records: Iterable[FailureRecord],
        systems: Optional[Mapping[int, SystemConfig]] = None,
        data_start: float = DATA_START,
        data_end: float = DATA_END,
    ) -> None:
        self._records: Tuple[FailureRecord, ...] = tuple(
            sorted(records, key=lambda record: (record.start_time, record.system_id, record.node_id))
        )
        self._systems: Dict[int, SystemConfig] = dict(systems if systems is not None else LANL_SYSTEMS)
        self._data_start = float(data_start)
        self._data_end = float(data_end)

    # Basic protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FailureRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> FailureRecord:
        return self._records[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FailureTrace({len(self._records)} records, "
            f"{len(self._systems)} systems)"
        )

    @property
    def records(self) -> Tuple[FailureRecord, ...]:
        """The sorted records."""
        return self._records

    @property
    def systems(self) -> Dict[int, SystemConfig]:
        """The inventory (copy-on-read is not needed; treat as read-only)."""
        return self._systems

    @property
    def data_start(self) -> float:
        """Start of the observation window."""
        return self._data_start

    @property
    def data_end(self) -> float:
        """End of the observation window."""
        return self._data_end

    # Derived vectors ----------------------------------------------------------

    def start_times(self) -> np.ndarray:
        """Start times of all records as a float array (sorted)."""
        return np.array([record.start_time for record in self._records], dtype=float)

    def repair_times(self) -> np.ndarray:
        """Repair durations (seconds) of all records."""
        return np.array([record.repair_time for record in self._records], dtype=float)

    def repair_minutes(self) -> np.ndarray:
        """Repair durations in minutes (the paper's repair-time unit)."""
        return self.repair_times() / 60.0

    def interarrival_times(self) -> np.ndarray:
        """Differences between consecutive failure start times (seconds).

        For a single-node filtered trace this is the node view of time
        between failures; for a whole-system trace it is the system-wide
        view (Section 5.3).  Zero interarrivals indicate simultaneous
        failures on different nodes.
        """
        starts = self.start_times()
        if len(starts) < 2:
            return np.empty(0, dtype=float)
        return np.diff(starts)

    # Filters ------------------------------------------------------------------

    def _derive(self, records: Iterable[FailureRecord]) -> "FailureTrace":
        return FailureTrace(
            records, systems=self._systems, data_start=self._data_start, data_end=self._data_end
        )

    def filter(self, predicate: Callable[[FailureRecord], bool]) -> "FailureTrace":
        """A new trace with the records satisfying ``predicate``."""
        return self._derive(record for record in self._records if predicate(record))

    def filter_systems(self, system_ids: Sequence[int]) -> "FailureTrace":
        """Restrict to the given system IDs."""
        wanted = frozenset(system_ids)
        return self._derive(record for record in self._records if record.system_id in wanted)

    def filter_nodes(self, node_ids: Sequence[int]) -> "FailureTrace":
        """Restrict to the given node IDs (across all systems present)."""
        wanted = frozenset(node_ids)
        return self._derive(record for record in self._records if record.node_id in wanted)

    def filter_hardware(self, hardware_type: HardwareType) -> "FailureTrace":
        """Restrict to systems of the given hardware type."""
        wanted = frozenset(
            system_id
            for system_id, config in self._systems.items()
            if config.hardware_type is hardware_type
        )
        return self._derive(record for record in self._records if record.system_id in wanted)

    def filter_cause(self, root_cause: RootCause) -> "FailureTrace":
        """Restrict to records with the given high-level root cause."""
        return self._derive(
            record for record in self._records if record.root_cause is root_cause
        )

    def filter_workload(self, workload: Workload) -> "FailureTrace":
        """Restrict to records whose node ran the given workload."""
        return self._derive(
            record for record in self._records if record.workload is workload
        )

    def between(self, start: float, end: float) -> "FailureTrace":
        """Restrict to records starting within ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        return self._derive(
            record for record in self._records if start <= record.start_time < end
        )

    def merge(self, other: "FailureTrace") -> "FailureTrace":
        """Union of two traces over the same inventory."""
        return self._derive(list(self._records) + list(other.records))

    # Grouping -----------------------------------------------------------------

    def by_system(self) -> Dict[int, "FailureTrace"]:
        """Split into per-system traces (only systems with records)."""
        buckets: Dict[int, List[FailureRecord]] = {}
        for record in self._records:
            buckets.setdefault(record.system_id, []).append(record)
        return {system_id: self._derive(records) for system_id, records in buckets.items()}

    def by_node(self) -> Dict[Tuple[int, int], "FailureTrace"]:
        """Split into per-(system, node) traces."""
        buckets: Dict[Tuple[int, int], List[FailureRecord]] = {}
        for record in self._records:
            buckets.setdefault((record.system_id, record.node_id), []).append(record)
        return {key: self._derive(records) for key, records in buckets.items()}

    def counts_by_cause(self) -> Dict[RootCause, int]:
        """Number of records per high-level root cause."""
        counts: Dict[RootCause, int] = {}
        for record in self._records:
            counts[record.root_cause] = counts.get(record.root_cause, 0) + 1
        return counts

    def downtime_by_cause(self) -> Dict[RootCause, float]:
        """Total downtime (seconds) per high-level root cause."""
        downtime: Dict[RootCause, float] = {}
        for record in self._records:
            downtime[record.root_cause] = (
                downtime.get(record.root_cause, 0.0) + record.repair_time
            )
        return downtime

    def failures_per_node(self, system_id: int) -> Dict[int, int]:
        """Failure count for every node of ``system_id`` (zeros included)."""
        config = self._systems.get(system_id)
        if config is None:
            raise KeyError(f"system {system_id} not in inventory")
        counts = {node_id: 0 for node_id in range(config.node_count)}
        for record in self._records:
            if record.system_id == system_id:
                counts[record.node_id] = counts.get(record.node_id, 0) + 1
        return counts
