"""Failure rates by hour of day and day of week (Figure 5).

The paper finds peak-hour failure rates about twice the overnight
minimum and weekday rates nearly twice weekend rates, and interprets
both as correlation between failure rate and workload
intensity/variety.  It explicitly rules out delayed detection (there
is no Monday spike; detection is automated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.errors import DegenerateSampleError
from repro.records.timeutils import day_of_week, hour_of_day
from repro.records.trace import FailureTrace

__all__ = [
    "failures_by_hour",
    "failures_by_weekday",
    "PeriodicityStudy",
    "periodicity_study",
]

WEEKDAY_NAMES = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def failures_by_hour(trace: FailureTrace) -> np.ndarray:
    """Figure 5 (left): failure counts per hour of day (length 24)."""
    counts = np.zeros(24, dtype=int)
    for record in trace:
        counts[hour_of_day(record.start_time)] += 1
    return counts


def failures_by_weekday(trace: FailureTrace) -> np.ndarray:
    """Figure 5 (right): failure counts per weekday, Monday first."""
    counts = np.zeros(7, dtype=int)
    for record in trace:
        counts[day_of_week(record.start_time)] += 1
    return counts


@dataclass(frozen=True)
class PeriodicityStudy:
    """Both Figure 5 panels plus the paper's headline ratios.

    Attributes
    ----------
    hourly:
        Counts per hour of day (24 values).
    weekday:
        Counts per day of week (Monday first, 7 values).
    peak_trough_ratio:
        Max/min of the hourly counts (~2 in the paper).
    weekday_weekend_ratio:
        Mean weekday count / mean weekend count (~2 in the paper).
    monday_spike:
        Monday count / mean of Tuesday-Friday.  Near 1 rules out the
        delayed-detection explanation, as in the paper.
    """

    hourly: Tuple[int, ...]
    weekday: Tuple[int, ...]
    peak_trough_ratio: float
    weekday_weekend_ratio: float
    monday_spike: float

    @property
    def peak_hour(self) -> int:
        """Hour of day with the most failures."""
        return int(np.argmax(self.hourly))

    @property
    def trough_hour(self) -> int:
        """Hour of day with the fewest failures."""
        return int(np.argmin(self.hourly))


def periodicity_study(trace: FailureTrace) -> PeriodicityStudy:
    """Compute Figure 5 and its ratios for a trace."""
    hourly = failures_by_hour(trace)
    weekday = failures_by_weekday(trace)
    if hourly.min() == 0 or weekday.min() == 0:
        raise DegenerateSampleError("trace too small for a periodicity study (empty bins)")
    weekday_mean = float(np.mean(weekday[:5]))
    weekend_mean = float(np.mean(weekday[5:]))
    return PeriodicityStudy(
        hourly=tuple(int(v) for v in hourly),
        weekday=tuple(int(v) for v in weekday),
        peak_trough_ratio=float(hourly.max() / hourly.min()),
        weekday_weekend_ratio=weekday_mean / weekend_mean,
        monday_spike=float(weekday[0] / np.mean(weekday[1:5])),
    )
