"""The always-on analytics service: stdlib asyncio HTTP over a store.

``repro serve <store-dir>`` answers the core out-of-core analytics as
versioned JSON endpoints.  The design goal is the robustness posture
of the ISSUE: *a slow or damaged store degrades responses, it never
hangs or crashes the service.*

- **Admission control** (:mod:`repro.serve.admission`): bounded
  concurrency plus a capped wait queue; beyond that, HTTP 429 with
  ``Retry-After`` — load is shed, not queued to death.  While
  draining, sheds carry no retry hint (the instance is going away).
- **Deadlines**: every query carries a
  :class:`~repro.resilience.deadline.Deadline` (default budget, per
  request override via ``?deadline_ms=``, hard cap) that the store
  scan checks at chunk boundaries; a blown budget yields a ``partial``
  answer covering the scanned prefix.
- **Degraded serving** (:mod:`repro.serve.gateway`): primary strict
  read → circuit breaker → skip-read with coverage → last-good stale
  result.  Every response carries explicit ``degraded`` / ``stale`` /
  ``coverage`` metadata.
- **Graceful drain**: SIGTERM stops accepting connections, lets
  in-flight requests finish (bounded by ``drain_grace``), flushes
  metrics, exits 0.

The HTTP layer is deliberately minimal: GET only, ``Connection:
close``, JSON bodies.  It is an analytics sidecar, not a web server.

Observability: request counters and latency histograms always flow to
``obs.metrics()``.  Spans fire too when a tracer is installed, but the
span stack is single-threaded by design — enable tracing only with
``max_concurrency=1`` and sequential traffic (debugging), as the
concurrent path would interleave span open/close across requests.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro import obs
from repro.resilience.atomic import atomic_write_json
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.serve.admission import AdmissionController, AdmissionShed
from repro.serve.cache import ResultCache
from repro.serve.gateway import Query, QueryResult, StoreGateway, StoreUnavailable
from repro.serve.router import ROUTES, BadRequest, Route, resolve
from repro.store.manifest import StoreError
from repro.store.reader import DEFAULT_BATCH_ROWS

__all__ = ["ServeConfig", "AnalyticsServer", "ServerThread"]

_JSON_HEADERS = "Content-Type: application/json; charset=utf-8"
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}
#: Endpoints that execute store scans and therefore pass admission.
_QUERY_ROUTES = ("/v1/systems", "/v1/summary", "/v1/analyze", "/v1/report")


@dataclass
class ServeConfig:
    """Knobs for :class:`AnalyticsServer` (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8080
    max_concurrency: int = 4
    max_queue: int = 16
    #: Default per-request scan budget (seconds); ``?deadline_ms=``
    #: overrides per request, capped at ``max_deadline_seconds``.
    deadline_seconds: float = 5.0
    max_deadline_seconds: float = 60.0
    #: Budget for reading the request line + headers.
    header_timeout: float = 5.0
    #: How long a drain waits for in-flight requests before giving up.
    drain_grace: float = 10.0
    cache_entries: int = 256
    breaker_threshold: int = 3
    #: Open-breaker cooldown before a half-open probe re-tries the
    #: primary read path.
    breaker_cooldown: float = 5.0
    batch_rows: int = DEFAULT_BATCH_ROWS
    #: When set, the final metrics snapshot is written here on drain.
    metrics_path: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.max_deadline_seconds < self.deadline_seconds:
            raise ValueError(
                "max_deadline_seconds must be >= deadline_seconds "
                f"({self.max_deadline_seconds} < {self.deadline_seconds})"
            )


class AnalyticsServer:
    """One store directory served over HTTP until drained."""

    def __init__(self, root, config: Optional[ServeConfig] = None) -> None:
        self.root = Path(root)
        self.config = config or ServeConfig()
        self.gateway = StoreGateway(
            root=self.root,
            breaker=CircuitBreaker(
                stages=("primary",),
                failure_threshold=self.config.breaker_threshold,
                cooldown_seconds=self.config.breaker_cooldown,
            ),
            cache=ResultCache(max_entries=self.config.cache_entries),
            batch_rows=self.config.batch_rows,
        )
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            max_queue=self.config.max_queue,
        )
        self.port: Optional[int] = None
        self.requests = 0
        self.responses: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = None
        self._inflight: set = set()
        self._drain: Optional[asyncio.Event] = None
        self._started = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> int:
        """Bind and listen; returns the bound port (real one for port 0)."""
        from concurrent.futures import ThreadPoolExecutor

        self._drain = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        return self.port

    def request_drain(self) -> None:
        """Begin graceful shutdown (signal handlers / ServerThread call this)."""
        if self._drain is not None:
            self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain is not None and self._drain.is_set()

    async def serve_until_drained(self) -> None:
        """Serve until :meth:`request_drain`, then finish in-flight work."""
        assert self._server is not None and self._drain is not None
        await self._drain.wait()
        # Stop accepting: new connections are refused from here on.
        self._server.close()
        await self._server.wait_closed()
        pending = [task for task in self._inflight if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_grace)
        self._executor.shutdown(wait=True)
        self._flush_metrics()

    async def run_async(self) -> None:
        await self.start()
        await self.serve_until_drained()

    def run(self) -> int:
        """Blocking CLI entry: serve until SIGTERM/SIGINT, drain, exit 0."""

        async def _main() -> None:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_drain)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            port = await self.start()
            print(
                f"repro serve: listening on http://{self.config.host}:{port} "
                f"(store {self.root}, concurrency "
                f"{self.config.max_concurrency}+{self.config.max_queue} queued)",
                flush=True,
            )
            await self.serve_until_drained()

        asyncio.run(_main())
        print(
            f"repro serve: drained cleanly after {self.requests} request(s)",
            flush=True,
        )
        return 0

    def _flush_metrics(self) -> None:
        registry = obs.metrics()
        registry.gauge("serve.requests_total").set(self.requests)
        if self.config.metrics_path is not None and obs.enabled():
            atomic_write_json(Path(self.config.metrics_path), registry.to_dict())

    # -- request handling --------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._inflight.add(task)
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # client went away or stalled; nothing to answer
        except Exception as error:  # pragma: no cover - defensive boundary
            self._count("error")
            obs.metrics().counter("serve.internal_errors").add(1)
            try:
                await self._respond(
                    writer, 500, {"error": f"internal error: {error}"}
                )
            except ConnectionError:
                pass
        finally:
            self._inflight.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, reader, writer) -> None:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=self.config.header_timeout
        )
        if not request_line.strip():
            return
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            await self._respond(writer, 400, {"error": "malformed request line"})
            self._count("client_error")
            return
        method, target = parts[0], parts[1]
        # Drain the (ignored) headers so the socket is read cleanly.
        for _ in range(100):
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.header_timeout
            )
            if not line.strip():
                break
        self.requests += 1
        obs.metrics().counter("serve.requests").add(1)
        start = time.monotonic()
        try:
            route = resolve(method, target)
        except KeyError:
            self._count("not_found")
            await self._respond(
                writer, 404,
                {"error": f"no such endpoint: {target}", "routes": list(ROUTES)},
            )
            return
        except BadRequest as error:
            self._count("client_error")
            status = 405 if "not allowed" in str(error) else 400
            await self._respond(writer, status, {"error": str(error)})
            return
        with obs.span("serve.request", endpoint=route.name):
            status, payload = await self._dispatch(route, start)
        obs.metrics().histogram("serve.latency_ms").observe(
            (time.monotonic() - start) * 1000.0
        )
        await self._respond(writer, status, payload)

    async def _dispatch(self, route: Route, start: float):
        if route.name == "/healthz":
            return 200, {
                "status": "draining" if self.draining else "ok",
                "inflight": len(self._inflight),
            }
        if route.name == "/readyz":
            return await self._readyz()
        if route.name == "/v1/stats":
            return 200, self.stats()
        return await self._query(route, start)

    async def _readyz(self):
        loop = asyncio.get_running_loop()
        try:
            healing = await loop.run_in_executor(
                self._executor, self.gateway.readiness
            )
        except (StoreError, OSError) as error:
            self._count("unavailable")
            return 503, {"status": "unavailable", "error": str(error)}
        status = "degraded" if healing["quarantined_shards"] else "ok"
        self._count(status if status == "degraded" else "ok")
        return 200, {"status": status, "healing": healing}

    def _deadline_for(self, route: Route) -> Deadline:
        budget = route.deadline_seconds
        if budget is None:
            budget = self.config.deadline_seconds
        budget = min(budget, self.config.max_deadline_seconds)
        return Deadline(budget)

    async def _query(self, route: Route, start: float):
        loop = asyncio.get_running_loop()
        try:
            async with self.admission.slot():
                deadline = self._deadline_for(route)
                if route.name == "/v1/systems":
                    try:
                        data = await loop.run_in_executor(
                            self._executor, self.gateway.systems
                        )
                    except (StoreError, OSError) as error:
                        self._count("unavailable")
                        return 503, {
                            "error": f"store unavailable: {error}",
                            "meta": self._meta(route, None, start),
                        }
                    self._count("ok")
                    result = QueryResult(data=data, cache="none")
                    result.breaker = self.gateway.breaker_state()
                    return 200, {
                        "data": data,
                        "meta": self._meta(route, result, start),
                    }
                try:
                    result = await loop.run_in_executor(
                        self._executor, self.gateway.query,
                        route.query, deadline,
                    )
                except StoreUnavailable as error:
                    self._count("unavailable")
                    obs.metrics().counter("serve.unavailable").add(1)
                    return 503, {
                        "error": str(error),
                        "meta": self._meta(route, None, start),
                    }
        except AdmissionShed:
            self._count("shed")
            obs.metrics().counter("serve.shed").add(1)
            if self.draining:
                # No retry hint while draining: this instance is going
                # away, so "come back in a second" would steer clients
                # straight into a dead endpoint.  The body says why.
                return 429, {
                    "error": "overloaded: request shed at admission",
                    "draining": True,
                }
            return 429, {
                "error": "overloaded: request shed at admission",
                "retry_after": 1,
            }
        self._count(result.status())
        obs.metrics().counter(f"serve.responses_{result.status()}").add(1)
        return 200, {
            "data": result.data,
            "meta": self._meta(route, result, start),
        }

    def _meta(
        self, route: Route, result: Optional[QueryResult], start: float
    ) -> dict:
        deadline = route.deadline_seconds
        if deadline is None:
            deadline = self.config.deadline_seconds
        meta = {
            "endpoint": route.name,
            "status": result.status() if result else "error",
            "degraded": bool(result.degraded) if result else False,
            "stale": bool(result.stale) if result else False,
            "partial": bool(result.partial) if result else False,
            "coverage": result.coverage if result else None,
            "cache": result.cache if result else "none",
            "breaker": result.breaker if result else self.gateway.breaker_state(),
            "generation": result.generation if result else None,
            "deadline_ms": min(deadline, self.config.max_deadline_seconds) * 1000.0,
            "elapsed_ms": (time.monotonic() - start) * 1000.0,
        }
        return meta

    def _count(self, outcome: str) -> None:
        self.responses[outcome] = self.responses.get(outcome, 0) + 1

    def stats(self) -> dict:
        """The ``/v1/stats`` payload."""
        return {
            "store": str(self.root),
            "uptime_seconds": time.monotonic() - self._started,
            "requests": self.requests,
            "inflight": len(self._inflight),
            "draining": self.draining,
            "responses": dict(sorted(self.responses.items())),
            "admission": self.admission.to_dict(),
            "gateway": self.gateway.to_dict(),
            "config": {
                "max_concurrency": self.config.max_concurrency,
                "max_queue": self.config.max_queue,
                "deadline_seconds": self.config.deadline_seconds,
                "breaker_cooldown": self.config.breaker_cooldown,
            },
        }

    # -- response writing --------------------------------------------------

    async def _respond(self, writer, status: int, payload: dict) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        reason = _REASONS.get(status, "OK")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            _JSON_HEADERS,
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if status == 429 and not self.draining:
            headers.append("Retry-After: 1")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)
        await writer.drain()


class ServerThread:
    """Run an :class:`AnalyticsServer` on a background thread.

    The test-suite / bench / chaos-campaign harness: enters the context
    manager, gets ``host``/``port`` of a live server bound to an
    ephemeral port, and on exit triggers the same graceful drain the
    SIGTERM path uses.
    """

    def __init__(self, root, config: Optional[ServeConfig] = None) -> None:
        config = config or ServeConfig(port=0)
        config.port = 0 if config.port == 8080 else config.port
        self.server = AnalyticsServer(root, config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve thread failed to start in 30s")
        if self._error is not None:
            raise RuntimeError("serve thread failed to start") from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            self._error = error
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_drained()

    def stop(self) -> None:
        """Trigger a graceful drain and join the server thread."""
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_drain)
        self._thread.join(timeout=60)
        if self._thread.is_alive():  # pragma: no cover - drain wedged
            raise RuntimeError("serve thread did not drain within 60s")
