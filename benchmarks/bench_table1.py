"""Table 1: overview of the 22 LANL systems.

Regenerates the systems-inventory table and checks the published
totals (4750 nodes; processors within 0.5% of 24101).
"""

from repro.records.inventory import total_nodes, total_processors
from repro.report import render_table1


def test_table1(benchmark, trace):
    text = benchmark(render_table1, trace)
    print("\n" + text)
    assert total_nodes() == 4750
    assert abs(total_processors() - 24101) / 24101 < 0.005
    assert "Table 1" in text
    # All 22 systems present.
    for system_id in range(1, 23):
        assert f"\n{system_id} " in text or text.startswith(f"{system_id} ")
