"""repro — an HPC failure-data analysis toolkit.

A production-quality reproduction of *"A large-scale study of failures
in high-performance computing systems"* (Schroeder & Gibson, DSN 2006):
the LANL failure-trace data model, a calibrated synthetic trace
generator, the paper's complete statistical methodology, and downstream
applications (checkpoint-interval selection, reliability-aware
scheduling) that consume failure characteristics.

Quickstart
----------
>>> import repro
>>> trace = repro.generate_lanl_trace(seed=1)           # doctest: +SKIP
>>> fits = repro.fit_all(trace.repair_minutes(), zero_policy="drop")  # doctest: +SKIP
>>> fits[0].name                                        # doctest: +SKIP
'lognormal'

Subpackages
-----------
records, io, stats, synth, analysis, simulate, checkpoint, sched, report.
"""

from repro.records import (
    DATA_END,
    DATA_START,
    FailureRecord,
    FailureTrace,
    HardwareType,
    LANL_SYSTEMS,
    RootCause,
    Workload,
)
from repro.stats import (
    EmpiricalDistribution,
    Exponential,
    FitResult,
    Gamma,
    LogNormal,
    Weibull,
    fit_all,
)

__version__ = "1.0.0"

__all__ = [
    "FailureRecord",
    "FailureTrace",
    "RootCause",
    "Workload",
    "HardwareType",
    "LANL_SYSTEMS",
    "DATA_START",
    "DATA_END",
    "EmpiricalDistribution",
    "FitResult",
    "Exponential",
    "Weibull",
    "Gamma",
    "LogNormal",
    "fit_all",
    "generate_lanl_trace",
    "__version__",
]


def generate_lanl_trace(seed: int = 0, **kwargs):
    """Generate the full synthetic LANL trace (all 22 systems).

    Convenience wrapper around :class:`repro.synth.TraceGenerator`; see
    that class for the configuration knobs.
    """
    from repro.synth import TraceGenerator

    return TraceGenerator(seed=seed, **kwargs).generate()
