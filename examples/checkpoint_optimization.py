#!/usr/bin/env python3
"""Checkpoint-interval selection on real failure statistics.

The paper's motivation: checkpoint-strategy design depends on the
statistical properties of failures, and the classic analysis assumes
Poisson failures — which Section 5.3 shows is wrong (Weibull, shape
0.7-0.8, decreasing hazard).

This example:

1. extracts the system-wide time-between-failures of system 20's
   mature era and fits the four standard distributions;
2. compares the checkpoint interval chosen by Young's formula (Poisson
   assumption) against the renewal-reward optimum under the fitted
   distribution, sweeping the checkpoint cost;
3. replays both choices against the actual failure sequence with the
   trace-driven simulator.

Usage::

    python examples/checkpoint_optimization.py
"""

import datetime as dt

from repro import generate_lanl_trace
from repro.analysis.interarrival import split_eras, system_interarrivals
from repro.checkpoint import (
    CheckpointSimulation,
    expected_efficiency,
    optimal_interval,
    young_interval,
)
from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.report import format_table


def main() -> int:
    print("Generating system 20 ...")
    trace = generate_lanl_trace(seed=1).filter_systems([20])
    era = from_datetime(dt.datetime(2000, 1, 1))
    _early, late = split_eras(trace, era)
    study = system_interarrivals(late, 20)
    fitted = study.best.distribution
    mtbf = study.summary.mean
    print(f"  {study.n} interarrivals, MTBF {mtbf / 3600:.1f} h")
    print(f"  best fit: {fitted.describe()} (hazard {study.hazard})\n")

    # Sweep checkpoint cost: Poisson-assumed vs distribution-aware.
    rows = []
    for cost in (60.0, 300.0, 600.0, 1800.0, 3600.0):
        tau_young = young_interval(cost, mtbf)
        tau_optimal = optimal_interval(fitted, cost)
        eff_young = expected_efficiency(fitted, tau_young, cost)
        eff_optimal = expected_efficiency(fitted, tau_optimal, cost)
        rows.append(
            (
                f"{cost:.0f}",
                f"{tau_young:.0f}",
                f"{tau_optimal:.0f}",
                f"{eff_young:.4f}",
                f"{eff_optimal:.4f}",
                f"{100 * (eff_optimal - eff_young):.3f}",
            )
        )
    print(
        format_table(
            ("ckpt cost (s)", "Young tau (s)", "optimal tau (s)",
             "eff (Young)", "eff (optimal)", "gap (pp)"),
            rows,
            title="Analytic comparison under the fitted TBF distribution",
        )
    )

    # Trace replay: a 60-day job against the real failure sequence.
    cost = 600.0
    starts = late.start_times()
    offsets = starts - starts[0]
    print("\nTrace replay (60-day job, 10-min checkpoints, 30-min restarts):")
    for name, tau in (
        ("young", young_interval(cost, mtbf)),
        ("optimal", optimal_interval(fitted, cost)),
    ):
        sim = CheckpointSimulation(
            work=60 * SECONDS_PER_DAY, interval=tau,
            checkpoint_cost=cost, restart_cost=1800.0,
        )
        result = sim.run(offsets, horizon=float(offsets[-1]))
        print(
            f"  {name:<8} tau={tau:7.0f}s  efficiency={result.efficiency:.4f}  "
            f"failures={result.failures_hit}  lost={result.lost_work / 3600:.1f}h"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
