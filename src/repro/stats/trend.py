"""Mann-Kendall trend test.

A nonparametric complement to the lifecycle classification
(Figure 4): is a monthly failure-count series trending up or down,
without assuming a functional form?  Robust to the heavy month-to-month
noise the data exhibits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np
from scipy import special

__all__ = ["TrendResult", "mann_kendall"]

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True)
class TrendResult:
    """Outcome of a Mann-Kendall test.

    Attributes
    ----------
    statistic:
        The S statistic: #concordant - #discordant pairs.
    z:
        Normal approximation of S (tie-corrected variance).
    p_value:
        Two-sided p-value.
    tau:
        Kendall's tau (S normalized to [-1, 1]).
    """

    statistic: int
    z: float
    p_value: float
    tau: float

    @property
    def direction(self) -> str:
        """"increasing", "decreasing" or "no trend" at the 5% level."""
        if self.p_value >= 0.05:
            return "no trend"
        return "increasing" if self.statistic > 0 else "decreasing"


def mann_kendall(series: ArrayLike) -> TrendResult:
    """Two-sided Mann-Kendall trend test.

    Parameters
    ----------
    series:
        The time-ordered observations (>= 4 points).
    """
    values = np.asarray(series, dtype=float)
    if values.size < 4:
        raise ValueError(f"need at least 4 observations, got {values.size}")
    n = values.size
    # S = sum over pairs of sign(x_j - x_i), j > i.
    diffs = np.sign(values[None, :] - values[:, None])
    s = int(np.sum(np.triu(diffs, k=1)))
    # Tie-corrected variance.
    _, tie_counts = np.unique(values, return_counts=True)
    tie_term = float(np.sum(tie_counts * (tie_counts - 1) * (2 * tie_counts + 5)))
    variance = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    if variance <= 0:
        # All values identical: no evidence of any trend.
        return TrendResult(statistic=0, z=0.0, p_value=1.0, tau=0.0)
    if s > 0:
        z = (s - 1) / math.sqrt(variance)
    elif s < 0:
        z = (s + 1) / math.sqrt(variance)
    else:
        z = 0.0
    p = float(special.erfc(abs(z) / math.sqrt(2.0)))
    tau = s / (0.5 * n * (n - 1))
    return TrendResult(statistic=s, z=z, p_value=p, tau=float(tau))
