"""Bounded-concurrency admission control with a capped wait queue.

The service admits at most ``max_concurrency`` requests into the query
executor at once; up to ``max_queue`` more may wait their turn.  Beyond
that the request is *shed* immediately with HTTP 429 — the paper's
systems survive overload by refusing work early, not by queueing until
every client times out.

The controller is asyncio-native (the event loop is the only caller);
counters feed ``/v1/stats`` and the obs metrics registry.
"""

from __future__ import annotations

import asyncio
import contextlib
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict

__all__ = ["AdmissionController", "AdmissionShed"]


class AdmissionShed(Exception):
    """The request was refused at admission (concurrency + queue full)."""


@dataclass
class AdmissionController:
    """Semaphore-bounded admission with an explicit queue cap.

    Parameters
    ----------
    max_concurrency:
        Requests allowed in the execution phase simultaneously.
    max_queue:
        Requests allowed to *wait* for an execution slot; one more and
        :meth:`slot` raises :class:`AdmissionShed` without waiting.
    """

    max_concurrency: int = 8
    max_queue: int = 32
    active: int = 0
    waiting: int = 0
    admitted: int = 0
    shed: int = 0
    peak_active: int = 0
    peak_waiting: int = 0
    _semaphore: asyncio.Semaphore = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        self._semaphore = asyncio.Semaphore(self.max_concurrency)

    @contextlib.asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """Hold one execution slot; raises :class:`AdmissionShed` when full.

        The shed decision is made *before* waiting: a request only
        queues when fewer than ``max_queue`` others already are.
        """
        if self.active >= self.max_concurrency and self.waiting >= self.max_queue:
            self.shed += 1
            raise AdmissionShed(
                f"at capacity: {self.active} active, {self.waiting} queued "
                f"(limits {self.max_concurrency}/{self.max_queue})"
            )
        self.waiting += 1
        self.peak_waiting = max(self.peak_waiting, self.waiting)
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
        self.active += 1
        self.admitted += 1
        self.peak_active = max(self.peak_active, self.active)
        try:
            yield
        finally:
            self.active -= 1
            self._semaphore.release()

    def to_dict(self) -> Dict[str, int]:
        """Counters for ``/v1/stats``."""
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "active": self.active,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "shed": self.shed,
            "peak_active": self.peak_active,
            "peak_waiting": self.peak_waiting,
        }
