"""Ablation: what does the Poisson failure assumption cost a
checkpointing system?

The paper warns that "the assumption of Poisson failure rates ... is
suspect" (Section 5.1) and that checkpoint-strategy design depends on
the TBF distribution.  This bench quantifies it: run a long job against
system 20's *actual* (synthetic) failure sequence with the interval
chosen by

* Young's formula on the empirical MTBF (implicit Poisson assumption),
* the renewal-reward optimum under the fitted best distribution,

and compare efficiency.  The distribution-aware interval must never do
worse, and the analytic model must show a widening gap as checkpoints
get more expensive relative to the MTBF.
"""

import datetime as dt
import math

import numpy as np

from repro.analysis.interarrival import split_eras
from repro.checkpoint.models import expected_efficiency, optimal_interval, young_interval
from repro.checkpoint.simulator import CheckpointSimulation
from repro.checkpoint.strategies import DistributionAwareStrategy, YoungStrategy
from repro.records.timeutils import SECONDS_PER_DAY, from_datetime
from repro.report.tables import format_table
from repro.stats.distributions import Exponential, Weibull

ERA = from_datetime(dt.datetime(2000, 1, 1))


def test_checkpoint_poisson_assumption(benchmark, system20):
    _early, late = split_eras(system20, ERA)
    gaps = late.interarrival_times()
    gaps = gaps[gaps > 0]
    cost = 600.0  # 10-minute checkpoint, the paper's "few minutes of I/O"

    young = YoungStrategy().interval(gaps, cost)
    aware_strategy = DistributionAwareStrategy()
    aware = benchmark(aware_strategy.interval, gaps, cost)
    fitted = aware_strategy.fitted(gaps)

    # Trace-driven replay: a 60-day job over the late-era failures.
    starts = late.start_times()
    offsets = starts - starts[0]
    rows = []
    results = {}
    for name, interval in (("young", young), ("distribution-aware", aware)):
        sim = CheckpointSimulation(
            work=60 * SECONDS_PER_DAY, interval=interval, checkpoint_cost=cost,
            restart_cost=1800.0,
        )
        result = sim.run(offsets, horizon=float(offsets[-1]))
        results[name] = result
        rows.append((name, f"{interval:.0f}", f"{result.efficiency:.4f}",
                     result.failures_hit, f"{result.lost_work / 3600:.1f}"))
    print("\n" + format_table(
        ("strategy", "interval (s)", "efficiency", "failures", "lost work (h)"),
        rows, title="Checkpoint ablation on system 20 (late era)",
    ))

    assert results["young"].completed and results["distribution-aware"].completed
    # The fitted distribution has a decreasing hazard (shape < 1).
    assert getattr(fitted, "shape", 1.0) < 1.0
    # Trace replay: distribution-aware must not lose to Young.
    assert results["distribution-aware"].efficiency >= results["young"].efficiency - 0.01

    # Analytic sweep: isolate the *Poisson assumption* itself.  An
    # engineer who assumes exponential failures (correct MTBF) and
    # computes the true optimum under that assumption picks
    # optimal(Exponential); the gap to optimal(Weibull) is the pure
    # cost of the assumption, exactly zero at shape 1 and growing as
    # the hazard decreases.
    mtbf = float(np.mean(gaps))
    cost_sweep = 3600.0
    exponential_tau = optimal_interval(Exponential(scale=mtbf), cost_sweep)
    gap_by_shape = {}
    for shape in (0.4, 0.6, 0.8, 1.0):
        weibull = Weibull(shape=shape, scale=mtbf / math.gamma(1 + 1 / shape))
        optimal_tau = optimal_interval(weibull, cost_sweep)
        eff_assumed = expected_efficiency(weibull, exponential_tau, cost_sweep)
        eff_optimal = expected_efficiency(weibull, optimal_tau, cost_sweep)
        assert eff_optimal >= eff_assumed - 1e-9
        gap_by_shape[shape] = 100 * (eff_optimal - eff_assumed)
    print(f"analytic efficiency gap (pp) by Weibull shape: {gap_by_shape}")
    ordered = [gap_by_shape[s] for s in (0.4, 0.6, 0.8, 1.0)]
    assert ordered == sorted(ordered, reverse=True)
    assert gap_by_shape[1.0] < 1e-3
    assert gap_by_shape[0.4] > 0.1
