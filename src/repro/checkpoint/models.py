"""Checkpoint-interval models.

Classic results assume Poisson failures: Young's first-order optimal
interval ``sqrt(2 * C * MTBF)`` and Daly's higher-order refinement.
The paper shows HPC failures are *not* Poisson — time between failures
is Weibull with shape 0.7-0.8 — so this module also provides an exact
renewal-reward efficiency model for arbitrary failure distributions.

Renewal-reward model
--------------------
Work proceeds in segments of length ``tau`` followed by a checkpoint of
cost ``delta``; a failure loses the work since the last completed
checkpoint; after a failure, a restart costs ``restart`` and the
failure clock renews.  Over one failure cycle of duration T ~ F, the
useful work banked is ``tau * floor(T / (tau + delta))``, so the
long-run efficiency is::

    eff(tau) = tau * sum_{k>=1} S(k * (tau + delta)) / (E[T] + restart)

using ``E[floor(T/p)] = sum_{k>=1} S(k*p)`` — an exact identity, no
sampling needed.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.stats.distributions import Distribution, Exponential

__all__ = [
    "young_interval",
    "daly_interval",
    "expected_efficiency",
    "optimal_interval",
    "time_to_first_failure",
    "interval_vs_job_size",
]


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's first-order optimal checkpoint interval.

    ``tau = sqrt(2 * C * MTBF)``, derived for Poisson failures and
    C << MTBF.
    """
    if checkpoint_cost <= 0:
        raise ValueError(f"checkpoint_cost must be positive, got {checkpoint_cost}")
    if mtbf <= 0:
        raise ValueError(f"mtbf must be positive, got {mtbf}")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimal interval for Poisson failures.

    ``tau = sqrt(2 C M) * (1 + (1/3)sqrt(C/2M) + (C/2M)/9) - C`` for
    C < 2M, else M (checkpointing constantly is pointless when
    failures are faster than checkpoints).
    """
    if checkpoint_cost <= 0:
        raise ValueError(f"checkpoint_cost must be positive, got {checkpoint_cost}")
    if mtbf <= 0:
        raise ValueError(f"mtbf must be positive, got {mtbf}")
    if checkpoint_cost >= 2.0 * mtbf:
        return mtbf
    ratio = math.sqrt(checkpoint_cost / (2.0 * mtbf))
    return (
        math.sqrt(2.0 * checkpoint_cost * mtbf)
        * (1.0 + ratio / 3.0 + ratio**2 / 9.0)
        - checkpoint_cost
    )


def expected_efficiency(
    failure_distribution: Distribution,
    interval: float,
    checkpoint_cost: float,
    restart_cost: float = 0.0,
    tolerance: float = 1e-12,
    max_terms: int = 10_000_000,
) -> float:
    """Long-run fraction of wall-clock time spent on useful work.

    Exact under the renewal-reward model in the module docstring.

    Parameters
    ----------
    failure_distribution:
        Distribution of time between failures (a renewal process).
    interval:
        Checkpoint interval ``tau`` (time of useful work per segment).
    checkpoint_cost:
        Time to write one checkpoint.
    restart_cost:
        Downtime + rework time after a failure before work resumes.
    tolerance:
        Stop summing survival terms once they fall below this.
    max_terms:
        Safety cap on the number of survival terms.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    if checkpoint_cost < 0 or restart_cost < 0:
        raise ValueError("costs must be non-negative")
    period = interval + checkpoint_cost
    mean_tbf = failure_distribution.mean
    # Sum S(k*period) in geometric-size batches until terms vanish.
    total = 0.0
    k = 1
    batch = 64
    while k < max_terms:
        ks = np.arange(k, k + batch, dtype=float)
        survivals = np.asarray(failure_distribution.survival(ks * period), dtype=float)
        total += float(np.sum(survivals))
        if survivals[-1] < tolerance:
            break
        k += batch
        batch = min(batch * 2, 65536)
    return interval * total / (mean_tbf + restart_cost)


def time_to_first_failure(node_distribution: Distribution, n_nodes: int) -> Distribution:
    """The failure distribution a job spanning ``n_nodes`` nodes sees.

    A job dies when *any* of its nodes fails, so its time-to-failure is
    the minimum of the per-node times.  For iid exponentials the
    minimum is exponential with scale/n; for iid Weibulls it is exactly
    Weibull with the same shape and ``scale / n^(1/shape)`` — the shape
    (and hence the hazard direction) is preserved, which is why the
    paper's per-node Weibull finding matters even for full-machine jobs.

    Supported distributions: Exponential, Weibull.
    """
    from repro.stats.distributions import Weibull as _Weibull

    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if isinstance(node_distribution, Exponential):
        return Exponential(scale=node_distribution.scale / n_nodes)
    if isinstance(node_distribution, _Weibull):
        return _Weibull(
            shape=node_distribution.shape,
            scale=node_distribution.scale / n_nodes ** (1.0 / node_distribution.shape),
        )
    raise TypeError(
        f"no closed-form minimum for {type(node_distribution).__name__}; "
        "fit the job-level interarrivals directly instead"
    )


def interval_vs_job_size(
    node_distribution: Distribution,
    checkpoint_cost: float,
    node_counts,
    restart_cost: float = 0.0,
):
    """Optimal checkpoint interval for each job size.

    Sweeps ``node_counts``; returns ``{n: (interval, efficiency)}``.
    Larger jobs see proportionally more failures and need shorter
    intervals — this is the design table a center operator wants from
    Figure 2's "failure rates scale with size" finding.
    """
    result = {}
    for n in node_counts:
        job_distribution = time_to_first_failure(node_distribution, int(n))
        interval = optimal_interval(job_distribution, checkpoint_cost, restart_cost)
        result[int(n)] = (
            interval,
            expected_efficiency(job_distribution, interval, checkpoint_cost, restart_cost),
        )
    return result


def optimal_interval(
    failure_distribution: Distribution,
    checkpoint_cost: float,
    restart_cost: float = 0.0,
    bracket: Optional[tuple] = None,
    iterations: int = 100,
) -> float:
    """The interval maximizing :func:`expected_efficiency`.

    Golden-section search over a bracket (default: ``checkpoint_cost``
    to 20x the Young interval at the distribution's mean).
    """
    if bracket is None:
        young = young_interval(checkpoint_cost, failure_distribution.mean)
        bracket = (max(checkpoint_cost * 0.1, young / 50.0), young * 20.0)
    low, high = bracket
    if not 0 < low < high:
        raise ValueError(f"invalid bracket {bracket}")

    def objective(tau: float) -> float:
        return expected_efficiency(
            failure_distribution, tau, checkpoint_cost, restart_cost
        )

    golden = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = low, high
    c = b - golden * (b - a)
    d = a + golden * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(iterations):
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - golden * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + golden * (b - a)
            fd = objective(d)
        if b - a < 1e-9 * max(1.0, b):
            break
    return 0.5 * (a + b)
