"""Tests for the generator calibration harness."""

import dataclasses

import pytest

from repro.synth import GeneratorConfig, TraceGenerator
from repro.synth.validate import CalibrationCheck, check_calibration


class TestCalibrationCheck:
    def test_ok_within_tolerance(self):
        check = CalibrationCheck(name="x", target=100.0, measured=115.0, tolerance=0.2)
        assert check.ok

    def test_fail_outside_tolerance(self):
        check = CalibrationCheck(name="x", target=100.0, measured=150.0, tolerance=0.2)
        assert not check.ok

    def test_zero_target_absolute(self):
        assert CalibrationCheck("x", 0.0, 0.05, tolerance=0.1).ok
        assert not CalibrationCheck("x", 0.0, 0.5, tolerance=0.1).ok

    def test_describe(self):
        check = CalibrationCheck(name="rate", target=1.0, measured=2.0, tolerance=0.1)
        assert "FAIL" in check.describe()
        assert "rate" in check.describe()


class TestCheckCalibration:
    def test_default_trace_is_calibrated(self, full_trace):
        checks = check_calibration(full_trace)
        failures = [check for check in checks if not check.ok]
        assert failures == [], "\n".join(check.describe() for check in failures)

    def test_checks_cover_all_active_systems(self, full_trace):
        checks = check_calibration(full_trace)
        named_systems = {
            int(check.name.split()[1]) for check in checks if check.name.startswith("system")
        }
        assert named_systems == set(full_trace.by_system().keys())

    def test_detects_rate_mismatch(self, small_trace):
        # Claim the config had 10x the real rates: every rate check fails.
        config = GeneratorConfig()
        config.rate_per_proc_year = {
            hw: rate * 10 for hw, rate in config.rate_per_proc_year.items()
        }
        checks = check_calibration(small_trace, config)
        rate_checks = [c for c in checks if "failures/year" in c.name]
        assert rate_checks and all(not check.ok for check in rate_checks)

    def test_detects_repair_mismatch(self, small_trace):
        config = GeneratorConfig()
        config.repair_type_factor = {
            hw: factor * 20 for hw, factor in config.repair_type_factor.items()
        }
        checks = check_calibration(small_trace, config, min_records=50)
        repair_checks = [c for c in checks if "repair median" in c.name]
        assert repair_checks and all(not check.ok for check in repair_checks)

    def test_empty_trace_rejected(self):
        from repro.records.trace import FailureTrace

        with pytest.raises(ValueError):
            check_calibration(FailureTrace([]))
