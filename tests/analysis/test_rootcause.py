"""Tests for root-cause breakdowns (Figure 1, Section 4)."""

import pytest

from repro.analysis.rootcause import (
    breakdown_by_hardware_type,
    downtime_breakdown_by_hardware_type,
    low_level_shares,
    memory_share,
    top_software_cause,
)
from repro.records.record import (
    FailureRecord,
    LowLevelCause,
    RootCause,
)
from repro.records.system import HardwareType
from repro.records.trace import FailureTrace


def record(start, system=20, cause=RootCause.HARDWARE, detail=None, duration=600.0):
    return FailureRecord(
        start_time=start, end_time=start + duration, system_id=system, node_id=0,
        root_cause=cause, low_level_cause=detail,
    )


class TestBreakdownSmall:
    def make_trace(self):
        return FailureTrace(
            [
                record(1e8, cause=RootCause.HARDWARE, detail=LowLevelCause.MEMORY),
                record(1.1e8, cause=RootCause.HARDWARE, detail=LowLevelCause.CPU),
                record(1.2e8, cause=RootCause.SOFTWARE,
                       detail=LowLevelCause.OPERATING_SYSTEM, duration=6000.0),
                record(1.3e8, cause=RootCause.UNKNOWN),
            ]
        )

    def test_count_percentages(self):
        result = breakdown_by_hardware_type(self.make_trace())
        overall = result["All systems"]
        assert overall.percent(RootCause.HARDWARE) == pytest.approx(50.0)
        assert overall.percent(RootCause.SOFTWARE) == pytest.approx(25.0)
        assert overall.percent(RootCause.UNKNOWN) == pytest.approx(25.0)
        assert overall.percent(RootCause.HUMAN) == 0.0

    def test_percentages_sum_to_100(self):
        for breakdown in breakdown_by_hardware_type(self.make_trace()).values():
            assert sum(breakdown.percentages.values()) == pytest.approx(100.0)

    def test_downtime_weights_by_duration(self):
        result = downtime_breakdown_by_hardware_type(self.make_trace())
        overall = result["All systems"]
        # Software: 6000 of 7800 total seconds.
        assert overall.percent(RootCause.SOFTWARE) == pytest.approx(100 * 6000 / 7800)

    def test_only_types_with_records_present(self):
        result = breakdown_by_hardware_type(self.make_trace())
        assert "G" in result  # system 20 is type G
        assert "E" not in result

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            breakdown_by_hardware_type(FailureTrace([]))


class TestLowLevel:
    def test_shares_relative_to_all_failures(self):
        trace = FailureTrace(
            [
                record(1e8, detail=LowLevelCause.MEMORY),
                record(1.1e8, detail=LowLevelCause.MEMORY),
                record(1.2e8, cause=RootCause.UNKNOWN),
                record(1.3e8, cause=RootCause.UNKNOWN),
            ]
        )
        shares = low_level_shares(trace)
        assert shares[LowLevelCause.MEMORY] == pytest.approx(0.5)
        assert memory_share(trace) == pytest.approx(0.5)

    def test_top_software_cause(self):
        trace = FailureTrace(
            [
                record(1e8, cause=RootCause.SOFTWARE,
                       detail=LowLevelCause.PARALLEL_FILESYSTEM),
                record(1.1e8, cause=RootCause.SOFTWARE,
                       detail=LowLevelCause.PARALLEL_FILESYSTEM),
                record(1.2e8, cause=RootCause.SOFTWARE,
                       detail=LowLevelCause.OPERATING_SYSTEM),
            ]
        )
        winner, share = top_software_cause(trace, HardwareType.G)
        assert winner is LowLevelCause.PARALLEL_FILESYSTEM
        assert share == pytest.approx(2 / 3)


class TestOnSyntheticTrace:
    """Section 4's claims hold on the full synthetic trace."""

    def test_hardware_largest_everywhere(self, full_trace):
        for label, breakdown in breakdown_by_hardware_type(full_trace).items():
            assert breakdown.percent(RootCause.HARDWARE) == max(
                breakdown.percentages.values()
            )

    def test_hardware_range_30_to_65(self, full_trace):
        for breakdown in breakdown_by_hardware_type(full_trace).values():
            assert 25.0 <= breakdown.percent(RootCause.HARDWARE) <= 70.0

    def test_type_e_unknown_under_5(self, full_trace):
        result = breakdown_by_hardware_type(full_trace)
        assert result["E"].percent(RootCause.UNKNOWN) < 6.0

    def test_memory_over_10_percent_everywhere(self, full_trace):
        # Section 4: > 10% of all failures due to memory in all systems
        # (except type E which the CPU design flaw dominates).
        for hardware_type in (HardwareType.D, HardwareType.F, HardwareType.G, HardwareType.H):
            assert memory_share(full_trace, hardware_type) > 0.08

    def test_memory_over_25_percent_f_and_h(self, full_trace):
        assert memory_share(full_trace, HardwareType.F) > 0.2
        assert memory_share(full_trace, HardwareType.H) > 0.2

    def test_type_e_cpu_over_50_percent(self, full_trace):
        shares = low_level_shares(full_trace, HardwareType.E)
        assert shares[LowLevelCause.CPU] > 0.45

    def test_dominant_software_causes(self, full_trace):
        assert top_software_cause(full_trace, HardwareType.F)[0] is (
            LowLevelCause.PARALLEL_FILESYSTEM
        )
        assert top_software_cause(full_trace, HardwareType.E)[0] is (
            LowLevelCause.OPERATING_SYSTEM
        )

    def test_unknown_downtime_share_below_count_share(self, full_trace):
        # Figure 1(b) vs 1(a): unknown causes contribute less downtime
        # than their failure-count share (they skew short).
        counts = breakdown_by_hardware_type(full_trace)["All systems"]
        downtime = downtime_breakdown_by_hardware_type(full_trace)["All systems"]
        assert downtime.percent(RootCause.UNKNOWN) <= counts.percent(RootCause.UNKNOWN) * 1.5
