"""CLI tests for ``repro generate --store columnar`` and ``repro store``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-store") / "st"
    code = main([
        "generate", "--seed", "5", "--systems", "2,13",
        "--store", "columnar", "--out", str(root),
        "--shard-rows", "150",
    ])
    assert code == 0
    return root


class TestGenerateStore:
    def test_writes_manifest_and_shards(self, store_dir):
        assert (store_dir / "manifest.json").exists()
        assert list((store_dir / "shards").glob("*.npy"))

    def test_matches_records_output(self, store_dir, tmp_path, capsys):
        csv_out = tmp_path / "list.csv"
        main([
            "generate", "--seed", "5", "--systems", "2,13",
            "--out", str(csv_out),
        ])
        export = tmp_path / "store.csv"
        code = main(["store", "export", str(store_dir), str(export)])
        assert code == 0
        assert export.read_bytes() == csv_out.read_bytes()

    def test_scale_grows_the_trace(self, tmp_path):
        small = tmp_path / "small"
        big = tmp_path / "big"
        main(["generate", "--seed", "5", "--systems", "2",
              "--store", "columnar", "--out", str(small)])
        main(["generate", "--seed", "5", "--systems", "2", "--scale", "4",
              "--store", "columnar", "--out", str(big)])
        small_rows = json.loads(
            (small / "manifest.json").read_text()
        )["row_count"]
        big_rows = json.loads((big / "manifest.json").read_text())["row_count"]
        assert big_rows > 2 * small_rows


class TestStoreCommands:
    def test_info(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "columnar store" in out
        assert "record ids: implicit" in out

    def test_info_json(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] > 0
        assert payload["record_ids"] == "implicit"

    def test_verify_ok(self, store_dir, capsys):
        assert main(["store", "verify", str(store_dir)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_catches_damage(self, store_dir, tmp_path, capsys):
        import shutil

        damaged = tmp_path / "damaged"
        shutil.copytree(store_dir, damaged)
        victim = next((damaged / "shards").glob("*-start_time.npy"))
        victim.write_bytes(victim.read_bytes()[:-8])
        assert main(["store", "verify", str(damaged)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_analyze_pushdown_counters(self, store_dir, capsys):
        assert main([
            "store", "analyze", str(store_dir), "--systems", "13", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_system"].keys() == {"13"}
        assert payload["scan"]["shards_pruned"] >= 1

    def test_analyze_plain_output(self, store_dir, capsys):
        assert main(["store", "analyze", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "pushdown:" in out
        assert "counts by cause:" in out

    def test_import_then_export_round_trip(self, store_dir, tmp_path, capsys):
        csv_path = tmp_path / "t.csv"
        main(["store", "export", str(store_dir), str(csv_path)])
        imported = tmp_path / "imported"
        assert main([
            "store", "import", str(csv_path), str(imported),
        ]) == 0
        back = tmp_path / "back.csv"
        assert main(["store", "export", str(imported), str(back)]) == 0
        assert back.read_bytes() == csv_path.read_bytes()

    def test_export_filtered(self, store_dir, tmp_path):
        out = tmp_path / "sys2.csv"
        assert main([
            "store", "export", str(store_dir), str(out), "--systems", "2",
        ]) == 0
        text = out.read_text()
        assert ",13," not in text

    def test_error_boundary_on_missing_store(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_info_reports_clean_healing(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir)]) == 0
        assert "healing: clean (no quarantined shards)" in (
            capsys.readouterr().out
        )

    def test_info_reports_degraded_healing(
        self, store_dir, tmp_path, capsys
    ):
        import shutil

        from repro.store import scrub_store

        damaged = tmp_path / "damaged"
        shutil.copytree(store_dir, damaged)
        next((damaged / "shards").glob("*-node_id.npy")).unlink()
        scrub_store(damaged)
        assert main(["store", "info", str(damaged)]) == 0
        out = capsys.readouterr().out
        assert "healing: DEGRADED" in out
        assert "affected systems:" in out
        assert "repro store repair" in out
        assert main(["store", "info", str(damaged), "--json"]) == 0
        healing = json.loads(capsys.readouterr().out)["healing"]
        assert healing["quarantined_shards"] == 1
        assert healing["quarantined_rows"] > 0
        assert healing["affected_systems"]


@pytest.fixture()
def damaged_dir(store_dir, tmp_path):
    import shutil

    damaged = tmp_path / "damaged"
    shutil.copytree(store_dir, damaged)
    victim = next((damaged / "shards").glob("*-node_id.npy"))
    victim.unlink()
    return damaged


class TestSelfHealCommands:
    def test_verify_json_clean(self, store_dir, capsys):
        assert main(["store", "verify", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problems"] == []
        assert payload["summary"]["ok"] is True
        assert payload["summary"]["mode"] == "deep"

    def test_verify_json_damaged_exits_1(self, damaged_dir, capsys):
        assert main(["store", "verify", str(damaged_dir), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is False
        assert payload["summary"]["count"] == len(payload["problems"])
        assert any("missing" in p for p in payload["problems"])

    def test_scrub_quarantines_and_exits_1(self, damaged_dir, capsys):
        assert main(["store", "scrub", str(damaged_dir)]) == 1
        out = capsys.readouterr().out
        assert "quarantined" in out and "DAMAGED" in out
        assert (damaged_dir / "quarantine" / "ledger.jsonl").exists()

    def test_scrub_json_on_clean_store(self, store_dir, capsys):
        assert main(["store", "scrub", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["quarantined"] == []

    def test_repair_restores_verification(
        self, store_dir, damaged_dir, tmp_path, capsys
    ):
        reference = tmp_path / "reference.csv"
        assert main([
            "store", "export", str(store_dir), str(reference),
        ]) == 0
        assert main(["store", "scrub", str(damaged_dir)]) == 1
        capsys.readouterr()
        assert main([
            "store", "repair", str(damaged_dir), "--from", str(reference),
        ]) == 0
        assert "OK: store fully repaired" in capsys.readouterr().out
        assert main(["store", "verify", str(damaged_dir)]) == 0
        assert not (damaged_dir / "quarantine").exists()

    def test_repair_wrong_reference_exits_1(
        self, damaged_dir, tmp_path, capsys
    ):
        wrong = tmp_path / "wrong.csv"
        main(["generate", "--seed", "77", "--systems", "2,13",
              "--out", str(wrong)])
        capsys.readouterr()
        assert main([
            "store", "repair", str(damaged_dir), "--from", str(wrong),
        ]) == 1
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_analyze_on_damage_skip(self, damaged_dir, capsys):
        assert main([
            "store", "analyze", str(damaged_dir), "--on-damage", "skip",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["degraded"] is not None
        assert payload["degraded"]["rows_skipped"] > 0

    def test_analyze_raises_on_damage_by_default(self, damaged_dir, capsys):
        assert main(["store", "analyze", str(damaged_dir)]) == 1
        assert "damaged" in capsys.readouterr().err

    def test_report_on_damage_skip_warns_on_stderr(
        self, damaged_dir, capsys
    ):
        code = main([
            "report", str(damaged_dir), "--artifact", "fig1",
            "--on-damage", "skip",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "degraded read" in captured.err
        assert captured.out.strip()


class TestFederationCommands:
    def test_append_and_merge_round_trip(self, store_dir, tmp_path, capsys):
        # Filtered exports preserve record ids only from an
        # *explicit*-id store, so split the trace via an imported
        # reference store rather than the implicit generated one.
        full_csv = tmp_path / "full.csv"
        assert main(["store", "export", str(store_dir), str(full_csv)]) == 0
        reference = tmp_path / "reference"
        assert main(["store", "import", str(full_csv), str(reference),
                     "--shard-rows", "150"]) == 0
        a_csv = tmp_path / "a.csv"
        b_csv = tmp_path / "b.csv"
        assert main(["store", "export", str(reference), str(a_csv),
                     "--systems", "2"]) == 0
        assert main(["store", "export", str(reference), str(b_csv),
                     "--systems", "13"]) == 0

        grown = tmp_path / "grown"
        assert main(["store", "import", str(a_csv), str(grown),
                     "--shard-rows", "150"]) == 0
        assert main(["store", "append", str(grown), str(b_csv)]) == 0
        assert main(["store", "verify", str(grown)]) == 0

        merged = tmp_path / "merged"
        assert main(["store", "merge", str(merged), str(a_csv), str(b_csv),
                     "--shard-rows", "150"]) == 0
        assert main(["store", "verify", str(merged)]) == 0
        back = tmp_path / "merged.csv"
        assert main(["store", "export", str(merged), str(back)]) == 0
        assert back.read_bytes() == full_csv.read_bytes()

    def test_merge_refuses_existing_store(self, store_dir, tmp_path, capsys):
        src = tmp_path / "src.csv"
        main(["store", "export", str(store_dir), str(src)])
        assert main([
            "store", "merge", str(store_dir), str(src),
        ]) == 1
        assert "store append" in capsys.readouterr().err


class TestStoreAsTraceInput:
    def test_report_reads_a_store_directory(self, store_dir, capsys):
        code = main(["report", str(store_dir), "--artifact", "fig1"])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_summary_matches_csv_input(self, store_dir, tmp_path, capsys):
        assert main(["validate", str(store_dir)]) == 0
        store_out = capsys.readouterr().out
        csv_path = tmp_path / "t.csv"
        main(["store", "export", str(store_dir), str(csv_path)])
        capsys.readouterr()
        assert main(["validate", str(csv_path)]) == 0
        assert capsys.readouterr().out == store_out
