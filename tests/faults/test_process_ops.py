"""Process-chaos operators: env arming, budgets, targeting, injection."""

from __future__ import annotations

import os

import pytest

from repro.faults import (
    CHAOS_ENV_VAR,
    ChaosError,
    ProcessChaos,
    chaos_env,
    make_chaos,
    maybe_inject,
)


class TestSpec:
    def test_json_round_trip(self, tmp_path):
        spec = ProcessChaos(
            operator="flaky-shard",
            times=3,
            state_dir=str(tmp_path),
            shards=("system-2",),
        )
        assert ProcessChaos.from_json(spec.to_json()) == spec

    def test_unknown_operator_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="operator"):
            ProcessChaos(operator="set-on-fire", state_dir=str(tmp_path))

    def test_times_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="times"):
            ProcessChaos(
                operator="flaky-shard", times=0, state_dir=str(tmp_path)
            )

    def test_state_dir_required(self):
        with pytest.raises(ValueError, match="state_dir"):
            ProcessChaos(operator="kill-worker", state_dir="")

    def test_make_chaos_provisions_state_dir(self):
        spec = make_chaos("slow-shard")
        assert os.path.isdir(spec.state_dir)


class TestChaosEnv:
    def test_arms_and_restores(self, tmp_path):
        spec = make_chaos("flaky-shard", state_dir=str(tmp_path))
        assert CHAOS_ENV_VAR not in os.environ
        with chaos_env(spec) as armed:
            assert armed is spec
            assert ProcessChaos.from_json(os.environ[CHAOS_ENV_VAR]) == spec
        assert CHAOS_ENV_VAR not in os.environ

    def test_none_spec_is_noop(self):
        with chaos_env(None) as armed:
            assert armed is None
            assert CHAOS_ENV_VAR not in os.environ


class TestInjection:
    def _env(self, spec):
        return {CHAOS_ENV_VAR: spec.to_json()}

    def test_noop_when_unarmed(self):
        maybe_inject("system-2", env={})  # must not raise

    def test_flaky_respects_budget(self, tmp_path):
        spec = make_chaos("flaky-shard", times=2, state_dir=str(tmp_path))
        env = self._env(spec)
        for _ in range(2):
            with pytest.raises(ChaosError):
                maybe_inject("system-2", env=env)
        # Budget spent: the third call succeeds.
        maybe_inject("system-2", env=env)
        assert spec.injections() == 2

    def test_targeting_skips_other_shards(self, tmp_path):
        spec = make_chaos(
            "flaky-shard", state_dir=str(tmp_path), shards=("system-13",)
        )
        env = self._env(spec)
        maybe_inject("system-2", env=env)  # not targeted: no-op
        assert spec.injections() == 0
        with pytest.raises(ChaosError):
            maybe_inject("system-13", env=env)

    def test_slow_shard_sleeps_then_returns(self, tmp_path, monkeypatch):
        naps = []
        monkeypatch.setattr("time.sleep", naps.append)
        spec = make_chaos(
            "slow-shard", state_dir=str(tmp_path), slow_seconds=0.125
        )
        maybe_inject("system-2", env=self._env(spec))
        assert naps == [0.125]

    def test_hang_worker_sleeps_hang_seconds(self, tmp_path, monkeypatch):
        naps = []
        monkeypatch.setattr("time.sleep", naps.append)
        spec = make_chaos(
            "hang-worker", state_dir=str(tmp_path), hang_seconds=900.0
        )
        maybe_inject("system-2", env=self._env(spec))
        assert naps == [900.0]

    def test_injections_counts_claims_only(self, tmp_path):
        spec = make_chaos("flaky-shard", times=5, state_dir=str(tmp_path))
        (tmp_path / "unrelated.txt").write_text("x")
        env = self._env(spec)
        with pytest.raises(ChaosError):
            maybe_inject("system-2", env=env)
        assert spec.injections() == 1
