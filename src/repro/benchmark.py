"""Trace-generation throughput benchmarks (``repro bench``).

Measures the synthesis hot path — serial scalar, serial vectorized, and
process-parallel — over the full 22-system LANL trace and a quick
3-system subset, and writes a machine-readable JSON report
(``BENCH_generator.json``).

The report's regression gate compares *speedup ratios*
(vectorized vs. scalar, measured on the same machine in the same run),
not absolute records/second, so a committed baseline from one machine
meaningfully gates CI runs on another: absolute throughput varies with
hardware, but the vectorized engine's advantage over the scalar
reference loop on identical work should not silently erode.
"""

from __future__ import annotations

import platform
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import __version__
from repro.synth import TraceGenerator

__all__ = [
    "run_benchmark",
    "check_against_baseline",
    "measure_obs_overhead",
    "measure_fsfaults_overhead",
    "QUICK_SYSTEMS",
]

#: Quick-mode subset: one large (20), one mid (2), one small (13) system.
QUICK_SYSTEMS = (2, 13, 20)

#: JSON schema version of the report.
SCHEMA_VERSION = 1


def _time_generate(
    generator: TraceGenerator,
    system_ids: Optional[Sequence[int]],
    *,
    engine: Optional[str] = None,
    workers: int = 1,
    repeats: int = 1,
) -> Dict[str, Any]:
    """Best-of-``repeats`` wall time for one generation configuration."""
    best = float("inf")
    n_records = 0
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        trace = generator.generate(system_ids, engine=engine, workers=workers)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        n_records = len(trace)
    return {
        "seconds": round(best, 4),
        "records": n_records,
        "records_per_second": round(n_records / best, 1) if best > 0 else None,
    }


def _suite(
    generator: TraceGenerator,
    system_ids: Optional[Sequence[int]],
    workers: int,
    repeats: int,
) -> Dict[str, Any]:
    scalar = _time_generate(
        generator, system_ids, engine="scalar", repeats=repeats
    )
    vectorized = _time_generate(
        generator, system_ids, engine="vectorized", repeats=repeats
    )
    suite: Dict[str, Any] = {
        "systems": (
            sorted(generator.systems) if system_ids is None else list(system_ids)
        ),
        "records": vectorized["records"],
        "scalar": scalar,
        "vectorized": vectorized,
        "speedup_vectorized_vs_scalar": round(
            scalar["seconds"] / vectorized["seconds"], 2
        ),
    }
    if workers > 1:
        parallel = _time_generate(
            generator, system_ids, workers=workers, repeats=repeats
        )
        suite["parallel"] = dict(parallel, workers=workers)
        suite["speedup_parallel_vs_scalar"] = round(
            scalar["seconds"] / parallel["seconds"], 2
        )
    return suite


def run_benchmark(
    seed: int = 1,
    *,
    quick: bool = False,
    workers: int = 1,
    repeats: int = 1,
) -> Dict[str, Any]:
    """Run the generator benchmark and return the JSON-able report.

    Parameters
    ----------
    seed:
        Generator seed (the workload is deterministic in it).
    quick:
        Only run the 3-system :data:`QUICK_SYSTEMS` subset (CI smoke).
    workers:
        If > 1, additionally measure process-parallel generation.
    repeats:
        Take the best of this many runs per configuration.
    """
    generator = TraceGenerator(seed=seed)
    report: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "seed": seed,
        "repro_version": __version__,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "quick": _suite(generator, list(QUICK_SYSTEMS), workers, repeats),
    }
    if not quick:
        report["full"] = _suite(generator, None, workers, repeats)
    return report


def measure_obs_overhead(
    seed: int = 1,
    systems: Sequence[int] = QUICK_SYSTEMS,
    threshold: float = 0.02,
) -> Dict[str, Any]:
    """Bound the cost of *disabled* observability on the generator.

    The guard multiplies the number of instrumentation sites a quick
    generate actually hits (counted from a traced run) by the measured
    cost of one disabled :func:`repro.obs.span` call, and expresses the
    product as a fraction of the disabled generate's wall time.  That
    product is what the fast path can possibly cost — and unlike
    differencing two full-run timings, each factor is individually
    stable, so the guard doesn't flap on machine noise.

    Returns a dict with the measurements and ``ok`` (overhead within
    ``threshold``, default 2%).
    """
    from repro import obs

    generator = TraceGenerator(seed=seed)
    system_ids = list(systems)
    generator.generate(system_ids)  # warm caches/imports
    start = time.perf_counter()
    generator.generate(system_ids)
    disabled_seconds = time.perf_counter() - start

    tracer = obs.Tracer(run_id="obs-guard")
    registry = obs.MetricsRegistry()
    with obs.observing(tracer, registry):
        generator.generate(system_ids)
    spans_per_generate = len(tracer.events)

    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench.noop", site=1):
            pass
    noop_cost = (time.perf_counter() - start) / calls

    overhead = (
        spans_per_generate * noop_cost / disabled_seconds
        if disabled_seconds > 0
        else 0.0
    )
    return {
        "systems": system_ids,
        "spans_per_generate": spans_per_generate,
        "noop_span_cost_ns": round(noop_cost * 1e9, 1),
        "disabled_seconds": round(disabled_seconds, 4),
        "overhead_fraction": round(overhead, 6),
        "threshold": threshold,
        "ok": overhead <= threshold,
    }


def measure_fsfaults_overhead(
    seed: int = 1,
    systems: Sequence[int] = QUICK_SYSTEMS,
    threshold: float = 0.02,
) -> Dict[str, Any]:
    """Bound the cost of the *disabled* filesystem-fault shim.

    Same measurement strategy as :func:`measure_obs_overhead`: count
    the fault-hook sites a representative workload (a journaled quick
    generate plus a CSV and a JSONL trace write) actually hits — via
    the shim's passive ``count`` operator — multiply by the measured
    cost of one disabled :func:`~repro.resilience.atomic.fs_fault_hook`
    call, and express the product as a fraction of the workload's
    disabled wall time.  Each factor is individually stable, so the
    guard doesn't flap on machine noise.

    Returns a dict with the measurements and ``ok`` (overhead within
    ``threshold``, default 2%).
    """
    import tempfile
    from pathlib import Path

    from repro.faults import fsfaults
    from repro.io.csv_format import write_lanl_csv
    from repro.io.jsonl_format import write_jsonl
    from repro.resilience.atomic import fs_fault_hook
    from repro.resilience.journal import ShardJournal

    generator = TraceGenerator(seed=seed)
    system_ids = list(systems)

    def workload(base: Path) -> None:
        journal = ShardJournal(
            base / "run", meta=generator.journal_meta(), resume=False
        )
        trace = generator.generate(system_ids, journal=journal)
        write_lanl_csv(trace, base / "trace.csv")
        write_jsonl(trace, base / "trace.jsonl")

    with tempfile.TemporaryDirectory(prefix="repro-fsguard-") as tmp:
        workload(Path(tmp) / "warm")  # warm caches/imports
        start = time.perf_counter()
        workload(Path(tmp) / "timed")
        disabled_seconds = time.perf_counter() - start

        fsfaults.reset_counts()
        with fsfaults.fsfaults_env(fsfaults.FsFaults(operator="count")):
            workload(Path(tmp) / "counted")
        sites_per_run = fsfaults.call_count()
        fsfaults.reset_counts()

    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        fs_fault_hook("bench.noop", "bench")
    noop_cost = (time.perf_counter() - start) / calls

    overhead = (
        sites_per_run * noop_cost / disabled_seconds
        if disabled_seconds > 0
        else 0.0
    )
    return {
        "systems": system_ids,
        "sites_per_run": sites_per_run,
        "noop_hook_cost_ns": round(noop_cost * 1e9, 1),
        "disabled_seconds": round(disabled_seconds, 4),
        "overhead_fraction": round(overhead, 6),
        "threshold": threshold,
        "ok": overhead <= threshold,
    }


def measure_serve_overhead(
    seed: int = 5,
    threshold: float = 0.02,
) -> Dict[str, Any]:
    """Bound the cost of the disabled fault shim on the *serving* path.

    PR 9 added a read-side hook site (``store.read.column``) so the
    chaos campaign can drill the analytics service; this guard holds
    its disabled cost to the same <= 2% bar as the write-side sites.
    Strategy mirrors :func:`measure_fsfaults_overhead`, but the
    workload is the one ``repro serve`` executes per query: a full
    :func:`~repro.store.analytics.summarize_store` scan over a
    columnar store.
    """
    import tempfile
    from pathlib import Path

    from repro.faults import fsfaults
    from repro.resilience.atomic import fs_fault_hook
    from repro.store import ColumnarStore, store_from_trace, summarize_store

    generator = TraceGenerator(seed=seed)
    trace = generator.generate([2, 13])

    with tempfile.TemporaryDirectory(prefix="repro-serveguard-") as tmp:
        root = Path(tmp) / "store"
        store_from_trace(trace, root, shard_rows=500)

        def workload() -> None:
            summarize_store(ColumnarStore(root))

        workload()  # warm caches/imports
        start = time.perf_counter()
        workload()
        disabled_seconds = time.perf_counter() - start

        fsfaults.reset_counts()
        with fsfaults.fsfaults_env(fsfaults.FsFaults(operator="count")):
            workload()
        sites_per_scan = fsfaults.call_count()
        fsfaults.reset_counts()

    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        fs_fault_hook("bench.noop", "bench")
    noop_cost = (time.perf_counter() - start) / calls

    overhead = (
        sites_per_scan * noop_cost / disabled_seconds
        if disabled_seconds > 0
        else 0.0
    )
    return {
        "sites_per_scan": sites_per_scan,
        "noop_hook_cost_ns": round(noop_cost * 1e9, 1),
        "disabled_seconds": round(disabled_seconds, 4),
        "overhead_fraction": round(overhead, 6),
        "threshold": threshold,
        "ok": overhead <= threshold,
    }


def check_against_baseline(
    report: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> List[str]:
    """Regression check: current report vs. a committed baseline.

    Returns a list of human-readable problems (empty = pass).  Compares
    the vectorized-vs-scalar speedup ratio of every suite present in
    both reports; a ratio more than ``tolerance`` below the baseline's
    means the vectorized path regressed relative to the scalar
    reference on the *same* machine and workload.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    problems: List[str] = []
    for suite_name in ("quick", "full"):
        current = report.get(suite_name)
        reference = baseline.get(suite_name)
        if current is None or reference is None:
            continue
        ratio = current["speedup_vectorized_vs_scalar"]
        expected = reference["speedup_vectorized_vs_scalar"]
        floor = expected * (1.0 - tolerance)
        if ratio < floor:
            problems.append(
                f"{suite_name}: vectorized speedup {ratio:.2f}x fell below "
                f"{floor:.2f}x (baseline {expected:.2f}x - {tolerance:.0%})"
            )
        if current["records"] != reference["records"] and report.get(
            "seed"
        ) == baseline.get("seed"):
            problems.append(
                f"{suite_name}: record count {current['records']} != "
                f"baseline {reference['records']} at the same seed "
                "(generator output changed; regenerate the baseline)"
            )
    return problems


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a benchmark report."""
    lines = [f"repro bench (seed {report['seed']})"]
    for suite_name in ("quick", "full"):
        suite = report.get(suite_name)
        if suite is None:
            continue
        lines.append(
            f"  {suite_name}: {suite['records']} records over "
            f"{len(suite['systems'])} systems"
        )
        for engine in ("scalar", "vectorized", "parallel"):
            timing = suite.get(engine)
            if timing is None:
                continue
            label = engine
            if engine == "parallel":
                label = f"parallel (workers={timing['workers']})"
            lines.append(
                f"    {label:<22} {timing['seconds']:>8.3f}s  "
                f"{timing['records_per_second']:>10.0f} rec/s"
            )
        lines.append(
            "    speedup (vectorized/scalar)  "
            f"{suite['speedup_vectorized_vs_scalar']:.2f}x"
        )
    return "\n".join(lines)


def write_report(report: Dict[str, Any], path: str) -> None:
    """Atomically write a benchmark report as stable, diff-friendly JSON.

    The atomic write (tmp + fsync + rename) means an interrupted bench
    run can never leave a truncated ``BENCH_generator.json`` for the
    CI regression gate to choke on.
    """
    from repro.resilience import atomic_write_json

    atomic_write_json(path, report)
