"""Generator self-validation: does a trace match its configuration?

A calibration harness for the synthetic generator: given a generated
trace and the configuration that produced it, check that the emergent
statistics are within tolerance of the configured targets — failure
rates per system, root-cause mixtures, repair medians, zero-gap
fractions.  Returns a list of human-readable deviations (empty when the
trace is well calibrated), so regressions in the generator show up as
named numbers rather than silently skewed benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.records.record import RootCause
from repro.records.timeutils import SECONDS_PER_MONTH, SECONDS_PER_YEAR
from repro.records.trace import FailureTrace
from repro.synth.config import GeneratorConfig
from repro.synth.lifecycle import lifecycle_multiplier, lifecycle_shape_for
from repro.synth.repair import RepairModel

__all__ = ["CalibrationCheck", "check_calibration", "expected_rate_multiplier"]


def expected_rate_multiplier(
    config: GeneratorConfig,
    system_id: int,
    hardware_type,
    window_seconds: float,
    steps: int = 400,
) -> float:
    """Expected rate inflation over a system's window.

    Two deterministic effects move a system's average rate off its base:

    * the lifecycle multiplier's window average (infant excess dominates
      short windows; the ramp floor suppresses early D/G rates);
    * correlated bursts, which clone ``burst_prob * burst_mean_extra``
      extra failures per event during the early era.
    """
    shape = lifecycle_shape_for(
        hardware_type,
        system_id,
        ramp_types=config.ramp_types,
        ramp_exempt_systems=config.ramp_exempt_systems,
    )
    ages = np.linspace(0.0, window_seconds, steps, endpoint=False) + window_seconds / (2 * steps)
    levels = np.array([lifecycle_multiplier(shape, float(age)) for age in ages])
    multiplier = float(np.mean(levels))
    if config.bursts_enabled and system_id in config.burst_systems:
        era_end = config.burst_era_months * SECONDS_PER_MONTH
        era_mass = float(np.sum(levels[ages < era_end])) / float(np.sum(levels))
        multiplier *= 1.0 + config.burst_prob * config.burst_mean_extra * era_mass
    return multiplier


@dataclass(frozen=True)
class CalibrationCheck:
    """One calibration comparison."""

    name: str
    target: float
    measured: float
    tolerance: float

    @property
    def ok(self) -> bool:
        """Whether the measurement is within the relative tolerance."""
        if self.target == 0:
            return abs(self.measured) <= self.tolerance
        return abs(self.measured - self.target) <= self.tolerance * abs(self.target)

    def describe(self) -> str:
        """One-line rendering."""
        status = "ok  " if self.ok else "FAIL"
        return (
            f"[{status}] {self.name}: target {self.target:.4g}, "
            f"measured {self.measured:.4g} (tol {100 * self.tolerance:.0f}%)"
        )


def check_calibration(
    trace: FailureTrace,
    config: Optional[GeneratorConfig] = None,
    rate_tolerance: float = 0.60,
    mix_tolerance: float = 0.30,
    repair_tolerance: float = 0.35,
    min_records: int = 200,
) -> List[CalibrationCheck]:
    """Compare a generated trace against its configuration targets.

    Tolerances are generous by design: lifecycle excess, bursts and
    monthly jitter legitimately move averages; the harness exists to
    catch order-of-magnitude regressions and sign errors, not seed
    noise.  Systems with fewer than ``min_records`` records are skipped
    for mixture and repair checks.

    Returns every check performed; filter with ``[c for c in checks if
    not c.ok]`` for failures.
    """
    config = config if config is not None else GeneratorConfig()
    repair_model = RepairModel(config)
    checks: List[CalibrationCheck] = []
    by_system = trace.by_system()

    for system_id, system in sorted(trace.systems.items()):
        sub = by_system.get(system_id)
        if sub is None or len(sub) == 0:
            continue
        hardware_type = system.hardware_type
        years = system.production_years(trace.data_start, trace.data_end)
        target_rate = (
            config.rate_per_proc_year[hardware_type]
            * config.early_system_boost.get(system_id, 1.0)
            * system.processor_count
            * expected_rate_multiplier(
                config, system_id, hardware_type, years * SECONDS_PER_YEAR
            )
        )
        checks.append(
            CalibrationCheck(
                name=f"system {system_id} failures/year",
                target=target_rate,
                measured=len(sub) / years,
                tolerance=rate_tolerance,
            )
        )
        if len(sub) < min_records:
            continue
        # Root-cause mixture (bursts and the unknown era shift it, so
        # only the dominant hardware share is checked).
        mix = config.cause_mix[hardware_type]
        counts = sub.counts_by_cause()
        hardware_share = counts.get(RootCause.HARDWARE, 0) / len(sub)
        checks.append(
            CalibrationCheck(
                name=f"system {system_id} hardware share",
                target=mix[RootCause.HARDWARE],
                measured=hardware_share,
                tolerance=mix_tolerance,
            )
        )
        # Repair median scales with the type factor (medians are robust
        # to the heavy tail, unlike means).
        causes = [record.root_cause for record in sub]
        dominant = max(set(causes), key=causes.count)
        target_median = (
            np.exp(repair_model.parameters(dominant)[0])
            * config.repair_type_factor[hardware_type]
        )
        if (
            dominant is RootCause.UNKNOWN
            and hardware_type not in config.unknown_era_types
        ):
            target_median *= config.repair_unknown_short_factor
        measured_median = float(
            np.median(sub.filter_cause(dominant).repair_minutes())
        )
        checks.append(
            CalibrationCheck(
                name=f"system {system_id} {dominant.value} repair median (min)",
                target=target_median,
                measured=measured_median,
                tolerance=repair_tolerance,
            )
        )
    if not checks:
        raise ValueError("trace has no records to check")
    return checks
