"""Deadline: monotonic per-request budgets checked at chunk boundaries."""

from __future__ import annotations

import pytest

from repro.resilience import Deadline, DeadlineExceeded


def make(budget, start=0.0):
    clock = {"now": start}
    deadline = Deadline(budget, clock=lambda: clock["now"])
    return deadline, clock


class TestBudget:
    def test_not_expired_within_budget(self):
        deadline, clock = make(5.0)
        clock["now"] = 4.999
        assert not deadline.expired()
        deadline.check()  # no raise

    def test_expires_exactly_at_budget(self):
        deadline, clock = make(5.0)
        clock["now"] = 5.0
        assert deadline.expired()

    def test_check_raises_with_context(self):
        deadline, clock = make(0.25)
        clock["now"] = 1.0
        with pytest.raises(DeadlineExceeded, match="store scan"):
            deadline.check("store scan")

    def test_remaining_counts_down(self):
        deadline, clock = make(10.0)
        clock["now"] = 4.0
        assert deadline.remaining() == pytest.approx(6.0)
        assert deadline.elapsed() == pytest.approx(4.0)

    def test_unbounded_never_expires(self):
        deadline, clock = make(None)
        clock["now"] = 1e9
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        deadline.check()

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline(0.0)
        with pytest.raises(ValueError, match="budget"):
            Deadline(-1.0)

    def test_not_an_oserror(self):
        # The serving layer distinguishes store damage (StoreError /
        # OSError) from blown budgets; a deadline must never be
        # caught by damage handlers.
        assert not issubclass(DeadlineExceeded, OSError)


class TestStoreScan:
    def test_scan_stops_at_chunk_boundary(self, tmp_path, small_trace):
        from repro.store import ColumnarStore, store_from_trace

        root = tmp_path / "store"
        store_from_trace(small_trace, root, shard_rows=100)
        store = ColumnarStore(root)
        deadline, clock = make(1.0)
        iterator = store.iter_batches(batch_rows=50, deadline=deadline)
        first = next(iterator)
        assert len(first)
        clock["now"] = 2.0  # budget blown between chunks
        with pytest.raises(DeadlineExceeded):
            next(iterator)

    def test_summarize_partial_covers_prefix(self, tmp_path, small_trace):
        from repro.store import ColumnarStore, store_from_trace, summarize_store

        root = tmp_path / "store"
        store_from_trace(small_trace, root, shard_rows=100)
        store = ColumnarStore(root)
        total = store.manifest.row_count

        ticks = {"n": 0}

        def clock():
            # Each call advances; the scan's per-chunk checks burn the
            # budget after a few chunks.
            ticks["n"] += 1
            return float(ticks["n"])

        deadline = Deadline(3.0, clock=clock)
        summary = summarize_store(
            store, batch_rows=50, deadline=deadline, on_deadline="partial"
        )
        assert summary.partial is not None
        assert summary.partial["reason"] == "deadline-exceeded"
        assert summary.partial["rows_total"] == total
        assert summary.partial["rows_seen"] == summary.rows < total
        assert "partial" in summary.to_dict()

    def test_summarize_raise_mode_propagates(self, tmp_path, small_trace):
        from repro.store import ColumnarStore, store_from_trace, summarize_store

        root = tmp_path / "store"
        store_from_trace(small_trace, root, shard_rows=100)
        deadline, clock = make(1.0)
        clock["now"] = 5.0
        with pytest.raises(DeadlineExceeded):
            summarize_store(
                ColumnarStore(root), batch_rows=50, deadline=deadline
            )

    def test_complete_summary_dict_has_no_partial_key(
        self, tmp_path, small_trace
    ):
        # Byte-identity contract: `store analyze --json` output for a
        # complete scan is unchanged by the deadline feature.
        from repro.store import ColumnarStore, store_from_trace, summarize_store

        root = tmp_path / "store"
        store_from_trace(small_trace, root, shard_rows=100)
        payload = summarize_store(ColumnarStore(root)).to_dict()
        assert "partial" not in payload

    def test_bad_on_deadline_rejected(self, tmp_path, small_trace):
        from repro.store import ColumnarStore, store_from_trace, summarize_store

        root = tmp_path / "store"
        store_from_trace(small_trace, root, shard_rows=100)
        with pytest.raises(ValueError, match="on_deadline"):
            summarize_store(ColumnarStore(root), on_deadline="ignore")
