"""Crash-ordering drills: tearing between shard writes and publish.

``generate --store columnar`` must never leave a readable-but-wrong
store: a fault anywhere between the shard payload writes and the
manifest publish leaves either no store at all or the previous
generation, with no ``*.tmp`` or ``staging/`` litter, and a resumed or
retried run converges to the byte-identical clean result.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.faults.fsfaults import FsFaults, fsfaults_env
from repro.store import ColumnarStore, StoreError, verify_store

SEED = 5
SYSTEMS = "2,13"


def _store_bytes(root):
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def _generate(root, run_dir=None, resume=False):
    argv = [
        "generate", "--seed", str(SEED), "--systems", SYSTEMS,
        "--store", "columnar", "--out", str(root), "--shard-rows", "100",
    ]
    if run_dir is not None:
        argv += ["--run-dir", str(run_dir)]
    if resume:
        argv += ["--resume"]
    return main(argv)


@pytest.fixture(scope="module")
def clean_reference(tmp_path_factory):
    root = tmp_path_factory.mktemp("crash-ref") / "st"
    assert _generate(root) == 0
    return root


class TestTearBeforePublish:
    def test_enospc_on_manifest_leaves_no_store(
        self, tmp_path, clean_reference
    ):
        root = tmp_path / "st"
        run_dir = tmp_path / "run"
        spec = FsFaults(
            operator="enospc", state_dir=str(tmp_path / "state"),
            sites=("store.manifest",),
        )
        with fsfaults_env(spec):
            assert _generate(root, run_dir=run_dir) == 1
        assert spec.injections() >= 1
        # shards landed but the manifest did not: not a store, and the
        # error says so rather than serving wrong data
        with pytest.raises(StoreError):
            ColumnarStore(root)
        assert not list(root.rglob("*.tmp"))
        assert not (root / "staging").exists()
        # resume finishes the run byte-identically to a clean one
        assert _generate(root, run_dir=run_dir, resume=True) == 0
        assert verify_store(root, deep=True) == []
        assert _store_bytes(root) == _store_bytes(clean_reference)

    def test_torn_manifest_write_leaves_no_store(
        self, tmp_path, clean_reference
    ):
        root = tmp_path / "st"
        run_dir = tmp_path / "run"
        spec = FsFaults(
            operator="torn-write", state_dir=str(tmp_path / "state"),
            sites=("atomic.text",), path_contains="manifest.json", seed=3,
        )
        with fsfaults_env(spec):
            assert _generate(root, run_dir=run_dir) == 1
        assert spec.injections() >= 1
        # the torn manifest went to a temp file that was cleaned up: no
        # partial manifest.json is visible
        with pytest.raises(StoreError):
            ColumnarStore(root)
        assert not list(root.rglob("*.tmp"))
        assert _generate(root, run_dir=run_dir, resume=True) == 0
        assert _store_bytes(root) == _store_bytes(clean_reference)

    def test_torn_column_then_retry_is_byte_identical(
        self, tmp_path, clean_reference
    ):
        root = tmp_path / "st"
        spec = FsFaults(
            operator="torn-write", state_dir=str(tmp_path / "state"),
            sites=("atomic.bytes",), path_contains=".npy", seed=7,
        )
        with fsfaults_env(spec):
            assert _generate(root) == 1
            # budget spent: the retry inside the same armed env succeeds
            assert _generate(root) == 0
        assert spec.injections() == 1
        assert verify_store(root, deep=True) == []
        assert _store_bytes(root) == _store_bytes(clean_reference)
