"""Golden regression test for the store manifest's schema and layout.

The manifest's *identity surface* — the schema sha256 (which pins the
byte-level meaning of every column and the categorical vocabularies),
the format version, the column order, and the exact key layout of each
manifest section — is frozen as JSON under ``tests/store/golden/``.
Any change to the on-disk format must show up as an explicit golden
diff plus a ``FORMAT_VERSION`` bump, never as a silent re-encode that
old stores would misdecode.

Data-dependent values (row counts, timestamps, checksums) are *not*
frozen — they vary with inventory and platform, and the writer/reader
tests pin their semantics instead.

To regenerate after an intentional format change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/store/test_manifest_golden.py

then commit the rewritten file together with the FORMAT_VERSION bump.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.resilience import atomic_write_text
from repro.synth import TraceGenerator

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_JSON = GOLDEN_DIR / "manifest_shape.json"


def _regen_requested() -> bool:
    return bool(os.environ.get("REPRO_REGEN_GOLDEN"))


@pytest.fixture(scope="module")
def manifest_payload(tmp_path_factory):
    root = tmp_path_factory.mktemp("golden") / "store"
    TraceGenerator(seed=5).generate_store(root, [2, 13], shard_rows=100)
    return json.loads((root / "manifest.json").read_text(encoding="utf-8"))


def manifest_shape(payload: dict) -> dict:
    """The manifest's identity surface, stripped of data-dependent values."""
    shard = payload["shards"][0]
    system = next(iter(payload["systems"].values()))
    return {
        "kind": payload["kind"],
        "format_version": payload["format_version"],
        "schema_sha256": payload["schema_sha256"],
        "columns": payload["columns"],
        "record_ids_modes": ["implicit", "explicit"],
        "top_level_keys": sorted(payload),
        "shard_keys": sorted(shard),
        "shard_stat_columns": sorted(shard["stats"]),
        "shard_checksum_columns": sorted(shard["checksums"]),
        "system_entry_keys": sorted(system),
        "category_keys": sorted(system["categories"][0]),
        "meta_keys_generated": sorted(payload["meta"]),
    }


def test_manifest_shape_matches_golden(manifest_payload):
    shape = manifest_shape(manifest_payload)
    if _regen_requested():
        GOLDEN_DIR.mkdir(exist_ok=True)
        atomic_write_text(
            GOLDEN_JSON, json.dumps(shape, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {GOLDEN_JSON}")
    assert GOLDEN_JSON.exists(), (
        f"missing golden file {GOLDEN_JSON}; regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )
    golden = json.loads(GOLDEN_JSON.read_text(encoding="utf-8"))
    assert shape == golden, (
        "manifest schema/layout changed; if intentional, bump "
        "FORMAT_VERSION in repro.store.schema and regenerate with "
        "REPRO_REGEN_GOLDEN=1"
    )


def test_shard_names_are_zero_padded_sequence(manifest_payload):
    names = [shard["name"] for shard in manifest_payload["shards"]]
    assert names == [f"{i:05d}" for i in range(len(names))]
