"""Generator-based processes on top of the DES kernel.

A :class:`Process` wraps a Python generator that yields delays.  After
each yielded delay the generator is resumed at the new simulation time.
Another process (or external code) may :meth:`Process.interrupt` it, in
which case an :class:`Interrupt` is thrown into the generator at the
current time — this is how the checkpoint simulator models a failure
striking a running computation.

Example
-------
>>> from repro.simulate import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker():
...     log.append(("start", 0.0))
...     yield 10.0
...     log.append(("done", 10.0))
>>> p = Process(sim, worker())
>>> sim.run()
>>> log
[('start', 0.0), ('done', 10.0)]
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.simulate.engine import Event, SimulationError, Simulator

__all__ = ["Interrupt", "Process"]


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    Attributes
    ----------
    cause:
        Arbitrary payload describing why the process was interrupted
        (e.g. the failure record that struck the node).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Process:
    """Drive a generator of delays through a :class:`Simulator`.

    The generator yields non-negative floats (delays).  The process
    starts immediately: its first segment runs at construction time's
    scheduled instant (time ``sim.now``).
    """

    def __init__(self, sim: Simulator, generator: Generator[float, None, None]) -> None:
        self._sim = sim
        self._generator = generator
        self._alive = True
        self._pending_event: Optional[Event] = None
        # Kick off the process at the current time.
        self._pending_event = sim.schedule(sim.now, self._resume)

    @property
    def alive(self) -> bool:
        """True until the generator returns or raises."""
        return self._alive

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A dead process cannot be interrupted.
        """
        if not self._alive:
            raise SimulationError("cannot interrupt a completed process")
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._step(interrupt_cause=cause, interrupted=True)

    # Internal ----------------------------------------------------------------

    def _resume(self, _sim: Simulator) -> None:
        self._pending_event = None
        self._step(interrupt_cause=None, interrupted=False)

    def _step(self, interrupt_cause: object, interrupted: bool) -> None:
        try:
            if interrupted:
                delay = self._generator.throw(Interrupt(interrupt_cause))
            else:
                delay = next(self._generator)
        except StopIteration:
            self._alive = False
            return
        except Interrupt:
            # The generator chose not to handle the interrupt: it dies.
            self._alive = False
            return
        if delay < 0:
            self._alive = False
            raise SimulationError(f"process yielded negative delay {delay}")
        self._pending_event = self._sim.schedule_after(delay, self._resume)
