"""Regression: StoreSummary.to_dict must always be strict-JSON safe.

``StoreSummary`` initializes its extrema to ±inf; a scan that observes
no durations (empty predicate match, instant deadline, all shards
skipped) used to leak those sentinels into ``to_dict()``, which
``json.dumps`` renders as non-RFC ``Infinity`` tokens that crash
strict parsers (and ``repro serve``'s JSON responses).  The guard in
``_base_dict`` must emit ``None`` for the affected groups instead.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.resilience.deadline import Deadline
from repro.store import (
    ColumnarStore,
    Predicate,
    StoreSummary,
    store_from_trace,
    summarize_store,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory, small_trace):
    root = tmp_path_factory.mktemp("summary-json") / "store"
    store_from_trace(small_trace, root, shard_rows=200)
    return ColumnarStore(root)


def _strict_dumps(summary: StoreSummary) -> str:
    """Serialize the way ``repro store analyze --json`` must be able to."""
    return json.dumps(summary.to_dict(), allow_nan=False)


class TestInfinityGuards:
    def test_pristine_summary_is_json_safe(self, store):
        summary = summarize_store(store)
        payload = json.loads(_strict_dumps(summary))
        assert payload["rows"] > 0
        assert payload["repair_minutes"]["min"] <= payload[
            "repair_minutes"
        ]["max"]
        assert payload["start_time_range"][0] <= payload["start_time_range"][1]

    def test_empty_match_leaves_no_infinities(self, store):
        # No system 99 exists, so the extrema never move off ±inf.
        summary = summarize_store(
            store, predicate=Predicate.build(systems=[99])
        )
        assert summary.rows == 0
        assert math.isinf(summary.repair_min)
        payload = json.loads(_strict_dumps(summary))
        assert payload["repair_minutes"] is None
        assert payload["start_time_range"] is None

    def test_instant_deadline_partial_is_json_safe(self, store):
        summary = summarize_store(
            store, deadline=Deadline(1e-9), on_deadline="partial"
        )
        assert summary.partial is not None
        payload = json.loads(_strict_dumps(summary))
        assert payload["partial"]["reason"] == "deadline-exceeded"
        # Nothing scanned -> both extrema groups must collapse to None.
        if summary.rows == 0:
            assert payload["repair_minutes"] is None
            assert payload["start_time_range"] is None

    def test_direct_construction_with_rows_but_inf_extrema(self):
        # The sharp edge: rows counted but extrema untouched (e.g. a
        # degraded pass that only read count columns).  Guarding on
        # ``rows`` alone would leak Infinity here.
        summary = StoreSummary(rows=7)
        payload = json.loads(_strict_dumps(summary))
        assert payload["rows"] == 7
        assert payload["repair_minutes"] is None
        assert payload["start_time_range"] is None

    def test_describe_never_formats_infinity(self):
        text = StoreSummary(rows=3).describe()
        assert "inf" not in text
