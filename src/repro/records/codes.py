"""Canonical integer codes for the categorical record vocabulary.

Columnar encodings (the generator's internal columns and the on-disk
store of :mod:`repro.store`) represent :class:`RootCause`,
:class:`LowLevelCause` and :class:`Workload` as small integers.  The
code of a member is its position in *enum definition order* — a stable,
documented contract: appending a new member is backward compatible,
reordering is a format break (and changes the store's schema digest).

``-1`` is reserved as the "absent" code for the optional low-level
cause; it never collides with a real member.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.records.record import LowLevelCause, RootCause, Workload

__all__ = [
    "CAUSE_VOCAB",
    "DETAIL_VOCAB",
    "WORKLOAD_VOCAB",
    "CAUSE_CODE",
    "DETAIL_CODE",
    "WORKLOAD_CODE",
    "NO_DETAIL",
]

#: Code for "no low-level cause" (``low_level_cause is None``).
NO_DETAIL = -1

#: Decode tables: ``VOCAB[code]`` is the enum member for ``code``.
CAUSE_VOCAB: Tuple[RootCause, ...] = tuple(RootCause)
DETAIL_VOCAB: Tuple[LowLevelCause, ...] = tuple(LowLevelCause)
WORKLOAD_VOCAB: Tuple[Workload, ...] = tuple(Workload)

#: Encode tables: ``CODE[member]`` is the integer code of ``member``.
CAUSE_CODE: Dict[RootCause, int] = {
    cause: code for code, cause in enumerate(CAUSE_VOCAB)
}
DETAIL_CODE: Dict[LowLevelCause, int] = {
    detail: code for code, detail in enumerate(DETAIL_VOCAB)
}
WORKLOAD_CODE: Dict[Workload, int] = {
    workload: code for code, workload in enumerate(WORKLOAD_VOCAB)
}
