"""Time-between-failures studies (Figure 6, Section 5.3).

The paper views the failure sequence as a stochastic process from two
angles — as seen by a single node, and as seen by the whole system —
and splits each into early production (high, turbulent rates) and the
remaining life.  Findings:

* late era, both views: Weibull/gamma fit well with shape 0.7-0.8
  (decreasing hazard); exponential is poor (C² ~ 1.9 vs 1);
* early era, node view: higher variability (C² ~ 3.9), lognormal best;
* early era, system view: >30% of interarrivals are exactly zero
  (simultaneous failures) and no standard distribution fits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.errors import DegenerateSampleError
from repro.records.trace import FailureTrace
from repro.stats.distributions import Weibull
from repro.stats.empirical import EmpiricalDistribution
from repro.stats.fitting import FitResult, fit_all
from repro.stats.hazard import HazardDirection, hazard_direction

__all__ = [
    "InterarrivalStudy",
    "interarrival_study",
    "node_interarrivals",
    "system_interarrivals",
    "split_eras",
]


@dataclass(frozen=True)
class InterarrivalStudy:
    """Summary of one time-between-failures sample.

    Attributes
    ----------
    label:
        Human-readable description of the view/era.
    n:
        Number of interarrival observations.
    zero_fraction:
        Fraction of exactly-zero gaps (simultaneous failures).
    summary:
        Mean/median/C² of the gaps (seconds).
    fits:
        Exponential/Weibull/gamma/lognormal fits ranked by NLL (zeros
        clamped to 1 s, the paper's plots start at 10³ s anyway).
    """

    label: str
    n: int
    zero_fraction: float
    summary: EmpiricalDistribution
    fits: Tuple[FitResult, ...]
    gaps: Tuple[float, ...]

    @property
    def best(self) -> FitResult:
        """The winning fit."""
        return self.fits[0]

    @property
    def weibull_shape(self) -> Optional[float]:
        """Shape of the Weibull fit, if the Weibull was fitted."""
        for fit in self.fits:
            if isinstance(fit.distribution, Weibull):
                return fit.distribution.shape
        return None

    @property
    def hazard(self) -> HazardDirection:
        """Hazard direction of the best fit."""
        return hazard_direction(self.fits[0].distribution)

    @property
    def exponential_rank(self) -> int:
        """Zero-based rank of the exponential among the fits."""
        for rank, fit in enumerate(self.fits):
            if fit.name == "exponential":
                return rank
        raise LookupError("exponential not among the fits")


def interarrival_study(trace: FailureTrace, label: str = "") -> InterarrivalStudy:
    """Fit the four standard distributions to a trace's interarrivals."""
    gaps = trace.interarrival_times()
    if len(gaps) < 8:
        raise DegenerateSampleError(
            f"only {len(gaps)} interarrivals in {label or 'trace'}; need >= 8"
        )
    zero_fraction = float(np.mean(gaps == 0.0))
    return InterarrivalStudy(
        label=label or f"{len(gaps)} interarrivals",
        n=len(gaps),
        zero_fraction=zero_fraction,
        summary=EmpiricalDistribution.from_data(gaps),
        fits=tuple(fit_all(gaps, zero_policy="clamp", epsilon=1.0)),
        gaps=tuple(float(g) for g in gaps),
    )


def node_interarrivals(
    trace: FailureTrace, system_id: int, node_id: int, label: str = ""
) -> InterarrivalStudy:
    """The node view: gaps between failures of one node."""
    sub = trace.filter_systems([system_id]).filter_nodes([node_id])
    return interarrival_study(
        sub, label or f"system {system_id} node {node_id}"
    )


def system_interarrivals(
    trace: FailureTrace, system_id: int, label: str = ""
) -> InterarrivalStudy:
    """The system view: gaps between failures anywhere in the system."""
    sub = trace.filter_systems([system_id])
    return interarrival_study(sub, label or f"system {system_id} (system-wide)")


def split_eras(
    trace: FailureTrace, boundary: float
) -> Tuple[FailureTrace, FailureTrace]:
    """Split a trace at an absolute timestamp into (early, late).

    The paper uses 2000-01-01 for system 20 (1996-99 vs 2000-05).
    """
    early = trace.between(trace.data_start, boundary)
    late = trace.between(boundary, trace.data_end)
    return early, late
