"""Profiling views: tree reconstruction, self-time, hotspot ranking."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.profile import (
    build_span_tree,
    format_hotspots,
    format_span_tree,
    hotspots,
)


def _span(span_id, parent, name, depth, wall, cpu=0.0, status="ok", **extra):
    event = {
        "type": "span", "id": span_id, "parent": parent, "name": name,
        "depth": depth, "wall_s": wall, "cpu_s": cpu, "status": status,
        "attrs": {}, "counters": {},
    }
    event.update(extra)
    return event


class TestBuildSpanTree:
    def test_reconstructs_nesting_from_flat_events(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        roots = build_span_tree(tracer.to_events())
        assert [root.name for root in roots] == ["root"]
        assert [c.name for c in roots[0].children] == ["child"]
        assert [g.name for g in roots[0].children[0].children] == ["grandchild"]

    def test_missing_parent_becomes_root_not_dropped(self):
        events = [_span("main:5", "main:0", "orphan", 1, 0.1)]
        roots = build_span_tree(events)
        assert [root.name for root in roots] == ["orphan"]

    def test_self_wall_subtracts_children_and_floors_at_zero(self):
        events = [
            _span("main:1", "main:0", "child", 1, 0.4),
            _span("main:0", None, "root", 0, 1.0),
            # Cross-process overlap: child wall exceeds parent wall.
            _span("w:1", "w:0", "inner", 1, 2.0),
            _span("w:0", None, "outer", 0, 1.0),
        ]
        roots = {root.name: root for root in build_span_tree(events)}
        assert roots["root"].self_wall == 0.6
        assert roots["outer"].self_wall == 0.0


class TestHotspots:
    def test_ranked_by_self_time(self):
        events = [
            _span("main:1", "main:0", "fast", 1, 0.1),
            _span("main:2", "main:0", "slow", 1, 0.7),
            _span("main:0", None, "root", 0, 1.0),
        ]
        ranked = hotspots(events)
        assert [entry["name"] for entry in ranked] == ["slow", "root", "fast"]
        root = next(e for e in ranked if e["name"] == "root")
        assert root["self_s"] == pytest.approx(0.2)  # 1.0 - 0.1 - 0.7
        assert root["wall_s"] == 1.0
        total_share = sum(entry["share"] for entry in ranked)
        assert abs(total_share - 1.0) < 1e-9

    def test_aggregates_repeated_names(self):
        events = [
            _span("main:1", "main:0", "shard.attempt", 1, 0.3),
            _span("main:2", "main:0", "shard.attempt", 1, 0.2),
            _span("main:0", None, "root", 0, 1.0),
        ]
        entry = next(
            e for e in hotspots(events) if e["name"] == "shard.attempt"
        )
        assert entry["calls"] == 2
        assert entry["wall_s"] == 0.5

    def test_top_truncates(self):
        events = [_span(f"main:{i}", None, f"s{i}", 0, 1.0) for i in range(5)]
        assert len(hotspots(events, top=2)) == 2
        assert len(hotspots(events, top=0)) == 5


class TestFormatting:
    def test_tree_rendering_includes_errors_and_counters(self):
        tracer = obs.Tracer()
        try:
            with tracer.span("root", seed=1) as span:
                span.add("records", 12)
                raise ValueError("bad shard")
        except ValueError:
            pass
        text = format_span_tree(tracer.to_events())
        assert "root" in text and "seed=1" in text
        assert "records=12" in text
        assert "ERROR: ValueError: bad shard" in text

    def test_max_depth_prunes(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        text = format_span_tree(tracer.to_events(), max_depth=1)
        assert "child" in text and "grandchild" not in text

    def test_empty_trace_renders_placeholder(self):
        assert "no spans" in format_span_tree([])
        assert "no spans" in format_hotspots([])

    def test_hotspot_table_renders(self):
        events = [_span("main:0", None, "root", 0, 1.0, cpu=0.5)]
        text = format_hotspots(events)
        assert "root" in text and "100.0%" in text
