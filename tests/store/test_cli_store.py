"""CLI tests for ``repro generate --store columnar`` and ``repro store``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-store") / "st"
    code = main([
        "generate", "--seed", "5", "--systems", "2,13",
        "--store", "columnar", "--out", str(root),
        "--shard-rows", "150",
    ])
    assert code == 0
    return root


class TestGenerateStore:
    def test_writes_manifest_and_shards(self, store_dir):
        assert (store_dir / "manifest.json").exists()
        assert list((store_dir / "shards").glob("*.npy"))

    def test_matches_records_output(self, store_dir, tmp_path, capsys):
        csv_out = tmp_path / "list.csv"
        main([
            "generate", "--seed", "5", "--systems", "2,13",
            "--out", str(csv_out),
        ])
        export = tmp_path / "store.csv"
        code = main(["store", "export", str(store_dir), str(export)])
        assert code == 0
        assert export.read_bytes() == csv_out.read_bytes()

    def test_scale_grows_the_trace(self, tmp_path):
        small = tmp_path / "small"
        big = tmp_path / "big"
        main(["generate", "--seed", "5", "--systems", "2",
              "--store", "columnar", "--out", str(small)])
        main(["generate", "--seed", "5", "--systems", "2", "--scale", "4",
              "--store", "columnar", "--out", str(big)])
        small_rows = json.loads(
            (small / "manifest.json").read_text()
        )["row_count"]
        big_rows = json.loads((big / "manifest.json").read_text())["row_count"]
        assert big_rows > 2 * small_rows


class TestStoreCommands:
    def test_info(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "columnar store" in out
        assert "record ids: implicit" in out

    def test_info_json(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] > 0
        assert payload["record_ids"] == "implicit"

    def test_verify_ok(self, store_dir, capsys):
        assert main(["store", "verify", str(store_dir)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_catches_damage(self, store_dir, tmp_path, capsys):
        import shutil

        damaged = tmp_path / "damaged"
        shutil.copytree(store_dir, damaged)
        victim = next((damaged / "shards").glob("*-start_time.npy"))
        victim.write_bytes(victim.read_bytes()[:-8])
        assert main(["store", "verify", str(damaged)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_analyze_pushdown_counters(self, store_dir, capsys):
        assert main([
            "store", "analyze", str(store_dir), "--systems", "13", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts_by_system"].keys() == {"13"}
        assert payload["scan"]["shards_pruned"] >= 1

    def test_analyze_plain_output(self, store_dir, capsys):
        assert main(["store", "analyze", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "pushdown:" in out
        assert "counts by cause:" in out

    def test_import_then_export_round_trip(self, store_dir, tmp_path, capsys):
        csv_path = tmp_path / "t.csv"
        main(["store", "export", str(store_dir), str(csv_path)])
        imported = tmp_path / "imported"
        assert main([
            "store", "import", str(csv_path), str(imported),
        ]) == 0
        back = tmp_path / "back.csv"
        assert main(["store", "export", str(imported), str(back)]) == 0
        assert back.read_bytes() == csv_path.read_bytes()

    def test_export_filtered(self, store_dir, tmp_path):
        out = tmp_path / "sys2.csv"
        assert main([
            "store", "export", str(store_dir), str(out), "--systems", "2",
        ]) == 0
        text = out.read_text()
        assert ",13," not in text

    def test_error_boundary_on_missing_store(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


class TestStoreAsTraceInput:
    def test_report_reads_a_store_directory(self, store_dir, capsys):
        code = main(["report", str(store_dir), "--artifact", "fig1"])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_summary_matches_csv_input(self, store_dir, tmp_path, capsys):
        assert main(["validate", str(store_dir)]) == 0
        store_out = capsys.readouterr().out
        csv_path = tmp_path / "t.csv"
        main(["store", "export", str(store_dir), str(csv_path)])
        capsys.readouterr()
        assert main(["validate", str(csv_path)]) == 0
        assert capsys.readouterr().out == store_out
