"""The trace generator: orchestrates all synthetic components.

:class:`TraceGenerator` produces a :class:`~repro.records.trace.FailureTrace`
for any subset of the 22 LANL systems.  Generation is deterministic in
the seed and *compositional*: each (system, node) derives its own RNG
stream, so generating system 20 alone yields exactly the same records
for system 20 as generating the full trace.

Pipeline per system:

1. expand Table 1 categories into nodes with production windows,
2. assign workloads (graphics / front-end / compute) and per-node rate
   multipliers,
3. sample each node's failure times from a modulated Weibull renewal
   process (lifecycle x weekly modulation via time rescaling),
4. draw root causes (age-dependent unknown era for types D/G) and
   repair durations,
5. inject correlated bursts for the early NUMA era,
6. sort, stamp record IDs, wrap in a FailureTrace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.records.inventory import DATA_END, DATA_START, LANL_SYSTEMS
from repro.records.record import FailureRecord, Workload
from repro.records.system import SystemConfig
from repro.records.timeutils import SECONDS_PER_MONTH, SECONDS_PER_YEAR
from repro.records.trace import FailureTrace
from repro.simulate.rng import RngStream
from repro.synth.arrivals import ModulatedWeibullArrivals
from repro.synth.config import GeneratorConfig
from repro.synth.correlated import inject_bursts
from repro.synth.diurnal import WeeklyProfile
from repro.synth.jitter import MonthlyJitter
from repro.synth.lifecycle import lifecycle_multiplier, lifecycle_shape_for
from repro.synth.nodes import assign_workload, node_rate_multiplier, workload_multiplier
from repro.synth.repair import RepairModel
from repro.synth.rootcause import CauseModel

__all__ = ["TraceGenerator"]


class TraceGenerator:
    """Generate a synthetic LANL failure trace.

    Parameters
    ----------
    seed:
        Root seed; the trace is a deterministic function of it (plus
        the configuration).
    config:
        Calibration knobs; defaults reproduce the paper.
    systems:
        Inventory to generate for; defaults to all 22 LANL systems.
    data_start / data_end:
        Observation window; defaults to the LANL data window.

    Example
    -------
    >>> trace = TraceGenerator(seed=1).generate([2])
    >>> 0 < len(trace) < 400   # system 2 averages ~17.6 failures/year
    True
    """

    def __init__(
        self,
        seed: int = 0,
        config: Optional[GeneratorConfig] = None,
        systems: Optional[Dict[int, SystemConfig]] = None,
        data_start: float = DATA_START,
        data_end: float = DATA_END,
    ) -> None:
        self.config = config if config is not None else GeneratorConfig()
        self.systems = dict(systems if systems is not None else LANL_SYSTEMS)
        self.data_start = float(data_start)
        self.data_end = float(data_end)
        self._root = RngStream(seed)
        self._profile = WeeklyProfile(
            amplitude=self.config.diurnal_amplitude,
            peak_hour=self.config.diurnal_peak_hour,
            weekend_factor=self.config.weekend_factor,
            enabled=self.config.diurnal_enabled,
        )
        self._repair_model = RepairModel(self.config)

    def generate(self, system_ids: Optional[Sequence[int]] = None) -> FailureTrace:
        """Generate the trace for the given systems (default: all)."""
        if system_ids is None:
            system_ids = sorted(self.systems.keys())
        records: List[FailureRecord] = []
        for system_id in system_ids:
            records.extend(self.generate_system(system_id))
        records = [
            FailureRecord(
                start_time=record.start_time,
                end_time=record.end_time,
                system_id=record.system_id,
                node_id=record.node_id,
                root_cause=record.root_cause,
                low_level_cause=record.low_level_cause,
                workload=record.workload,
                record_id=index,
            )
            for index, record in enumerate(
                sorted(records, key=lambda r: (r.start_time, r.system_id, r.node_id))
            )
        ]
        return FailureTrace(
            records,
            systems=self.systems,
            data_start=self.data_start,
            data_end=self.data_end,
        )

    def generate_system(self, system_id: int) -> List[FailureRecord]:
        """Generate (unsorted, un-numbered) records for one system."""
        system = self.systems[system_id]
        config = self.config
        hardware_type = system.hardware_type
        nodes = system.expand_nodes(self.data_start, self.data_end)
        system_start, _system_end = system.production_window(self.data_start, self.data_end)
        shape = lifecycle_shape_for(
            hardware_type,
            system_id,
            ramp_types=config.ramp_types,
            ramp_exempt_systems=config.ramp_exempt_systems,
        )
        cause_model = CauseModel(config, hardware_type)
        system_end = system.production_window(self.data_start, self.data_end)[1]
        n_months = int((system_end - system_start) // SECONDS_PER_MONTH) + 2
        jitter = MonthlyJitter(
            self._root.child("system", str(system_id), "jitter"),
            n_months=n_months,
            shape=shape,
            sigma_early_ramp=config.jitter_sigma_early_ramp,
            sigma_early_decay=config.jitter_sigma_early_decay,
            sigma_late=config.jitter_sigma_late,
            era_months=config.jitter_era_months,
            enabled=config.jitter_enabled,
        )
        rate_per_proc_second = (
            config.rate_per_proc_year[hardware_type]
            * config.early_system_boost.get(system_id, 1.0)
            / SECONDS_PER_YEAR
        )
        workloads: Dict[int, Workload] = {
            node.node_id: assign_workload(system, node.node_id) for node in nodes
        }
        records: List[FailureRecord] = []
        for node in nodes:
            node_stream = self._root.child(
                "system", str(system_id), "node", str(node.node_id)
            )
            multiplier = node_rate_multiplier(node, self._root, config.node_sigma)
            multiplier *= workload_multiplier(
                workloads[node.node_id],
                graphics_multiplier=config.graphics_multiplier,
                frontend_multiplier=config.frontend_multiplier,
            )
            base_rate = rate_per_proc_second * node.procs * multiplier
            sampler = ModulatedWeibullArrivals(
                base_rate=base_rate,
                shape=config.tbf_shape,
                # Lifecycle age is measured from *system* production
                # start: a node added later joins a matured system.
                lifecycle=lambda age, node=node: (
                    lifecycle_multiplier(
                        shape, age + (node.production_start - system_start)
                    )
                    * jitter.at_age(age + (node.production_start - system_start))
                ),
                profile=self._profile,
                start=node.production_start,
                end=node.production_end,
            )
            generator = node_stream.generator
            for start_time in sampler.sample(generator):
                age = start_time - system_start
                cause, detail = cause_model.sample(generator, age)
                repair = self._repair_model.sample_seconds(
                    generator, cause, hardware_type
                )
                records.append(
                    FailureRecord(
                        start_time=start_time,
                        end_time=start_time + repair,
                        system_id=system_id,
                        node_id=node.node_id,
                        root_cause=cause,
                        low_level_cause=detail,
                        workload=workloads[node.node_id],
                    )
                )
        if config.bursts_enabled and system_id in config.burst_systems:
            burst_stream = self._root.child("system", str(system_id), "bursts")
            records = inject_bursts(
                records,
                nodes,
                workloads,
                system_start,
                hardware_type,
                config,
                self._repair_model,
                burst_stream.generator,
            )
        return records
