"""JSON-lines reader/writer for failure traces.

One JSON object per line, using the same field names as the CSV schema.
JSONL is convenient for streaming pipelines and for appending records
incrementally; the CSV format remains the interchange format with the
real CFDR data.  Both ends support transparent gzip (``.jsonl.gz``),
and the reader honors the same :class:`~repro.io.policy.IngestPolicy`
as the CSV reader.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Union

from repro.io.common import PathLike, atomic_open_text, open_text
from repro.io.policy import IngestPolicy, IngestReport, RowPipeline
from repro.io.schema import SchemaError
from repro.resilience.atomic import fs_fault_hook
from repro.records.inventory import DATA_END, DATA_START, LANL_SYSTEMS
from repro.records.record import FailureRecord, LowLevelCause, RootCause, Workload
from repro.records.system import SystemConfig
from repro.records.trace import FailureTrace

__all__ = ["read_jsonl", "write_jsonl"]


def _record_to_dict(record: FailureRecord) -> dict:
    payload = {
        "system_id": record.system_id,
        "node_id": record.node_id,
        "start_time": record.start_time,
        "end_time": record.end_time,
        "workload": record.workload.value,
        "root_cause": record.root_cause.value,
    }
    if record.low_level_cause is not None:
        payload["low_level_cause"] = record.low_level_cause.value
    if record.record_id is not None:
        payload["record_id"] = record.record_id
    return payload


def _parse_fields(payload: Mapping, line: int) -> Dict[str, Any]:
    try:
        low_text = payload.get("low_level_cause")
        return dict(
            start_time=float(payload["start_time"]),
            end_time=float(payload["end_time"]),
            system_id=int(payload["system_id"]),
            node_id=int(payload["node_id"]),
            workload=Workload(payload.get("workload", "compute")),
            root_cause=RootCause(payload.get("root_cause", "unknown")),
            low_level_cause=LowLevelCause(low_text) if low_text else None,
            record_id=payload.get("record_id"),
        )
    except (KeyError, ValueError, TypeError, AttributeError) as exc:
        raise SchemaError(
            f"line {line}: malformed record: {exc}",
            error_class="malformed-value",
            line=line,
        ) from exc


def write_jsonl(trace: Union[FailureTrace, Iterable[FailureRecord]], path: PathLike) -> int:
    """Write a trace as JSON lines; returns the number of lines written.

    A ``.gz`` suffix writes gzip-compressed text.  The write is atomic
    (tmp + fsync + rename), so an interrupt cannot truncate the file.

    A non-trace iterable is consumed lazily, one record at a time, so
    streaming sources (e.g. a columnar store) export in bounded memory.
    """
    path = Path(path)
    records = trace.records if isinstance(trace, FailureTrace) else trace
    fs_fault_hook("io.jsonl", path)
    count = 0
    with atomic_open_text(path) as handle:
        for record in records:
            handle.write(json.dumps(_record_to_dict(record), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(
    path: PathLike,
    systems: Optional[Mapping[int, SystemConfig]] = None,
    data_start: Optional[float] = None,
    data_end: Optional[float] = None,
    policy: Optional[IngestPolicy] = None,
    report: Optional[IngestReport] = None,
) -> FailureTrace:
    """Load a failure trace from a JSON-lines file (``.jsonl[.gz]``).

    ``policy`` and ``report`` behave exactly as in
    :func:`~repro.io.csv_format.read_lanl_csv`.
    """
    path = Path(path)
    pipeline = RowPipeline(
        policy,
        source=str(path),
        systems=dict(systems) if systems is not None else LANL_SYSTEMS,
        data_start=data_start if data_start is not None else DATA_START,
        data_end=data_end if data_end is not None else DATA_END,
        report=report,
    )
    records = []
    try:
        with open_text(path, "r") as handle:
            for line_number, line in enumerate(handle, start=1):
                stripped = line.strip()
                if not stripped:
                    continue

                def parse(stripped=stripped, line_number=line_number):
                    try:
                        payload = json.loads(stripped)
                    except json.JSONDecodeError as exc:
                        raise SchemaError(
                            f"line {line_number}: invalid JSON: {exc}",
                            error_class="invalid-json",
                            line=line_number,
                        ) from exc
                    return _parse_fields(payload, line_number)

                record = pipeline.submit(line_number, stripped, parse)
                if record is not None:
                    records.append(record)
    finally:
        pipeline.close()
    pipeline.finish()
    kwargs = {}
    if data_start is not None:
        kwargs["data_start"] = data_start
    if data_end is not None:
        kwargs["data_end"] = data_end
    if systems is not None:
        kwargs["systems"] = systems
    return FailureTrace(records, **kwargs)
