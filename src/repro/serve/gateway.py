"""Circuit-broken store access with a three-rung degradation ladder.

Every query the service executes goes through :class:`StoreGateway`,
which walks the ladder the ISSUE specifies:

1. **primary** — fresh ``ColumnarStore(root, on_damage="raise")``
   scan.  Guarded by a time-based-recovery
   :class:`~repro.resilience.breaker.CircuitBreaker`: after repeated
   primary failures the breaker opens and the gateway stops paying for
   doomed full reads until the cooldown admits a half-open probe.
2. **degraded** — ``on_damage="skip"`` scan over the healthy shards,
   answering with explicit per-system ``coverage``.
3. **stale** — the last complete cached result for this query, served
   with ``stale: true`` when the store cannot answer at all.

Results are cached under a *generation* token digesting both the
manifest bytes and the quarantine ledger bytes (see
:mod:`repro.serve.cache` for why both).  Deadline-truncated scans come
back ``partial`` (never cached); a blown deadline is a property of
this request's budget, not of the store, so it does **not** count as a
breaker failure.

Gateway methods run on serve executor threads; breaker transitions are
serialized by an internal lock, and each query opens its own store
handle so no scan state is shared across threads.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple

from repro import obs
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.serve.cache import ResultCache
from repro.store.analytics import summarize_store
from repro.store.manifest import (
    LEDGER_NAME,
    MANIFEST_NAME,
    QUARANTINE_DIR,
    Predicate,
    StoreError,
)
from repro.store.reader import DEFAULT_BATCH_ROWS, ColumnarStore

__all__ = ["Query", "QueryResult", "StoreGateway", "StoreUnavailable"]

#: Breaker key for the single data source a gateway fronts.
_SOURCE = "store"


class StoreUnavailable(Exception):
    """Every rung of the degradation ladder failed for this query."""


@dataclass(frozen=True)
class Query:
    """A normalized analytics query (the cache-key unit).

    ``systems`` is kept sorted/deduplicated by :meth:`build` so that
    ``?system=2&system=1`` and ``?system=1&system=2`` share a cache
    entry.
    """

    kind: str = "summary"
    systems: Optional[Tuple[int, ...]] = None
    t_min: Optional[float] = None
    t_max: Optional[float] = None

    @classmethod
    def build(cls, kind="summary", systems=None, t_min=None, t_max=None) -> "Query":
        return cls(
            kind=str(kind),
            systems=(
                None if systems is None
                else tuple(sorted({int(s) for s in systems}))
            ),
            t_min=None if t_min is None else float(t_min),
            t_max=None if t_max is None else float(t_max),
        )

    def key(self) -> str:
        """Canonical cache key; stable across parameter orderings."""
        systems = (
            "-" if self.systems is None
            else ",".join(str(s) for s in self.systems)
        )
        return (
            f"{self.kind}|systems={systems}"
            f"|t_min={self.t_min!r}|t_max={self.t_max!r}"
        )

    def predicate(self) -> Optional[Predicate]:
        if self.systems is None and self.t_min is None and self.t_max is None:
            return None
        return Predicate.build(
            t_min=self.t_min, t_max=self.t_max, systems=self.systems
        )


@dataclass
class QueryResult:
    """One answer plus the serving metadata the response contract requires."""

    data: dict
    degraded: bool = False
    stale: bool = False
    partial: bool = False
    #: Per-system readable fraction (str keys) for degraded answers,
    #: ``1.0`` for complete ones, ``None`` when unknowable (stale).
    coverage: object = 1.0
    #: ``"hit"``, ``"miss"`` or ``"stale"``.
    cache: str = "miss"
    #: Breaker state observed when the query was served.
    breaker: str = "closed"
    generation: Optional[str] = None

    def status(self) -> str:
        if self.stale:
            return "stale"
        if self.degraded:
            return "degraded"
        if self.partial:
            return "partial"
        return "ok"


@dataclass
class StoreGateway:
    """Degradation-ladder access to one columnar store directory."""

    root: Path
    breaker: CircuitBreaker = field(
        default_factory=lambda: CircuitBreaker(
            stages=("primary",), failure_threshold=3, cooldown_seconds=5.0
        )
    )
    cache: ResultCache = field(default_factory=ResultCache)
    batch_rows: int = DEFAULT_BATCH_ROWS
    #: Degradation-path counters for ``/v1/stats``.
    primary_reads: int = 0
    degraded_reads: int = 0
    stale_reads: int = 0
    failures: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- generation token -------------------------------------------------

    def generation(self) -> str:
        """Digest of manifest + quarantine ledger bytes.

        Raises :class:`StoreError` when the manifest is unreadable —
        the signal that even opening the store will fail.
        """
        digest = hashlib.sha256()
        try:
            digest.update((self.root / MANIFEST_NAME).read_bytes())
        except OSError as error:
            raise StoreError(
                f"store manifest unreadable: {error}"
            ) from error
        digest.update(b"\x00")
        ledger_path = self.root / QUARANTINE_DIR / LEDGER_NAME
        try:
            digest.update(ledger_path.read_bytes())
        except OSError:
            digest.update(b"-")
        return digest.hexdigest()[:16]

    # -- breaker bookkeeping (thread-safe) --------------------------------

    def _breaker_allow(self) -> bool:
        with self._lock:
            return self.breaker.allow(_SOURCE)

    def _breaker_success(self) -> None:
        with self._lock:
            self.breaker.record_success(_SOURCE)

    def _breaker_failure(self) -> None:
        with self._lock:
            self.breaker.record_failure(_SOURCE)

    def breaker_state(self) -> str:
        with self._lock:
            return self.breaker.state(_SOURCE)

    # -- ladder rungs ------------------------------------------------------

    def _scan(
        self, query: Query, deadline: Optional[Deadline], on_damage: str
    ):
        store = ColumnarStore(self.root, on_damage=on_damage)
        if query.kind == "report":
            # Full out-of-core paper report: same streaming scan
            # machinery, same ladder/caching semantics (StoreReport
            # exposes the to_dict()/partial surface this method's
            # callers rely on).
            from repro.report.streaming import run_store_report

            result = run_store_report(
                store,
                batch_rows=self.batch_rows,
                deadline=deadline,
                on_deadline="partial",
            )
            return store, result
        summary = summarize_store(
            store,
            predicate=query.predicate(),
            batch_rows=self.batch_rows,
            deadline=deadline,
            on_deadline="partial",
        )
        return store, summary

    def query(
        self, query: Query, deadline: Optional[Deadline] = None
    ) -> QueryResult:
        """Answer ``query`` by walking the degradation ladder.

        Never raises for store damage — that is absorbed into degraded
        or stale results.  Raises :class:`StoreUnavailable` only when
        all three rungs fail (no manifest *and* no cached answer).
        """
        key = query.key()
        primary_error: Optional[BaseException] = None
        try:
            generation = self.generation()
        except StoreError as error:
            primary_error = error
            generation = None
        if generation is not None:
            cached = self.cache.get(generation, key)
            if cached is not None:
                obs.metrics().counter("serve.cache_hits").add(1)
                return QueryResult(
                    data=cached.payload,
                    cache="hit",
                    breaker=self.breaker_state(),
                    generation=generation,
                )
            if self._breaker_allow():
                # Rung 1: primary strict read.
                try:
                    with obs.span("serve.query.primary", kind=query.kind):
                        _, summary = self._scan(query, deadline, "raise")
                except (StoreError, OSError) as error:
                    primary_error = error
                    self._breaker_failure()
                    self.failures += 1
                    obs.metrics().counter("serve.primary_failures").add(1)
                else:
                    self._breaker_success()
                    self.primary_reads += 1
                    data = summary.to_dict()
                    partial = summary.partial is not None
                    if not partial:
                        self.cache.put(generation, key, data)
                    return QueryResult(
                        data=data,
                        partial=partial,
                        breaker=self.breaker_state(),
                        generation=generation,
                    )
            # Rung 2: degraded read over healthy shards only.
            try:
                with obs.span("serve.query.degraded", kind=query.kind):
                    store, summary = self._scan(query, deadline, "skip")
            except (StoreError, OSError) as error:
                primary_error = error
            else:
                self.degraded_reads += 1
                obs.metrics().counter("serve.degraded_reads").add(1)
                coverage = {
                    str(system_id): fraction
                    for system_id, fraction in store.degraded.coverage().items()
                }
                return QueryResult(
                    data=summary.to_dict(),
                    degraded=bool(store.degraded),
                    partial=summary.partial is not None,
                    coverage=coverage if store.degraded else 1.0,
                    breaker=self.breaker_state(),
                    generation=generation,
                )
        # Rung 3: last-good stale answer.
        last = self.cache.last_good(key)
        if last is not None:
            self.stale_reads += 1
            obs.metrics().counter("serve.stale_reads").add(1)
            return QueryResult(
                data=last.payload,
                stale=True,
                coverage=None,
                cache="stale",
                breaker=self.breaker_state(),
                generation=last.generation,
            )
        raise StoreUnavailable(
            f"store at {self.root} unavailable and no cached result for "
            f"{key!r}: {primary_error}"
        )

    # -- cheap manifest-only views ----------------------------------------

    def systems(self) -> dict:
        """Per-system row counts straight from the manifest (no scan)."""
        store = ColumnarStore(self.root, on_damage="skip")
        by_system: dict = {}
        for shard in store.manifest.shards:
            system_id = int(shard.stats["system_id"][0])
            by_system[system_id] = by_system.get(system_id, 0) + shard.rows
        return {
            "systems": [
                {"system": system_id, "rows": rows}
                for system_id, rows in sorted(by_system.items())
            ],
            "row_count": store.manifest.row_count,
        }

    def readiness(self) -> dict:
        """Open the store and report its healing state (for ``/readyz``)."""
        store = ColumnarStore(self.root, on_damage="skip")
        return store.info()["healing"]

    def to_dict(self) -> dict:
        """Counters for ``/v1/stats``."""
        return {
            "breaker": self.breaker_state(),
            "primary_reads": self.primary_reads,
            "degraded_reads": self.degraded_reads,
            "stale_reads": self.stale_reads,
            "failures": self.failures,
            "cache": self.cache.to_dict(),
        }
