"""Streaming report == materialized report, on the full 22-system trace.

The out-of-core report's contract (ROADMAP: full paper report from a
store that never fits in memory) splits the ten sections in two:

* **Exactly mergeable** — table1, fig1, fig2, fig3, fig4, fig5, table3
  are built from counts, sums, and extrema whose chunk-merge is
  lossless.  These must be *byte-identical* to the materialized
  report.
* **Quantile-sketched** — fig6, table2, fig7 involve medians and
  empirical CDFs, which stream through ``LogBucketSketch``; they must
  agree within the sketch's pinned relative error.

The suite also proves the two operational properties: a parallel scan
merges to the same answer as a serial one, and a blown deadline yields
an honestly-flagged partial report instead of a hang or a crash.
"""

from __future__ import annotations

import re

import pytest

from repro.report import run_paper_report, run_store_report
from repro.resilience.deadline import Deadline
from repro.stats.sketch import LogBucketSketch
from repro.store import ColumnarStore, store_from_trace

EXACT_SECTIONS = ("table1", "fig1", "fig2", "fig3", "fig4", "fig5", "table3")
EPSILON_SECTIONS = ("fig6", "table2", "fig7")

# Pinned sketch resolution (64 buckets/decade): ~1.8% relative error.
# Printed values are also rounded, so allow one trailing-digit ULP.
QUANTILE_REL = LogBucketSketch().relative_error * 2
_FLOAT = re.compile(r"-?\d+\.?\d*(?:[eE][+-]?\d+)?")


@pytest.fixture(scope="module")
def store(tmp_path_factory, full_trace):
    root = tmp_path_factory.mktemp("equivalence") / "store"
    store_from_trace(full_trace, root)
    return ColumnarStore(root)


@pytest.fixture(scope="module")
def streaming(store):
    return run_store_report(store)


@pytest.fixture(scope="module")
def materialized(store):
    return run_paper_report(store.to_trace())


def _sections(report):
    return {section.name: section for section in report.sections}


class TestSectionParity:
    def test_same_sections_in_same_order(self, streaming, materialized):
        assert [s.name for s in streaming.report.sections] == [
            s.name for s in materialized.sections
        ]

    def test_all_sections_ok_on_curated_data(self, streaming, materialized):
        assert streaming.report.ok, streaming.report.diagnostics()
        assert materialized.ok, materialized.diagnostics()
        assert streaming.partial is None
        assert not streaming.report.sections[0].partial


class TestExactSections:
    @pytest.mark.parametrize("name", EXACT_SECTIONS)
    def test_byte_identical(self, name, streaming, materialized):
        got = _sections(streaming.report)[name]
        want = _sections(materialized)[name]
        assert got.text == want.text


class TestSketchedSections:
    @pytest.mark.parametrize("name", EPSILON_SECTIONS)
    def test_within_pinned_relative_error(self, name, streaming, materialized):
        got = _sections(streaming.report)[name].text
        want = _sections(materialized)[name].text
        got_lines = got.splitlines()
        want_lines = want.splitlines()
        assert len(got_lines) == len(want_lines)
        for got_line, want_line in zip(got_lines, want_lines):
            if "|" in want_line:
                # Plot body: digit glyphs mark curve points, and sketch
                # representatives may land one column over.  Compare
                # only the y-axis label left of the frame.
                got_line = got_line.split("|", 1)[0]
                want_line = want_line.split("|", 1)[0]
            got_floats = _FLOAT.findall(got_line)
            want_floats = _FLOAT.findall(want_line)
            assert len(got_floats) == len(want_floats), (
                f"{name}: line shape diverged:\n  {got_line}\n  {want_line}"
            )
            for got_token, want_token in zip(got_floats, want_floats):
                assert float(got_token) == pytest.approx(
                    float(want_token), rel=QUANTILE_REL, abs=1.5
                ), f"{name}: {got_token} vs {want_token} in:\n  {want_line}"

    @pytest.mark.parametrize("name", EPSILON_SECTIONS)
    def test_fit_rankings_identical(self, name, streaming, materialized):
        # The distribution-fit story (which model wins, per panel) is
        # the paper's conclusion; the sketch must not change it.
        def fit_lines(text):
            return [
                line.strip().split("(")[0]
                for line in text.splitlines()
                if re.match(
                    r"\s+(LogNormal|Weibull|Gamma|Exponential)\(", line
                )
            ]

        got = fit_lines(_sections(streaming.report)[name].text)
        want = fit_lines(_sections(materialized)[name].text)
        assert got == want
        if name != "table2":
            assert got, f"{name}: no fit lines found"


class TestNoMaterialization:
    def test_streaming_report_never_builds_a_trace(self, store, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("streaming report materialized a trace")

        monkeypatch.setattr(ColumnarStore, "to_trace", boom)
        result = run_store_report(store)
        assert result.report.ok, result.report.diagnostics()


class TestParallelScan:
    def test_parallel_merge_equals_serial(self, store, streaming):
        parallel = run_store_report(store, workers=3)
        for serial_section, parallel_section in zip(
            streaming.report.sections, parallel.report.sections
        ):
            assert parallel_section.status == serial_section.status
            assert parallel_section.text == serial_section.text


class TestDeadlinePartial:
    def test_instant_deadline_yields_flagged_partial(self, store):
        result = run_store_report(
            store, deadline=Deadline(1e-9), on_deadline="partial"
        )
        assert result.partial is not None
        assert result.partial["reason"] == "deadline-exceeded"
        assert result.partial["rows_seen"] < result.partial["rows_total"]
        assert all(section.partial for section in result.report.sections)
        # The report still renders end to end: data-dependent sections
        # degrade, data-free ones (table3) stay ok, nothing crashes.
        assert _sections(result.report)["table3"].ok
        assert result.report.render()
        payload = result.to_dict()
        assert payload["partial"]["reason"] == "deadline-exceeded"
        assert all(section["partial"] for section in payload["sections"])

    def test_instant_deadline_raises_by_default(self, store):
        from repro.resilience.deadline import DeadlineExceeded

        with pytest.raises(DeadlineExceeded):
            run_store_report(store, deadline=Deadline(1e-9))
