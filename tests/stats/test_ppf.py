"""Tests for quantile functions (ppf)."""

import numpy as np
import pytest

from repro.stats.distributions import Exponential, Gamma, LogNormal, Normal, Weibull

ALL = [
    Exponential(scale=120.0),
    Weibull(shape=0.7, scale=50.0),
    Weibull(shape=2.0, scale=50.0),
    Gamma(shape=0.6, scale=30.0),
    LogNormal(mu=2.0, sigma=1.2),
    Normal(mu=10.0, sigma=4.0),
    Normal(mu=-3.0, sigma=1.0),
]


@pytest.mark.parametrize("dist", ALL, ids=lambda d: d.describe())
class TestPpf:
    def test_roundtrip(self, dist):
        qs = np.array([0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999])
        xs = np.asarray(dist.ppf(qs), dtype=float)
        assert np.allclose(np.asarray(dist.cdf(xs), dtype=float), qs, atol=1e-6)

    def test_median_agrees(self, dist):
        assert float(dist.ppf(0.5)) == pytest.approx(dist.median, rel=1e-6)

    def test_monotone(self, dist):
        qs = np.linspace(0.01, 0.99, 25)
        xs = np.asarray(dist.ppf(qs), dtype=float)
        assert np.all(np.diff(xs) >= -1e-9)

    def test_out_of_range_rejected(self, dist):
        with pytest.raises(ValueError):
            dist.ppf(-0.1)
        with pytest.raises(ValueError):
            dist.ppf(1.1)


class TestClosedForms:
    def test_exponential_formula(self):
        dist = Exponential(scale=10.0)
        assert float(dist.ppf(1.0 - np.exp(-1.0))) == pytest.approx(10.0)

    def test_weibull_formula(self):
        dist = Weibull(shape=0.5, scale=10.0)
        # F(x) = 1 - exp(-(x/10)^0.5); at x = 10, q = 1 - e^-1.
        assert float(dist.ppf(1.0 - np.exp(-1.0))) == pytest.approx(10.0)

    def test_extreme_quantiles(self):
        dist = Weibull(shape=0.7, scale=10.0)
        assert float(dist.ppf(0.0)) == 0.0
        assert float(dist.ppf(1.0)) == np.inf
