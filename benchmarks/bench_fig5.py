"""Figure 5: failures by hour of day and day of week.

Paper shape claims asserted:

* the peak-hour failure rate is about twice the overnight trough;
* weekday rates are nearly twice weekend rates;
* there is no Monday spike (which rules out delayed detection and
  supports the workload-correlation interpretation).
"""

from repro.analysis.periodicity import periodicity_study
from repro.report import render_figure5


def test_figure5(benchmark, trace):
    study = benchmark(periodicity_study, trace)
    print("\n" + render_figure5(trace))

    # Peak/trough ~2 (paper: "two times higher").
    assert 1.6 < study.peak_trough_ratio < 2.6
    assert 10 <= study.peak_hour <= 18
    assert study.trough_hour <= 6 or study.trough_hour >= 22

    # Weekday/weekend ~2 (paper: "nearly two times as high").
    assert 1.5 < study.weekday_weekend_ratio < 2.3

    # No Monday spike: each weekday within 10% of the weekday mean.
    assert study.monday_spike < 1.10
