"""Correlated simultaneous failures (Figure 6(c)).

System-wide interarrival data for system 20 in its early years shows
more than 30% *zero* gaps — two or more nodes failing at the same
instant — indicating tightly correlated failures in the initial years
of the first NUMA clusters.

We model this as a burst process layered over the independent per-node
arrivals: during the early era of the burst systems, each failure
spawns, with probability ``burst_prob``, a geometric number of clone
failures on other in-production nodes at the *same timestamp*.  Clones
inherit the parent's root cause (a power outage or fabric fault hits
many nodes at once) but draw their own repair times and carry their own
node's workload label.

With clone probability p and mean clone count m, the expected fraction
of zero interarrivals is ``p*m / (1 + p*m)`` — the defaults
(p = 0.32, m = 1.8) give ~37%, matching "more than 30%".
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.records.node import NodeConfig
from repro.records.record import FailureRecord, Workload
from repro.records.system import HardwareType
from repro.records.timeutils import SECONDS_PER_MONTH
from repro.synth.config import GeneratorConfig
from repro.synth.repair import RepairModel

__all__ = ["inject_bursts"]


def inject_bursts(
    records: Sequence[FailureRecord],
    nodes: Sequence[NodeConfig],
    workloads: Mapping[int, Workload],
    system_start: float,
    hardware_type: HardwareType,
    config: GeneratorConfig,
    repair_model: RepairModel,
    generator: np.random.Generator,
) -> List[FailureRecord]:
    """Clone early-era failures onto other nodes at identical timestamps.

    Parameters
    ----------
    records:
        The system's independently generated failures (any order).
    nodes:
        All nodes of the system (clone targets are drawn from those in
        production at the failure instant).
    workloads:
        Node ID -> workload label (clones carry their own node's).
    system_start:
        The system's production start (defines the early era).
    hardware_type:
        The system's hardware type (for the clone repair model).
    config:
        Generator configuration (burst probability, era length...).
    repair_model:
        Repair-duration sampler for the clones.
    generator:
        RNG for the burst draws.

    Returns
    -------
    list of FailureRecord
        The original records plus clones; *not* sorted — the caller's
        trace constructor sorts.
    """
    if not config.bursts_enabled or config.burst_prob <= 0.0:
        return list(records)
    era_end = system_start + config.burst_era_months * SECONDS_PER_MONTH
    # Geometric on {1, 2, ...} with mean m has success probability 1/m.
    geometric_p = min(1.0, 1.0 / max(config.burst_mean_extra, 1.0))
    node_by_id: Dict[int, NodeConfig] = {node.node_id: node for node in nodes}
    output: List[FailureRecord] = list(records)
    for record in records:
        if record.start_time >= era_end:
            continue
        if generator.random() >= config.burst_prob:
            continue
        candidates = [
            node_id
            for node_id, node in node_by_id.items()
            if node_id != record.node_id and node.in_production(record.start_time)
        ]
        if not candidates:
            continue
        n_clones = min(int(generator.geometric(geometric_p)), len(candidates))
        chosen = generator.choice(len(candidates), size=n_clones, replace=False)
        for index in np.atleast_1d(chosen):
            clone_node_id = candidates[int(index)]
            repair = repair_model.sample_seconds(
                generator, record.root_cause, hardware_type
            )
            output.append(
                FailureRecord(
                    start_time=record.start_time,
                    end_time=record.start_time + repair,
                    system_id=record.system_id,
                    node_id=clone_node_id,
                    root_cause=record.root_cause,
                    low_level_cause=record.low_level_cause,
                    workload=workloads.get(clone_node_id, Workload.COMPUTE),
                )
            )
    return output
