"""The full paper report straight from a columnar store.

:func:`run_store_report` renders every paper artifact from one
bounded-memory streaming pass over
:meth:`~repro.store.reader.ColumnarStore.iter_batches` — no
:class:`~repro.records.trace.FailureTrace` is ever materialized.  The
scan folds chunks into a :class:`~repro.analysis.outofcore.PaperAccumulator`
(optionally sharded across supervised worker processes and merged
associatively); section builders then read the exact counts and
sketches back out through the same formatters the materialized
renderers use.

Section-for-section equivalence with ``run_paper_report(trace)``:

========  ==========================================================
section   fidelity vs the materialized report
========  ==========================================================
table1    byte-identical (manifest inventory only)
fig1      byte-identical in practice (integer counts; downtime sums
          agree to last-ulp rounding absorbed by the ``.1f`` format)
fig2      byte-identical (exact integer counts -> identical floats)
fig3      byte-identical (exact per-node counts and workloads)
fig4      byte-identical (exact monthly integer grids)
fig5      byte-identical (exact hour/weekday bins)
fig6      within sketch epsilon (quantiles/fits from the log-bucket
          histogram; moments and C^2 exact)
table2    within sketch epsilon (medians sketched; n/mean/std exact)
fig7      within sketch epsilon (same)
table3    byte-identical (literature metadata, no data at all)
========  ==========================================================

Degenerate-data behaviour also mirrors the materialized path: the
finishers raise the same exception types with the same messages, so a
section that degrades on a thin trace degrades identically here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.analysis.errors import DegenerateSampleError
from repro.analysis.outofcore import PaperAccumulator, scan_store
from repro.report.charts import cdf_plot_weighted
from repro.report.paper import (
    PaperReport,
    SectionResult,
    _format_figure1,
    _format_figure2,
    _format_figure3,
    _format_figure4,
    _format_figure5,
    _format_figure6_panel,
    _format_figure7,
    _format_table1,
    _format_table2,
    render_table3,
)
from repro.resilience.deadline import Deadline
from repro.stats.streamfit import sketch_empirical, sketch_fit_all
from repro.store.reader import DEFAULT_BATCH_ROWS, ColumnarStore

__all__ = ["StoreReport", "run_store_report"]

#: Clamp floors used by the materialized plots (np.maximum before
#: cdf_plot): 1 s for interarrival gaps, 0.1 min for repair times.
_GAP_PLOT_FLOOR = 1.0
_REPAIR_PLOT_FLOOR = 0.1


@dataclass(frozen=True)
class StoreReport:
    """A paper report rendered out-of-core, with scan metadata.

    Attributes
    ----------
    report:
        The :class:`~repro.report.paper.PaperReport`; identical shape
        to the materialized path's, with ``partial=True`` on every
        section when the scan was deadline-truncated.
    partial:
        ``None`` for a complete scan, else the truncation descriptor
        (``reason`` / ``rows_seen`` / ``rows_total``).
    degraded:
        ``None`` for a clean read, else the degraded-read dict (shards
        skipped, coverage) from a store opened with
        ``on_damage="skip"``.
    """

    report: PaperReport
    partial: Optional[dict] = None
    degraded: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-ready form (the ``/v1/report`` response body)."""
        return {
            "sections": [
                {
                    "name": section.name,
                    "status": section.status,
                    "text": section.text,
                    "error": section.error,
                    "partial": section.partial,
                }
                for section in self.report.sections
            ],
            "ok": self.report.ok,
            "partial": self.partial,
            "degraded": self.degraded,
        }


def _figure3_section(accumulator: PaperAccumulator) -> str:
    graphics_nodes = (21, 22, 23)
    counts = accumulator.failures_per_node()
    share = accumulator.node_share(graphics_nodes)
    study = accumulator.node_count_study()
    return _format_figure3(
        accumulator.fig3_system, graphics_nodes, counts, share, study
    )


def _figure6_section(accumulator: PaperAccumulator) -> str:
    sections = []
    for panel, label, segment in accumulator.interarrival_segments():
        n = segment.gaps.count
        if n < 8:
            raise DegenerateSampleError(
                f"only {n} interarrivals in {label}; need >= 8"
            )
        summary = sketch_empirical(segment.gaps)
        fits = sketch_fit_all(segment.gaps)
        values, weights = segment.gaps.histogram.representatives()
        plot = cdf_plot_weighted(
            np.maximum(values, _GAP_PLOT_FLOOR),
            weights,
            {fit.name: fit.distribution for fit in fits},
            title=f"Figure 6{panel}: time between failures (s)",
        )
        sections.append(
            _format_figure6_panel(
                panel,
                n,
                summary.squared_cv,
                segment.gaps.zero_fraction,
                fits,
                plot,
            )
        )
    return "\n\n".join(sections)


def _figure7_section(accumulator: PaperAccumulator) -> str:
    n = accumulator.repairs.count
    if n < 8:
        raise DegenerateSampleError(f"only {n} repairs; need >= 8")
    fits = sketch_fit_all(accumulator.repairs)
    values, weights = accumulator.repairs.histogram.representatives()
    plot = cdf_plot_weighted(
        np.maximum(values, _REPAIR_PLOT_FLOOR),
        weights,
        {fit.name: fit.distribution for fit in fits},
        title="Figure 7(a): CDF of repair time (minutes) with fits",
    )
    return _format_figure7(fits, plot, accumulator.repairs_by_system())


def run_store_report(
    store: ColumnarStore,
    *,
    deadline: Optional[Deadline] = None,
    on_deadline: str = "raise",
    workers: Optional[int] = None,
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> StoreReport:
    """Render the whole paper report out-of-core from ``store``.

    One streaming scan (see :func:`repro.analysis.outofcore.scan_store`
    for the serial/parallel/deadline semantics), then per-section
    rendering with the same error isolation as
    :func:`~repro.report.paper.run_paper_report`: a
    :class:`DegenerateSampleError` degrades the section, anything else
    fails it — unless the store read itself was degraded
    (``on_damage="skip"`` with shards skipped), in which case every
    section exception classifies as degraded.
    """
    accumulator, partial = scan_store(
        store,
        deadline=deadline,
        on_deadline=on_deadline,
        workers=workers,
        batch_rows=batch_rows,
    )
    degraded_read = bool(store.degraded)
    builders = (
        ("table1", lambda: _format_table1(accumulator.systems)),
        ("fig1", lambda: _format_figure1(*accumulator.cause_breakdowns())),
        (
            "fig2",
            lambda: _format_figure2(
                accumulator.failure_rates(), accumulator.variability()
            ),
        ),
        ("fig3", lambda: _figure3_section(accumulator)),
        ("fig4", lambda: _format_figure4(accumulator.lifecycle_curves())),
        ("fig5", lambda: _format_figure5(accumulator.periodicity())),
        ("fig6", lambda: _figure6_section(accumulator)),
        ("table2", lambda: _format_table2(accumulator.repair_rows())),
        ("fig7", lambda: _figure7_section(accumulator)),
        ("table3", render_table3),
    )
    is_partial = partial is not None
    sections = []
    with obs.span("report.streaming", sections=len(builders)):
        for name, builder in builders:
            try:
                with obs.span("report.section", section=name):
                    sections.append(
                        SectionResult(
                            name=name,
                            status="ok",
                            text=builder(),
                            partial=is_partial,
                        )
                    )
            except DegenerateSampleError as exc:
                sections.append(
                    SectionResult(
                        name=name,
                        status="degraded",
                        error=f"{type(exc).__name__}: {exc}",
                        partial=is_partial,
                    )
                )
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                sections.append(
                    SectionResult(
                        name=name,
                        status="degraded" if degraded_read else "failed",
                        error=f"{type(exc).__name__}: {exc}",
                        partial=is_partial,
                    )
                )
    return StoreReport(
        report=PaperReport(sections=tuple(sections)),
        partial=partial,
        degraded=store.degraded.to_dict() if degraded_read else None,
    )
