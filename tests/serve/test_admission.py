"""Admission control: bounded concurrency, capped queue, early shed."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import AdmissionController, AdmissionShed


def run(coroutine):
    return asyncio.run(coroutine)


class TestAdmission:
    def test_admits_within_concurrency(self):
        async def scenario():
            controller = AdmissionController(max_concurrency=2, max_queue=0)
            async with controller.slot():
                async with controller.slot():
                    assert controller.active == 2
            assert controller.active == 0
            assert controller.admitted == 2
            assert controller.shed == 0

        run(scenario())

    def test_sheds_when_queue_full(self):
        async def scenario():
            controller = AdmissionController(max_concurrency=1, max_queue=0)
            async with controller.slot():
                with pytest.raises(AdmissionShed, match="at capacity"):
                    async with controller.slot():
                        pass  # pragma: no cover - never admitted
            assert controller.shed == 1
            assert controller.admitted == 1

        run(scenario())

    def test_queued_request_waits_then_runs(self):
        async def scenario():
            controller = AdmissionController(max_concurrency=1, max_queue=1)
            release = asyncio.Event()
            order = []

            async def holder():
                async with controller.slot():
                    order.append("holder")
                    await release.wait()

            async def waiter():
                async with controller.slot():
                    order.append("waiter")

            hold_task = asyncio.ensure_future(holder())
            await asyncio.sleep(0.01)
            wait_task = asyncio.ensure_future(waiter())
            await asyncio.sleep(0.01)
            assert controller.waiting == 1
            # A third request exceeds max_queue and is shed immediately.
            with pytest.raises(AdmissionShed):
                async with controller.slot():
                    pass  # pragma: no cover
            release.set()
            await asyncio.gather(hold_task, wait_task)
            assert order == ["holder", "waiter"]
            assert controller.peak_waiting == 1
            assert controller.peak_active == 1

        run(scenario())

    def test_slot_released_on_error(self):
        async def scenario():
            controller = AdmissionController(max_concurrency=1, max_queue=0)
            with pytest.raises(RuntimeError):
                async with controller.slot():
                    raise RuntimeError("query blew up")
            # The slot is free again.
            async with controller.slot():
                assert controller.active == 1

        run(scenario())

    def test_counters_exposed(self):
        async def scenario():
            controller = AdmissionController(max_concurrency=3, max_queue=5)
            async with controller.slot():
                pass
            stats = controller.to_dict()
            assert stats["max_concurrency"] == 3
            assert stats["max_queue"] == 5
            assert stats["admitted"] == 1
            assert stats["active"] == 0
            assert stats["peak_active"] == 1

        run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            AdmissionController(max_concurrency=0)
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=-1)
