"""CircuitBreaker: per-shard failure counting over a stage ladder."""

from __future__ import annotations

import pytest

from repro.resilience import CircuitBreaker


class TestLadder:
    def test_starts_in_first_stage(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"))
        assert breaker.stage("k") == "vectorized"
        assert not breaker.is_open("k")

    def test_retries_below_threshold(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"), failure_threshold=3)
        assert breaker.record_failure("k") == "retry"
        assert breaker.record_failure("k") == "retry"
        assert breaker.stage("k") == "vectorized"

    def test_degrades_at_threshold(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"), failure_threshold=2)
        breaker.record_failure("k")
        assert breaker.record_failure("k") == "degrade"
        assert breaker.stage("k") == "scalar"

    def test_opens_after_last_stage(self):
        breaker = CircuitBreaker(stages=("vectorized", "scalar"), failure_threshold=1)
        assert breaker.record_failure("k") == "degrade"
        assert breaker.record_failure("k") == "open"
        assert breaker.is_open("k")
        assert breaker.stage("k") is None
        # Further failures stay open.
        assert breaker.record_failure("k") == "open"

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(stages=("a", "b"), failure_threshold=2)
        breaker.record_failure("k")
        breaker.record_success("k")
        assert breaker.failures("k") == 0
        assert breaker.record_failure("k") == "retry"

    def test_shards_are_independent(self):
        breaker = CircuitBreaker(stages=("a", "b"), failure_threshold=1)
        breaker.record_failure("k1")
        assert breaker.stage("k1") == "b"
        assert breaker.stage("k2") == "a"


class TestValidation:
    def test_empty_stages_rejected(self):
        with pytest.raises(ValueError, match="stages"):
            CircuitBreaker(stages=())

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)


class TestTimeBasedRecovery:
    """Cooldown -> half-open probe -> close/reopen (the serve path)."""

    def _breaker(self, **kwargs):
        clock = {"now": 0.0}
        defaults = dict(
            stages=("primary",),
            failure_threshold=1,
            cooldown_seconds=10.0,
            clock=lambda: clock["now"],
        )
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_closed_always_allows(self):
        breaker, _ = self._breaker()
        assert breaker.state("k") == "closed"
        assert breaker.allow("k")

    def test_open_blocks_until_cooldown(self):
        breaker, clock = self._breaker()
        breaker.record_failure("k")
        assert breaker.state("k") == "open"
        assert not breaker.allow("k")
        clock["now"] = 9.999
        assert not breaker.allow("k")

    def test_cooldown_admits_single_half_open_probe(self):
        breaker, clock = self._breaker()
        breaker.record_failure("k")
        clock["now"] = 10.0
        assert breaker.allow("k")
        assert breaker.state("k") == "half-open"
        # The probe slot stays admitted while in flight.
        assert breaker.allow("k")

    def test_probe_success_fully_closes(self):
        breaker, clock = self._breaker(stages=("a", "b"))
        breaker.record_failure("k")
        breaker.record_failure("k")
        clock["now"] = 10.0
        assert breaker.allow("k")
        breaker.record_success("k")
        assert breaker.state("k") == "closed"
        assert breaker.stage("k") == "a"  # back to the first ladder stage
        assert breaker.failures("k") == 0

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._breaker()
        breaker.record_failure("k")
        clock["now"] = 10.0
        assert breaker.allow("k")
        assert breaker.record_failure("k") == "open"
        assert breaker.state("k") == "open"
        # Cooldown restarts from the probe failure, not the first open.
        clock["now"] = 19.999
        assert not breaker.allow("k")
        clock["now"] = 20.0
        assert breaker.allow("k")

    def test_default_none_keeps_open_forever(self):
        breaker = CircuitBreaker(stages=("a",), failure_threshold=1)
        breaker.record_failure("k")
        assert not breaker.allow("k")
        breaker.record_success("k")  # legacy: success does NOT reopen stages
        assert breaker.is_open("k")
        assert breaker.state("k") == "open"

    def test_legacy_success_semantics_unchanged_when_closed(self):
        # Byte-identical supervisor behavior: success only clears the
        # failure streak; it never rewinds a degraded stage.
        breaker = CircuitBreaker(stages=("a", "b"), failure_threshold=1)
        breaker.record_failure("k")
        assert breaker.stage("k") == "b"
        breaker.record_success("k")
        assert breaker.stage("k") == "b"

    def test_bad_cooldown_rejected(self):
        with pytest.raises(ValueError, match="cooldown_seconds"):
            CircuitBreaker(cooldown_seconds=0.0)

    def test_states_exported(self):
        from repro.resilience import CLOSED, HALF_OPEN, OPEN_STATE

        assert (CLOSED, OPEN_STATE, HALF_OPEN) == ("closed", "open", "half-open")
