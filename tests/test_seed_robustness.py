"""Seed robustness: the paper's headline claims hold across seeds.

Each bench asserts on seed 1; these tests re-generate the trace with
two other seeds and re-check the claims that could plausibly be seed
luck.  Marked slow-ish (~10 s per seed) but run in the default suite —
a reproduction whose conclusions flip with the seed is not a
reproduction.
"""

import datetime as dt

import numpy as np
import pytest

from repro.analysis import (
    breakdown_by_hardware_type,
    node_count_study,
    periodicity_study,
    repair_fit_study,
    system_interarrivals,
)
from repro.analysis.interarrival import split_eras
from repro.records.record import RootCause
from repro.records.timeutils import from_datetime
from repro.synth import TraceGenerator

ERA = from_datetime(dt.datetime(2000, 1, 1))


@pytest.fixture(scope="module", params=[7, 42])
def other_seed_trace(request):
    return TraceGenerator(seed=request.param).generate()


def test_headline_claims_across_seeds(other_seed_trace):
    trace = other_seed_trace

    # Figure 1: hardware is the largest cause everywhere.
    for breakdown in breakdown_by_hardware_type(trace).values():
        assert breakdown.percent(RootCause.HARDWARE) == max(
            breakdown.percentages.values()
        )

    # Figure 3: Poisson is a poor per-node model.
    study = node_count_study(trace, 20)
    assert study.poisson_is_poor

    # Figure 5: both ratios near 2.
    periodicity = periodicity_study(trace)
    assert 1.5 < periodicity.peak_trough_ratio < 2.7
    assert 1.4 < periodicity.weekday_weekend_ratio < 2.4

    # Figure 6(c)/(d): early simultaneity, late Weibull < 1.
    reference = trace.filter_systems([20])
    early, late = split_eras(reference, ERA)
    assert system_interarrivals(early, 20).zero_fraction > 0.25
    late_study = system_interarrivals(late, 20)
    assert late_study.best.name in ("weibull", "gamma")
    assert 0.6 < late_study.weibull_shape < 0.95

    # Figure 7: lognormal best for repairs, exponential worst.
    fits = repair_fit_study(trace)
    assert fits[0].name == "lognormal"
    assert fits[-1].name == "exponential"

    # Scale: same order as the paper's 23k records.
    assert 18_000 < len(trace) < 36_000
