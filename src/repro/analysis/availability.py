"""Availability, MTBF and MTTR metrics.

The natural operational summary of a failure trace: for each system (or
node), the mean time between failures, mean time to repair, and the
resulting availability ``MTBF / (MTBF + MTTR)``.  Downtime is computed
from actual outage intervals with overlapping repairs merged, so a
burst of simultaneous failures does not double-count node-downtime into
system downtime.

Two availability notions are provided:

* **node availability** — expected fraction of time a single node is
  up (downtime summed over node-outages, normalized by node-time);
* **system availability** — fraction of wall-clock time *all* observed
  outage intervals leave at least one node down, reported as its
  complement (any-node-down fraction), which is the quantity a
  capacity planner tracks for allocation headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.records.timeutils import SECONDS_PER_HOUR
from repro.records.trace import FailureTrace

__all__ = [
    "merge_intervals",
    "SystemAvailability",
    "system_availability",
    "availability_report",
]


def merge_intervals(intervals: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge overlapping [start, end) intervals.

    Returns a sorted, disjoint list covering the same points.
    """
    cleaned = sorted((float(s), float(e)) for s, e in intervals if e > s)
    merged: List[Tuple[float, float]] = []
    for start, end in cleaned:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass(frozen=True)
class SystemAvailability:
    """Availability summary for one system.

    Attributes
    ----------
    system_id:
        The system.
    failures:
        Failure-record count.
    mtbf_seconds:
        System-wide mean time between failures (production time /
        failures).
    mttr_seconds:
        Mean repair duration per failure record.
    node_downtime_fraction:
        Expected single-node downtime fraction: total node-outage
        seconds / total node-production seconds.
    any_node_down_fraction:
        Fraction of the production window during which at least one
        node was down (outage intervals merged).
    """

    system_id: int
    failures: int
    mtbf_seconds: float
    mttr_seconds: float
    node_downtime_fraction: float
    any_node_down_fraction: float

    @property
    def node_availability(self) -> float:
        """1 - node_downtime_fraction."""
        return 1.0 - self.node_downtime_fraction

    @property
    def mtbf_hours(self) -> float:
        """MTBF in hours."""
        return self.mtbf_seconds / SECONDS_PER_HOUR

    @property
    def mttr_hours(self) -> float:
        """MTTR in hours."""
        return self.mttr_seconds / SECONDS_PER_HOUR


def system_availability(trace: FailureTrace, system_id: int) -> SystemAvailability:
    """Availability metrics for one system of the trace.

    Raises
    ------
    ValueError
        If the system has no failure records (its MTBF would be
        unbounded — report "no failures observed" instead).
    """
    config = trace.systems.get(system_id)
    if config is None:
        raise KeyError(f"system {system_id} not in the trace inventory")
    records = trace.filter_systems([system_id])
    if len(records) == 0:
        raise ValueError(f"system {system_id} has no failure records")
    start, end = config.production_window(trace.data_start, trace.data_end)
    window = end - start
    nodes = config.expand_nodes(trace.data_start, trace.data_end)
    node_seconds = sum(node.production_seconds for node in nodes)

    # Clip outages to the production window (a repair can run past the
    # end of the data; a record just at the boundary must not go
    # negative).
    intervals = [
        (max(record.start_time, start), min(record.end_time, end))
        for record in records
    ]
    node_outage_seconds = float(sum(max(0.0, e - s) for s, e in intervals))
    merged = merge_intervals(intervals)
    any_down_seconds = float(sum(e - s for s, e in merged))

    repair_times = records.repair_times()
    return SystemAvailability(
        system_id=system_id,
        failures=len(records),
        mtbf_seconds=window / len(records),
        mttr_seconds=float(np.mean(repair_times)),
        node_downtime_fraction=node_outage_seconds / node_seconds,
        any_node_down_fraction=any_down_seconds / window,
    )


def availability_report(trace: FailureTrace, minimum_records: int = 5) -> Dict[int, SystemAvailability]:
    """Availability metrics for every system with enough records."""
    report: Dict[int, SystemAvailability] = {}
    for system_id, sub in sorted(trace.by_system().items()):
        if len(sub) >= minimum_records:
            report[system_id] = system_availability(trace, system_id)
    return report
