"""Figure 6 generality: the TBF findings hold beyond system 20.

Section 5.3 focuses on system 20 "as an illustrative example" and notes
similar observations hold elsewhere.  These tests verify the Weibull-
with-decreasing-hazard finding on the big type-E and type-F clusters,
and the utilization/goodput metrics of the scheduling result.
"""

import datetime as dt

import pytest

from repro.analysis.interarrival import (
    node_interarrivals,
    system_interarrivals,
)
from repro.records.timeutils import from_datetime
from repro.stats.hazard import HazardDirection
from repro.synth import TraceGenerator


@pytest.fixture(scope="module")
def e_and_f_traces():
    generator = TraceGenerator(seed=1)
    return generator.generate([7, 14])


class TestOtherSystems:
    @pytest.mark.parametrize("system_id", [7, 14])
    def test_system_wide_weibull_decreasing(self, e_and_f_traces, system_id):
        study = system_interarrivals(
            e_and_f_traces.filter_systems([system_id]), system_id
        )
        assert study.best.name in ("weibull", "gamma")
        assert study.weibull_shape < 1.0
        from repro.stats.distributions import Weibull

        weibull_fit = next(
            fit for fit in study.fits if isinstance(fit.distribution, Weibull)
        )
        assert 0.5 < weibull_fit.distribution.shape < 0.95

    def test_exponential_never_best(self, e_and_f_traces):
        for system_id in (7, 14):
            study = system_interarrivals(
                e_and_f_traces.filter_systems([system_id]), system_id
            )
            assert study.exponential_rank >= 1

    def test_busy_node_view_also_decreasing(self, e_and_f_traces):
        # Take system 7's most failure-prone node: enough records for a
        # meaningful node-level fit.
        counts = e_and_f_traces.failures_per_node(7)
        busiest = max(counts, key=counts.get)
        # E-type nodes fail only a few times a year (4 processors), so
        # even the busiest node yields a small sample — which is why
        # the paper does its node-level fits on system 20's fat NUMA
        # nodes.  This is a smoke check of the node view elsewhere.
        study = node_interarrivals(e_and_f_traces, 7, busiest)
        assert study.n >= 15
        assert study.best.name in ("weibull", "gamma", "lognormal")
        assert study.weibull_shape < 1.05
        if study.best.name in ("weibull", "gamma"):
            assert study.hazard is HazardDirection.DECREASING


class TestSchedulerUtilizationMetrics:
    def test_utilization_and_goodput(self, system20_trace):
        from repro.records.timeutils import SECONDS_PER_DAY
        from repro.sched import (
            ClusterTimeline,
            JobGenerator,
            RandomPolicy,
            SchedulerSimulation,
        )

        timeline = ClusterTimeline(system20_trace, 20)
        t0 = from_datetime(dt.datetime(2002, 1, 1))
        t1 = from_datetime(dt.datetime(2002, 7, 1))
        jobs = JobGenerator(seed=5).generate(t0, t1 - 20 * SECONDS_PER_DAY)
        result = SchedulerSimulation(timeline, RandomPolicy(seed=1), (t0, t1)).run(jobs)
        assert result.capacity_node_seconds == pytest.approx(49 * (t1 - t0))
        assert 0.0 < result.goodput <= result.utilization <= 1.0
        assert result.utilization == pytest.approx(
            result.goodput / (1.0 - result.waste_fraction), rel=1e-9
        )
