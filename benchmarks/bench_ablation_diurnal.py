"""Ablation: diurnal/weekly modulation and the fitted Weibull shape.

The decreasing-hazard (shape < 1) finding could in principle be a pure
artifact of time-of-day rate variation.  Regenerate system 20 with the
diurnal/weekly modulation off: Figure 5's ratios flatten to ~1, while
the fitted system-wide Weibull shape stays below 1 — the decreasing
hazard survives, so modulation *sharpens* but does not *create* it.
"""

import datetime as dt

from repro.analysis.interarrival import split_eras, system_interarrivals
from repro.analysis.periodicity import periodicity_study
from repro.records.timeutils import from_datetime
from repro.report.tables import format_table
from repro.synth import GeneratorConfig, TraceGenerator

ERA = from_datetime(dt.datetime(2000, 1, 1))


def test_diurnal_ablation(benchmark, system20):
    def generate_flat():
        config = GeneratorConfig(diurnal_enabled=False)
        return TraceGenerator(seed=1, config=config).generate([20])

    flat = benchmark(generate_flat)

    modulated_study = periodicity_study(system20)
    flat_study = periodicity_study(flat)
    shape_modulated = system_interarrivals(split_eras(system20, ERA)[1], 20).weibull_shape
    shape_flat = system_interarrivals(split_eras(flat, ERA)[1], 20).weibull_shape

    rows = [
        ("diurnal on", f"{modulated_study.peak_trough_ratio:.2f}",
         f"{modulated_study.weekday_weekend_ratio:.2f}", f"{shape_modulated:.3f}"),
        ("diurnal off", f"{flat_study.peak_trough_ratio:.2f}",
         f"{flat_study.weekday_weekend_ratio:.2f}", f"{shape_flat:.3f}"),
    ]
    print("\n" + format_table(
        ("config", "peak/trough", "weekday/weekend", "fitted Weibull shape"),
        rows, title="Diurnal-modulation ablation, system 20",
    ))

    # Figure 5's ratios require the modulation...
    assert modulated_study.peak_trough_ratio > 1.6
    assert flat_study.peak_trough_ratio < 1.45
    assert flat_study.weekday_weekend_ratio < 1.25
    # ...but the decreasing hazard does not: shape < 1 either way.
    assert shape_flat < 1.0
    assert shape_modulated < 1.0
    # Modulation adds variability, lowering the fitted shape further.
    assert shape_modulated <= shape_flat + 0.02
