"""Smoke tests: every example script runs to completion.

Examples are the first thing a new user executes; these tests keep them
working as the API evolves.  Each example is run in-process (not via
subprocess) so coverage tools see it and failures produce readable
tracebacks.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def run_example(name, argv, capsys):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        with pytest.raises(SystemExit) as excinfo:
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
        assert excinfo.value.code in (0, None), f"{name} exited {excinfo.value.code}"
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_examples_directory_has_at_least_four():
    assert len(EXAMPLES) >= 4, EXAMPLES


def test_quickstart(capsys):
    out = run_example("quickstart.py", ["1"], capsys)
    assert "Root-cause breakdown" in out
    assert "lognormal" in out
    assert "decreasing" in out


def test_checkpoint_optimization(capsys):
    out = run_example("checkpoint_optimization.py", [], capsys)
    assert "Analytic comparison" in out
    assert "Trace replay" in out
    assert "efficiency=" in out


def test_reliability_scheduling(capsys):
    out = run_example("reliability_scheduling.py", [], capsys)
    assert "reliability-aware" in out
    assert "random" in out


def test_custom_cluster(capsys):
    out = run_example("custom_cluster.py", [], capsys)
    assert "Operational summary" in out
    assert "Checkpoint interval" in out


def test_hazard_deep_dive(capsys):
    out = run_example("hazard_deep_dive.py", [], capsys)
    assert "decreasing hazard" in out
    assert "censoring-corrected" in out
    assert "Node outliers" in out


def test_full_paper_report_synthetic(capsys):
    out = run_example("full_paper_report.py", [], capsys)
    for artifact in ("Table 1", "Table 2", "Table 3", "Figure 1", "Figure 7"):
        assert artifact in out


def test_full_paper_report_from_csv(tmp_path, capsys):
    from repro.io import write_lanl_csv
    from repro.synth import TraceGenerator

    path = tmp_path / "t.csv"
    write_lanl_csv(TraceGenerator(seed=5).generate([20, 13]), path)
    out = run_example("full_paper_report.py", [str(path)], capsys)
    assert "Loading" in out
    assert "Figure 6" in out
