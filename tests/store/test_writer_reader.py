"""StoreWriter / ColumnarStore mechanics: sharding, pushdown, verify."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.store import (
    ColumnarStore,
    MANIFEST_NAME,
    Manifest,
    Predicate,
    StoreError,
    StoreWriter,
    store_from_trace,
    summarize_store,
    verify_store,
)
from repro.store.schema import COLUMN_NAMES, batch_from_records
from repro.store.writer import column_file_name
from repro.synth import TraceGenerator


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, small_trace):
    root = tmp_path_factory.mktemp("store") / "st"
    store_from_trace(small_trace, root, shard_rows=100)
    return root


class TestWriter:
    def test_rejects_bad_args(self, tmp_path):
        with pytest.raises(ValueError):
            StoreWriter(tmp_path / "a", shard_rows=0)
        with pytest.raises(ValueError):
            StoreWriter(tmp_path / "b", record_ids="auto")

    def test_append_requires_full_schema(self, tmp_path, small_trace):
        writer = StoreWriter(tmp_path / "st")
        batch = batch_from_records(small_trace.records[:5])
        partial = type(batch)({"start_time": batch["start_time"]})
        with pytest.raises(ValueError, match="missing columns"):
            writer.append_group(partial)

    def test_double_finalize_raises(self, tmp_path):
        writer = StoreWriter(tmp_path / "st")
        writer.finalize()
        with pytest.raises(RuntimeError):
            writer.finalize()

    def test_shards_respect_row_cap_and_single_system(self, store_root):
        store = ColumnarStore(store_root)
        assert len(store.manifest.shards) > 2  # 100-row cap forced splits
        for shard in store.manifest.shards:
            assert shard.rows <= 100
            lo, hi = shard.stats["system_id"]
            assert lo == hi

    def test_no_manifest_means_no_store(self, tmp_path, small_trace):
        writer = StoreWriter(tmp_path / "st")
        writer.append_group(batch_from_records(small_trace.records))
        # finalize() never called: the directory must not open as a store
        with pytest.raises(StoreError):
            ColumnarStore(tmp_path / "st")

    def test_rewrite_removes_stale_shards(self, tmp_path, small_trace):
        root = tmp_path / "st"
        store_from_trace(small_trace, root, shard_rows=50)
        first = {p.name for p in (root / "shards").glob("*.npy")}
        store_from_trace(small_trace, root, shard_rows=5000)
        second = {p.name for p in (root / "shards").glob("*.npy")}
        assert len(second) < len(first)
        manifest = Manifest.load(root / MANIFEST_NAME)
        expected = {
            column_file_name(shard.name, column)
            for shard in manifest.shards
            for column in COLUMN_NAMES
        }
        assert second == expected


class TestReader:
    def test_len_and_info(self, store_root, small_trace):
        store = ColumnarStore(store_root)
        assert len(store) == len(small_trace)
        info = store.info()
        assert info["rows"] == len(small_trace)
        assert info["record_ids"] == "explicit"
        assert info["bytes"] > 0
        json.dumps(info)  # info() must be JSON-able

    def test_schema_mismatch_refused(self, tmp_path, small_trace):
        root = tmp_path / "st"
        store_from_trace(small_trace, root)
        payload = json.loads((root / MANIFEST_NAME).read_text())
        payload["schema_sha256"] = "0" * 64
        (root / MANIFEST_NAME).write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="schema digest mismatch"):
            ColumnarStore(root)

    def test_iter_batches_projects_columns(self, store_root):
        store = ColumnarStore(store_root)
        for chunk in store.iter_batches(columns=("system_id",)):
            assert chunk.names == ("system_id",)
        with pytest.raises(KeyError):
            next(store.iter_batches(columns=("nope",)))
        with pytest.raises(ValueError):
            next(store.iter_batches(batch_rows=0))

    def test_iter_batches_bounded_chunks(self, store_root, small_trace):
        store = ColumnarStore(store_root)
        sizes = [len(c) for c in store.iter_batches(batch_rows=37)]
        assert max(sizes) <= 37
        assert sum(sizes) == len(small_trace)

    def test_predicate_filters_rows_and_prunes_shards(
        self, store_root, small_trace
    ):
        store = ColumnarStore(store_root)
        records = small_trace.records
        lo = records[len(records) // 4].start_time
        hi = records[3 * len(records) // 4].start_time
        predicate = Predicate.build(t_min=lo, t_max=hi, systems=[13])
        expected = [
            r for r in records
            if lo <= r.start_time < hi and r.system_id == 13
        ]
        total = sum(
            len(c) for c in store.iter_batches(predicate=predicate)
        )
        assert total == len(expected)
        assert store.scan.shards_pruned >= 1
        assert store.scan.rows_matched == len(expected)

    def test_explicit_ids_survive_filtering(self, store_root, small_trace):
        store = ColumnarStore(store_root)
        predicate = Predicate.build(systems=[2])
        got = list(store.iter_records(predicate))
        expected = [r for r in small_trace.records if r.system_id == 2]
        assert [g.record_id for g in got] == [
            e.record_id for e in expected
        ]

    def test_null_predicate_equals_no_predicate(self, store_root):
        store = ColumnarStore(store_root)
        a = [repr(r) for r in store.iter_records()]
        b = [repr(r) for r in store.iter_records(Predicate.build())]
        assert a == b

    def test_to_trace_carries_window_and_systems(
        self, store_root, small_trace
    ):
        trace = ColumnarStore(store_root).to_trace()
        assert trace.data_start == small_trace.data_start
        assert trace.data_end == small_trace.data_end
        assert set(trace.systems) == set(small_trace.systems)


class TestVerify:
    def test_clean_store_verifies(self, store_root):
        assert verify_store(store_root, deep=True) == []
        assert verify_store(store_root, deep=False) == []

    def test_missing_column_file_caught(self, tmp_path, small_trace):
        root = tmp_path / "st"
        store_from_trace(small_trace, root, shard_rows=100)
        victim = next((root / "shards").glob("*-node_id.npy"))
        victim.unlink()
        problems = verify_store(root, deep=False)
        assert any("missing" in p for p in problems)

    def test_truncated_column_file_caught_shallow(
        self, tmp_path, small_trace
    ):
        root = tmp_path / "st"
        store_from_trace(small_trace, root, shard_rows=100)
        victim = next((root / "shards").glob("*-start_time.npy"))
        data = victim.read_bytes()
        victim.write_bytes(data[: len(data) // 2])
        problems = verify_store(root, deep=False)
        assert problems, "truncation must not verify clean"

    def test_bitflip_caught_by_deep_checksum(self, tmp_path, small_trace):
        root = tmp_path / "st"
        store_from_trace(small_trace, root, shard_rows=100)
        victim = next((root / "shards").glob("*-root_cause.npy"))
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0x01  # damage a data byte, keeping shape and dtype
        victim.write_bytes(bytes(data))
        assert verify_store(root, deep=False) == []
        problems = verify_store(root, deep=True)
        assert any("sha256 mismatch" in p for p in problems)

    def test_deep_checks_scoped_per_shard(self, tmp_path, small_trace):
        # Regression: the deep pass used to key on the *global* problem
        # list, so any shallow finding on shard A suppressed the deep
        # checks (checksums, stats, sort) for every other shard.  With
        # one shard missing a file AND another bit-flipped, both must
        # be reported.
        root = tmp_path / "st"
        store_from_trace(small_trace, root, shard_rows=100)
        shards = sorted((root / "shards").glob("*-node_id.npy"))
        shards[0].unlink()
        victim = root / "shards" / "00001-root_cause.npy"
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0x01
        victim.write_bytes(bytes(data))
        problems = verify_store(root, deep=True)
        assert any("00000" in p and "missing" in p for p in problems)
        assert any(
            "00001" in p and "sha256 mismatch" in p for p in problems
        )

    def test_corrupt_manifest_is_a_single_problem(self, tmp_path):
        root = tmp_path / "st"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json")
        problems = verify_store(root)
        assert len(problems) == 1
        assert "corrupt manifest" in problems[0]

    def test_missing_manifest_reported(self, tmp_path):
        problems = verify_store(tmp_path)
        assert len(problems) == 1
        assert "not a columnar store" in problems[0]


class TestSummarize:
    def test_counts_match_trace(self, store_root, small_trace):
        summary = summarize_store(ColumnarStore(store_root))
        assert summary.rows == len(small_trace)
        assert summary.counts_by_cause == {
            cause.value: count
            for cause, count in small_trace.counts_by_cause().items()
            if count
        }
        downtime = small_trace.downtime_by_cause()
        for cause, seconds in summary.downtime_by_cause.items():
            expected = next(
                v for k, v in downtime.items() if k.value == cause
            )
            assert seconds == pytest.approx(expected, rel=1e-12)

    def test_summary_batch_size_invariance(self, store_root):
        store = ColumnarStore(store_root)
        a = summarize_store(store, batch_rows=7)
        b = summarize_store(store, batch_rows=10_000)
        assert a.counts_by_cause == b.counts_by_cause
        assert a.counts_by_system == b.counts_by_system
        assert a.rows == b.rows

    def test_filtered_summary_scan_counters(self, store_root):
        store = ColumnarStore(store_root)
        summary = summarize_store(
            store, predicate=Predicate.build(systems=[13])
        )
        assert set(summary.counts_by_system) == {13}
        assert summary.scan.shards_pruned >= 1
        assert summary.to_dict()["scan"]["shards_pruned"] >= 1
