"""Goodness-of-fit measures.

The paper evaluates fits by visual inspection and the negative
log-likelihood; we add AIC/BIC (to penalize the exponential's single
parameter fairly) and the Kolmogorov-Smirnov statistic (a quantitative
stand-in for "visual inspection" of CDF plots).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple, Union

import numpy as np

__all__ = [
    "log_likelihood",
    "aic",
    "bic",
    "ks_statistic",
    "qq_points",
    "aic_weights",
    "likelihood_ratio_pvalue",
]

ArrayLike = Union[Sequence[float], np.ndarray]


def log_likelihood(data: ArrayLike, distribution) -> float:
    """Total log-likelihood of ``data`` under ``distribution``."""
    return float(np.sum(distribution.logpdf(np.asarray(data, dtype=float))))


def aic(nll: float, n_params: int) -> float:
    """Akaike information criterion, 2k + 2 * NLL."""
    return 2.0 * n_params + 2.0 * nll


def bic(nll: float, n_params: int, n: int) -> float:
    """Bayesian information criterion, k ln(n) + 2 * NLL."""
    if n < 1:
        raise ValueError(f"sample size must be >= 1, got {n}")
    return n_params * math.log(n) + 2.0 * nll


def ks_statistic(data: ArrayLike, distribution) -> float:
    """Kolmogorov-Smirnov statistic: sup |ECDF(x) - CDF(x)|.

    Computed at the sample points using both the left and right limits
    of the empirical step function.
    """
    values = np.sort(np.asarray(data, dtype=float))
    n = values.size
    if n == 0:
        raise ValueError("ks_statistic requires at least one observation")
    cdf = np.asarray(distribution.cdf(values), dtype=float)
    upper = np.arange(1, n + 1, dtype=float) / n
    lower = np.arange(0, n, dtype=float) / n
    return float(np.max(np.maximum(np.abs(upper - cdf), np.abs(cdf - lower))))


def aic_weights(aics) -> np.ndarray:
    """Akaike weights: relative support for each candidate model.

    ``w_i = exp(-(AIC_i - AIC_min)/2) / sum_j exp(-(AIC_j - AIC_min)/2)``
    — a [0, 1] normalization of the fit ranking that is easier to read
    than raw NLL differences ("the lognormal carries 97% of the
    support").
    """
    values = np.asarray(aics, dtype=float)
    if values.size == 0:
        raise ValueError("aic_weights requires at least one model")
    deltas = values - values.min()
    raw = np.exp(-0.5 * deltas)
    return raw / raw.sum()


def likelihood_ratio_pvalue(nll_null: float, nll_alternative: float, df: int = 1) -> float:
    """P-value of a likelihood-ratio test for *nested* models.

    The exponential is Weibull with shape fixed at 1 (and gamma with
    shape 1), so "is the decreasing hazard statistically significant?"
    is a 1-degree-of-freedom LR test: ``2 * (NLL_exp - NLL_weibull)``
    is asymptotically chi-squared.

    Parameters
    ----------
    nll_null:
        Negative log-likelihood of the restricted model (exponential).
    nll_alternative:
        NLL of the larger model (Weibull/gamma); must be <= nll_null
        up to numerical noise.
    df:
        Difference in parameter count.
    """
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    statistic = 2.0 * (nll_null - nll_alternative)
    statistic = max(statistic, 0.0)
    from scipy import special as _special

    return float(_special.gammaincc(df / 2.0, statistic / 2.0))


def qq_points(data: ArrayLike, distribution, points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """Quantile-quantile pairs (model quantile, sample quantile).

    The model quantiles are found by bisection on the CDF, so this
    works for any distribution exposing ``cdf`` without requiring an
    analytic inverse.
    """
    values = np.sort(np.asarray(data, dtype=float))
    if values.size < 2:
        raise ValueError("qq_points requires at least two observations")
    probabilities = (np.arange(points) + 0.5) / points
    sample_q = np.quantile(values, probabilities)
    low = min(values.min(), 0.0) - 1.0
    high = values.max() * 2.0 + 1.0
    model_q = np.array(
        [_invert_cdf(distribution, p, low, high) for p in probabilities]
    )
    return model_q, sample_q


def _invert_cdf(distribution, probability: float, low: float, high: float) -> float:
    """Bisection inverse of a CDF on [low, high] (expands high if needed)."""
    for _ in range(200):
        if distribution.cdf(high) >= probability:
            break
        high *= 2.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        if distribution.cdf(mid) < probability:
            low = mid
        else:
            high = mid
        if high - low <= 1e-9 * max(1.0, abs(high)):
            break
    return 0.5 * (low + high)
