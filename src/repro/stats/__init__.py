"""Statistics substrate: the paper's methodology (Section 3).

The paper characterizes empirical distributions by mean, median and the
squared coefficient of variation (C²), and fits four standard
distributions — exponential, Weibull, gamma, lognormal — by maximum
likelihood, ranking fits by negative log-likelihood.  This subpackage
implements all of that from scratch on numpy, using scipy only for
special functions (``gammaln``, ``digamma``, ``erf`` and inverses):

* :class:`~repro.stats.empirical.EmpiricalDistribution` — summary
  statistics and the empirical CDF.
* :mod:`~repro.stats.distributions` — parametric distributions with
  pdf/cdf/hazard/sampling.
* :mod:`~repro.stats.fitting` — MLE fitters and the
  :func:`~repro.stats.fitting.fit_all` ranking API.
* :mod:`~repro.stats.gof` — negative log-likelihood, AIC/BIC, KS.
* :mod:`~repro.stats.hazard` — hazard-rate analysis (the decreasing-
  hazard finding is one of the paper's headline results).
* :mod:`~repro.stats.bootstrap` — nonparametric bootstrap CIs.
* :mod:`~repro.stats.sketch` — mergeable bounded-memory accumulators
  (moments, log-bucket quantile histogram, grouped counts/sums,
  windowed counts) for out-of-core analysis.
* :mod:`~repro.stats.streamfit` — the same MLE fits computed from
  sketches instead of materialized samples.
"""

from repro.stats.empirical import EmpiricalDistribution, empirical_cdf
from repro.stats.distributions import (
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Weibull,
)
from repro.stats.errors import DegenerateSampleError, DegenerateStatisticError
from repro.stats.fitting import (
    DegenerateFitError,
    FitError,
    FitOutcome,
    FitResult,
    describe_fits,
    fit_all,
    fit_all_discrete,
    fit_all_discrete_safe,
    fit_all_safe,
    fit_exponential,
    fit_gamma,
    fit_lognormal,
    fit_normal,
    fit_poisson,
    fit_weibull,
    prepare_positive,
)
from repro.stats.censoring import (
    censored_nll,
    fit_all_censored,
    fit_exponential_censored,
    fit_gamma_censored,
    fit_lognormal_censored,
    fit_weibull_censored,
)
from repro.stats.gof import (
    aic,
    aic_weights,
    bic,
    ks_statistic,
    likelihood_ratio_pvalue,
    log_likelihood,
)
from repro.stats.sketch import (
    GroupedCounts,
    GroupedSums,
    LogBucketSketch,
    MomentSketch,
    QUANTILE_RELATIVE_ERROR,
    SampleSketch,
    WindowedCounts,
)
from repro.stats.streamfit import (
    sketch_empirical,
    sketch_fit_all,
    sketch_fit_all_safe,
    sketch_fit_exponential,
    sketch_fit_gamma,
    sketch_fit_lognormal,
    sketch_fit_weibull,
    sketch_ks,
)
from repro.stats.hazard import HazardDirection, empirical_hazard, hazard_direction
from repro.stats.kaplan_meier import KaplanMeier, kaplan_meier
from repro.stats.trend import TrendResult, mann_kendall
from repro.stats.bootstrap import bootstrap_ci

__all__ = [
    "EmpiricalDistribution",
    "empirical_cdf",
    "Distribution",
    "Exponential",
    "Weibull",
    "Gamma",
    "LogNormal",
    "Normal",
    "Poisson",
    "DegenerateFitError",
    "DegenerateSampleError",
    "DegenerateStatisticError",
    "FitError",
    "FitOutcome",
    "FitResult",
    "describe_fits",
    "fit_exponential",
    "fit_weibull",
    "fit_gamma",
    "fit_lognormal",
    "fit_normal",
    "fit_poisson",
    "fit_all",
    "fit_all_discrete",
    "fit_all_safe",
    "fit_all_discrete_safe",
    "prepare_positive",
    "censored_nll",
    "fit_exponential_censored",
    "fit_weibull_censored",
    "fit_gamma_censored",
    "fit_lognormal_censored",
    "fit_all_censored",
    "log_likelihood",
    "aic",
    "aic_weights",
    "bic",
    "ks_statistic",
    "likelihood_ratio_pvalue",
    "KaplanMeier",
    "kaplan_meier",
    "TrendResult",
    "mann_kendall",
    "HazardDirection",
    "empirical_hazard",
    "hazard_direction",
    "bootstrap_ci",
    "MomentSketch",
    "LogBucketSketch",
    "GroupedCounts",
    "GroupedSums",
    "WindowedCounts",
    "SampleSketch",
    "QUANTILE_RELATIVE_ERROR",
    "sketch_empirical",
    "sketch_ks",
    "sketch_fit_exponential",
    "sketch_fit_weibull",
    "sketch_fit_gamma",
    "sketch_fit_lognormal",
    "sketch_fit_all",
    "sketch_fit_all_safe",
]
