"""Tests for the hazard study."""

import datetime as dt

import numpy as np
import pytest

from repro.analysis.hazard_study import HazardStudy, hazard_study
from repro.records.timeutils import from_datetime
from repro.stats.distributions import Exponential, Weibull


def draw(dist, n=20_000, seed=0):
    generator = np.random.Generator(np.random.PCG64(seed))
    return dist.sample(generator, n)


class TestConstructedSamples:
    def test_decreasing_hazard_detected(self):
        study = hazard_study(draw(Weibull(shape=0.6, scale=1e4)))
        assert study.decreasing
        assert study.weibull.shape == pytest.approx(0.6, abs=0.05)
        assert study.lr_pvalue < 1e-10
        assert study.spearman < -0.5

    def test_constant_hazard_not_flagged(self):
        study = hazard_study(draw(Exponential(scale=1e4), seed=1))
        assert not study.decreasing
        assert study.lr_pvalue > 0.001
        assert abs(study.spearman) < 0.7

    def test_increasing_hazard(self):
        study = hazard_study(draw(Weibull(shape=2.0, scale=1e4), seed=2))
        assert not study.decreasing
        assert study.weibull.shape > 1.5
        assert study.spearman > 0.5

    def test_fitted_tracks_empirical_for_true_weibull(self):
        study = hazard_study(draw(Weibull(shape=0.7, scale=1e4), seed=3), bins=12)
        empirical = np.array(study.empirical)
        fitted = np.array(study.fitted)
        # Within a factor of 2 in the well-populated central bins.
        middle = slice(2, -3)
        ratio = empirical[middle] / fitted[middle]
        assert np.all((ratio > 0.5) & (ratio < 2.0))

    def test_zeros_dropped(self):
        data = np.concatenate([np.zeros(100), draw(Weibull(0.7, 1e4), 5000)])
        study = hazard_study(data)
        assert study.n == 5000

    def test_minimum_sample(self):
        with pytest.raises(ValueError):
            hazard_study(draw(Exponential(1.0), n=20))

    def test_describe(self):
        study = hazard_study(draw(Weibull(0.6, 1e4), 2000, seed=4))
        text = study.describe()
        assert "decreasing hazard" in text
        assert "LR test" in text


class TestOnSyntheticTrace:
    def test_system20_late_era_decreasing(self, system20_trace):
        late = system20_trace.between(
            from_datetime(dt.datetime(2000, 1, 1)), system20_trace.data_end
        )
        study = hazard_study(late)
        # The paper's central claim, with significance attached.
        assert study.decreasing
        assert 0.6 < study.weibull.shape < 0.9
        assert study.spearman < 0

    def test_trace_input_equivalent_to_array_input(self, system20_trace):
        gaps = system20_trace.interarrival_times()
        from_trace = hazard_study(system20_trace)
        from_array = hazard_study(gaps)
        assert from_trace.weibull.shape == from_array.weibull.shape
        assert from_trace.n == from_array.n
