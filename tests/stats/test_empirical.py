"""Tests for EmpiricalDistribution and the empirical CDF."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.stats.empirical import EmpiricalDistribution, empirical_cdf

finite_samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestSummary:
    def test_known_values(self):
        summary = EmpiricalDistribution.from_data([2.0, 4.0, 6.0, 8.0])
        assert summary.count == 4
        assert summary.mean == 5.0
        assert summary.median == 5.0
        assert summary.std == pytest.approx(np.sqrt(5.0))
        assert summary.minimum == 2.0
        assert summary.maximum == 8.0

    def test_squared_cv_of_exponential_sample(self):
        generator = np.random.Generator(np.random.PCG64(0))
        sample = generator.exponential(100.0, 50_000)
        summary = EmpiricalDistribution.from_data(sample)
        assert summary.squared_cv == pytest.approx(1.0, abs=0.05)

    def test_squared_cv_known(self):
        summary = EmpiricalDistribution.from_data([1.0, 3.0])
        # mean 2, var 1 => C2 = 0.25
        assert summary.squared_cv == pytest.approx(0.25)

    def test_mean_to_median_skew_indicator(self):
        summary = EmpiricalDistribution.from_data([1.0, 1.0, 1.0, 97.0])
        assert summary.mean_to_median == pytest.approx(25.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution.from_data([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution.from_data([1.0, float("nan")])

    def test_zero_mean_cv_rejected(self):
        summary = EmpiricalDistribution.from_data([-1.0, 1.0])
        with pytest.raises(ZeroDivisionError):
            _ = summary.squared_cv

    def test_describe_contains_statistics(self):
        text = EmpiricalDistribution.from_data([1.0, 2.0, 3.0]).describe("min")
        assert "n=3" in text and "min" in text

    @given(finite_samples)
    def test_invariants(self, sample):
        summary = EmpiricalDistribution.from_data(sample)
        slack = 1e-9 * (1.0 + abs(summary.maximum) + abs(summary.minimum))
        assert summary.minimum - slack <= summary.median <= summary.maximum + slack
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
        assert summary.std >= 0
        assert summary.count == len(sample)


class TestEmpiricalCdf:
    def test_steps(self):
        x, p = empirical_cdf([3.0, 1.0, 2.0])
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert p.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    @given(finite_samples)
    def test_monotone_and_bounded(self, sample):
        x, p = empirical_cdf(sample)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(p) >= 0)
        assert p[-1] == pytest.approx(1.0)
        assert p[0] > 0
