"""Degenerate-sample regression tests: typed errors, not NaN/crash.

A single-failure system, an all-zero window, a node that never fails —
these used to surface as bare ``ValueError`` or a ``ZeroDivisionError``
depending on the code path.  They must now raise
:class:`~repro.analysis.errors.DegenerateSampleError` (a ``ValueError``
subclass, so existing handlers keep working) with a message naming the
requirement that failed.
"""

from __future__ import annotations

import pytest

from repro.analysis import DegenerateSampleError
from repro.analysis.burstiness import co_failure_ratio, index_of_dispersion
from repro.analysis.rates import (
    _coefficient_of_variation,
    normalized_variability,
    rate_size_correlation,
)
from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace


def record(start, node=0, system=20):
    return FailureRecord(
        start_time=start, end_time=start + 60.0, system_id=system,
        node_id=node, root_cause=RootCause.HARDWARE,
    )


@pytest.fixture()
def single_failure_trace():
    """A trace where exactly one system has exactly one failure."""
    return FailureTrace([record(1.6e8, node=1, system=20)])


class TestErrorType:
    def test_subclasses_value_error(self):
        assert issubclass(DegenerateSampleError, ValueError)

    def test_catchable_as_value_error(self, single_failure_trace):
        with pytest.raises(ValueError):
            normalized_variability(single_failure_trace)


class TestRates:
    def test_cv_rejects_single_observation(self):
        import numpy as np

        with pytest.raises(DegenerateSampleError, match=">= 2 observations"):
            _coefficient_of_variation(np.array([1.0]))

    def test_cv_rejects_zero_mean(self):
        import numpy as np

        with pytest.raises(DegenerateSampleError, match="zero-mean"):
            _coefficient_of_variation(np.array([0.0, 0.0]))

    def test_variability_needs_two_failing_systems(self, single_failure_trace):
        with pytest.raises(DegenerateSampleError, match="at least 2 systems"):
            normalized_variability(single_failure_trace)

    def test_correlation_needs_three_failing_systems(self, single_failure_trace):
        with pytest.raises(DegenerateSampleError, match="at least 3 systems"):
            rate_size_correlation(single_failure_trace)

    def test_healthy_trace_unaffected(self, small_trace, full_trace):
        result = normalized_variability(small_trace)
        assert result["raw"] > 0
        assert -1.0 <= rate_size_correlation(full_trace) <= 1.0


class TestBurstiness:
    def test_dispersion_needs_ten_records(self, single_failure_trace):
        with pytest.raises(DegenerateSampleError, match="at least 10"):
            index_of_dispersion(single_failure_trace)

    def test_dispersion_needs_two_windows(self):
        records = [record(1.6e8 + i, node=i) for i in range(12)]
        trace = FailureTrace(records)
        # One giant window covering the whole observation period.
        with pytest.raises(DegenerateSampleError, match="two count windows"):
            index_of_dispersion(trace, window_seconds=1e12)

    def test_zero_mean_counts_rejected_not_nan(self):
        # Records pinned before data_start: every window counts zero.
        records = [record(1.0 + i) for i in range(12)]
        trace = FailureTrace(records, data_start=1.5e8, data_end=2.5e8)
        with pytest.raises(DegenerateSampleError, match="zero-mean"):
            index_of_dispersion(trace)

    def test_co_failure_empty_trace(self):
        with pytest.raises(DegenerateSampleError, match="no failures"):
            co_failure_ratio(FailureTrace([]), 1, 2)

    def test_co_failure_absent_node_named(self, single_failure_trace):
        with pytest.raises(DegenerateSampleError, match="node 9 never fails"):
            co_failure_ratio(single_failure_trace, 1, 9)

    def test_argument_errors_stay_plain(self):
        # Invalid *arguments* are caller bugs, not thin samples: they
        # stay plain ValueError, never DegenerateSampleError.
        with pytest.raises(ValueError) as excinfo:
            index_of_dispersion(FailureTrace([]), window_seconds=0.0)
        assert not isinstance(excinfo.value, DegenerateSampleError)
