"""Tests for availability/MTBF/MTTR analysis."""

import pytest

from repro.analysis.availability import (
    availability_report,
    merge_intervals,
    system_availability,
)
from repro.records.record import FailureRecord, RootCause
from repro.records.trace import FailureTrace


def record(start, duration, system=22, node=0):
    return FailureRecord(
        start_time=start, end_time=start + duration, system_id=system,
        node_id=node, root_cause=RootCause.HARDWARE,
    )


class TestMergeIntervals:
    def test_disjoint_untouched(self):
        assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlap_merges(self):
        assert merge_intervals([(0, 5), (3, 8)]) == [(0, 8)]

    def test_touching_merges(self):
        assert merge_intervals([(0, 5), (5, 8)]) == [(0, 8)]

    def test_containment(self):
        assert merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_empty_and_degenerate(self):
        assert merge_intervals([]) == []
        assert merge_intervals([(3, 3)]) == []


class TestSystemAvailability:
    def test_arithmetic_single_node_system(self):
        # System 22: 1 node, 256 procs, production 11/04 - 11/05.
        trace = FailureTrace([
            record(2.85e8, 3600.0),
            record(2.90e8, 7200.0),
        ])
        availability = system_availability(trace, 22)
        assert availability.failures == 2
        assert availability.mttr_seconds == pytest.approx(5400.0)
        # One node => node downtime fraction == any-node-down fraction.
        assert availability.node_downtime_fraction == pytest.approx(
            availability.any_node_down_fraction
        )
        assert 0.999 < availability.node_availability < 1.0

    def test_overlapping_outages_not_double_counted(self):
        # Two nodes down simultaneously on system 20: any-node-down
        # counts the window once, node downtime counts it twice.
        trace = FailureTrace([
            record(3.0e8, 3600.0, system=20, node=1),
            record(3.0e8, 3600.0, system=20, node=2),
        ])
        availability = system_availability(trace, 20)
        window = trace.systems[20].production_window(trace.data_start, trace.data_end)
        window_seconds = window[1] - window[0]
        assert availability.any_node_down_fraction == pytest.approx(
            3600.0 / window_seconds
        )

    def test_no_failures_rejected(self):
        with pytest.raises(ValueError):
            system_availability(FailureTrace([]), 22)

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            system_availability(FailureTrace([]), 99)


class TestOnSyntheticTrace:
    def test_report_covers_active_systems(self, full_trace):
        report = availability_report(full_trace)
        assert set(report.keys()) >= set(range(4, 22))

    def test_node_availability_realistic(self, full_trace):
        # Node availability is high: repairs are hours, failures per
        # node a handful per year.  (System 2 — a single node with
        # ~40-hour repairs — is the worst at ~0.93.)
        for availability in availability_report(full_trace).values():
            assert 0.90 < availability.node_availability <= 1.0

    def test_mtbf_matches_rate_inverse(self, full_trace):
        from repro.analysis.rates import failure_rates
        from repro.records.timeutils import SECONDS_PER_YEAR

        rates = {r.system_id: r for r in failure_rates(full_trace)}
        report = availability_report(full_trace)
        for system_id, availability in report.items():
            per_year = rates[system_id].per_year
            assert availability.mtbf_seconds == pytest.approx(
                SECONDS_PER_YEAR / per_year, rel=0.01
            )

    def test_big_systems_often_degraded(self, full_trace):
        # System 20 (long repairs, many nodes): a node is down a large
        # fraction of the time, matching LANL operational reality.
        report = availability_report(full_trace)
        assert report[20].any_node_down_fraction > 0.2
        # But each individual node is fine.
        assert report[20].node_availability > 0.97
