"""Tests for AIC weights and the likelihood-ratio test."""

import numpy as np
import pytest

from repro.stats.distributions import Weibull
from repro.stats.fitting import fit_all, fit_exponential, fit_weibull
from repro.stats.gof import aic_weights, likelihood_ratio_pvalue


class TestAicWeights:
    def test_sum_to_one(self):
        weights = aic_weights([100.0, 105.0, 200.0])
        assert weights.sum() == pytest.approx(1.0)

    def test_best_model_heaviest(self):
        weights = aic_weights([100.0, 105.0, 200.0])
        assert weights[0] == max(weights)
        assert weights[2] < 1e-10

    def test_equal_aics_equal_weights(self):
        weights = aic_weights([50.0, 50.0])
        assert weights[0] == pytest.approx(weights[1]) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aic_weights([])

    def test_on_fit_ranking(self):
        generator = np.random.Generator(np.random.PCG64(0))
        data = Weibull(shape=0.6, scale=100.0).sample(generator, 5000)
        fits = fit_all(data)
        weights = aic_weights([fit.aic for fit in fits])
        # The winner (first) dominates on a clearly non-exponential sample.
        assert weights[0] > 0.5


class TestLikelihoodRatio:
    def sample(self, shape, n=3000, seed=0):
        generator = np.random.Generator(np.random.PCG64(seed))
        return Weibull(shape=shape, scale=100.0).sample(generator, n)

    def test_decreasing_hazard_is_significant(self):
        # The paper's question: is shape < 1 real?  On clearly Weibull
        # data the exponential restriction is overwhelmingly rejected.
        data = self.sample(shape=0.7)
        nll_exp = fit_exponential(data).nll
        nll_weibull = fit_weibull(data).nll
        assert likelihood_ratio_pvalue(nll_exp, nll_weibull) < 1e-10

    def test_true_exponential_not_rejected(self):
        data = self.sample(shape=1.0, seed=3)
        nll_exp = fit_exponential(data).nll
        nll_weibull = fit_weibull(data).nll
        assert likelihood_ratio_pvalue(nll_exp, nll_weibull) > 0.01

    def test_pvalue_bounds(self):
        assert 0.0 <= likelihood_ratio_pvalue(100.0, 90.0) <= 1.0
        # Negative statistic (numerical noise) clamps to p = 1.
        assert likelihood_ratio_pvalue(90.0, 90.0001) == pytest.approx(1.0)

    def test_df_validation(self):
        with pytest.raises(ValueError):
            likelihood_ratio_pvalue(10.0, 5.0, df=0)

    def test_paper_finding_on_synthetic_trace(self, system20_trace):
        # System-wide late-era TBF: the decreasing hazard is
        # statistically significant, as the paper asserts via NLL.
        import datetime as dt

        from repro.records.timeutils import from_datetime

        late = system20_trace.between(
            from_datetime(dt.datetime(2000, 1, 1)), system20_trace.data_end
        )
        gaps = late.interarrival_times()
        gaps = gaps[gaps > 0]
        nll_exp = fit_exponential(gaps).nll
        nll_weibull = fit_weibull(gaps).nll
        assert likelihood_ratio_pvalue(nll_exp, nll_weibull) < 1e-6
