"""Tests for checkpoint-interval models."""

import math

import numpy as np
import pytest

from repro.checkpoint.models import (
    daly_interval,
    expected_efficiency,
    optimal_interval,
    young_interval,
)
from repro.stats.distributions import Exponential, Weibull


class TestClassicFormulas:
    def test_young_formula(self):
        assert young_interval(600.0, 86400.0) == pytest.approx(
            math.sqrt(2 * 600.0 * 86400.0)
        )

    def test_daly_close_to_young_for_small_cost(self):
        mtbf = 1e6
        cost = 10.0
        assert daly_interval(cost, mtbf) == pytest.approx(
            young_interval(cost, mtbf), rel=0.02
        )

    def test_daly_caps_at_mtbf(self):
        assert daly_interval(500.0, 100.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 100.0)
        with pytest.raises(ValueError):
            young_interval(10.0, -1.0)
        with pytest.raises(ValueError):
            daly_interval(-1.0, 100.0)


class TestExpectedEfficiency:
    def test_matches_monte_carlo_exponential(self):
        dist = Exponential(scale=86400.0)
        tau, cost, restart = 9000.0, 600.0, 1800.0
        analytic = expected_efficiency(dist, tau, cost, restart)
        generator = np.random.Generator(np.random.PCG64(0))
        period = tau + cost
        samples = dist.sample(generator, 200_000)
        useful = tau * np.floor(samples / period)
        simulated = useful.mean() / (samples.mean() + restart)
        assert analytic == pytest.approx(simulated, rel=0.01)

    def test_matches_monte_carlo_weibull(self):
        dist = Weibull(shape=0.7, scale=50_000.0)
        tau, cost = 5000.0, 300.0
        analytic = expected_efficiency(dist, tau, cost)
        generator = np.random.Generator(np.random.PCG64(1))
        samples = dist.sample(generator, 200_000)
        useful = tau * np.floor(samples / (tau + cost))
        simulated = useful.mean() / samples.mean()
        assert analytic == pytest.approx(simulated, rel=0.02)

    def test_efficiency_below_segment_bound(self):
        # Even with no failures the efficiency can't beat tau/(tau+C).
        dist = Exponential(scale=1e9)
        tau, cost = 1000.0, 100.0
        eff = expected_efficiency(dist, tau, cost)
        assert eff <= tau / (tau + cost) + 1e-9
        assert eff == pytest.approx(tau / (tau + cost), rel=1e-3)

    def test_zero_when_interval_exceeds_failures(self):
        # Failures always strike before the first checkpoint completes.
        dist = Exponential(scale=10.0)
        assert expected_efficiency(dist, 1e6, 1.0) < 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_efficiency(Exponential(scale=1.0), 0.0, 1.0)
        with pytest.raises(ValueError):
            expected_efficiency(Exponential(scale=1.0), 1.0, -1.0)


class TestOptimalInterval:
    def test_near_young_for_exponential(self):
        mtbf, cost = 86400.0, 600.0
        dist = Exponential(scale=mtbf)
        optimal = optimal_interval(dist, cost)
        young = young_interval(cost, mtbf)
        # Young's approximation is within ~10% of the true optimum.
        assert optimal == pytest.approx(young, rel=0.15)

    def test_optimal_beats_or_ties_young_under_weibull(self):
        shape = 0.5
        mtbf = 43200.0
        scale = mtbf / math.gamma(1 + 1 / shape)
        dist = Weibull(shape=shape, scale=scale)
        cost = 1200.0
        optimal = optimal_interval(dist, cost)
        eff_optimal = expected_efficiency(dist, optimal, cost)
        eff_young = expected_efficiency(dist, young_interval(cost, mtbf), cost)
        assert eff_optimal >= eff_young - 1e-9

    def test_unimodal_scan_agrees(self):
        dist = Weibull(shape=0.7, scale=30_000.0)
        cost = 500.0
        optimal = optimal_interval(dist, cost)
        taus = np.linspace(optimal * 0.3, optimal * 3.0, 60)
        best_scanned = max(
            taus, key=lambda t: expected_efficiency(dist, t, cost)
        )
        assert optimal == pytest.approx(best_scanned, rel=0.1)

    def test_bracket_validation(self):
        with pytest.raises(ValueError):
            optimal_interval(Exponential(scale=1e4), 10.0, bracket=(100.0, 10.0))
